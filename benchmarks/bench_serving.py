"""Serving-layer benchmark: amortization and throughput under mixed load.

Not a paper table — this measures the repository's own serving layer
against the paper's production story (Section 5: the DHT-resident graph
outlives a single query).  A burst of mixed queries is answered three
ways:

* **cold** — a fresh Session per query (no amortization; the per-query
  lower bound a query-at-a-time deployment would pay);
* **session** — one Session, sequential (cross-query preprocessing reuse);
* **service** — one GraphService with 4 workers (the same reuse, behind
  the concurrent front end; checks the serving layer adds no simulated
  cost).

Reported: total simulated seconds, shuffles executed, shuffles saved,
and — for the service deployment — wall-clock p50/p99 per algorithm plus
the load-shaping counters (``queries_shed``, ``deadline_exceeded``,
``workers_scaled``) every serving stats() now carries.
"""

from __future__ import annotations

import time
from collections import defaultdict

from benchmarks.conftest import run_once
from repro.ampc.cluster import ClusterConfig
from repro.analysis.reporting import Table
from repro.api import Session
from repro.graph.generators import barabasi_albert_graph, erdos_renyi_gnm
from repro.serve import GraphService, WorkerPool

CONFIG = ClusterConfig(num_machines=10)

GRAPHS = {
    "social": barabasi_albert_graph(400, attach=3, seed=7),
    "mesh": erdos_renyi_gnm(300, 900, seed=11),
}

#: every exact query twice — live traffic repeats itself, which is where
#: a serving deployment wins
QUERIES = [
    (algorithm, name, seed)
    for algorithm in ("mis", "matching", "components", "pagerank")
    for name in GRAPHS
    for seed in (1, 2)
] * 2


def _cold() -> dict:
    time_s = shuffles = 0
    for algorithm, name, seed in QUERIES:
        run = Session(CONFIG).run(algorithm, GRAPHS[name], seed=seed)
        time_s += run.metrics["simulated_time_s"]
        shuffles += run.metrics["shuffles"]
    return {"simulated_time_s": time_s, "shuffles": shuffles, "saved": 0}


def _session() -> dict:
    session = Session(CONFIG)
    for algorithm, name, seed in QUERIES:
        session.run(algorithm, GRAPHS[name], seed=seed)
    return {"simulated_time_s": session.stats.simulated_time_s,
            "shuffles": session.stats.shuffles_executed,
            "saved": session.stats.shuffles_saved}


def _percentile(values: list, quantile: float) -> float:
    """Nearest-rank percentile in milliseconds (0 for an empty sample)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(quantile * (len(ordered) - 1))))
    return ordered[index]


def _service() -> dict:
    latencies_ms = defaultdict(list)

    def timed_query(query):
        algorithm, name, seed = query
        start = time.perf_counter()
        result = service.query(algorithm, name, seed=seed, timeout=600)
        latencies_ms[algorithm].append(
            (time.perf_counter() - start) * 1000.0)
        return result

    with GraphService(CONFIG, workers=4) as service:
        for name, graph in GRAPHS.items():
            service.load(name, graph)
        # a client-side pool driving synchronous queries, drained in
        # completion order — the map_unordered the dispatcher also uses
        clients = WorkerPool(4, name="bench-serving-client")
        try:
            for _ in clients.map_unordered(timed_query, QUERIES):
                pass
        finally:
            clients.close()
        stats = service.stats()
    return {"simulated_time_s": stats["simulated_time_s"],
            "shuffles": stats["shuffles_executed"],
            "saved": stats["shuffles_saved"],
            "tail_ms": {algorithm: (_percentile(sample, 0.50),
                                    _percentile(sample, 0.99))
                        for algorithm, sample in sorted(latencies_ms.items())},
            "counters": {key: stats[key]
                         for key in ("queries_shed", "deadline_exceeded",
                                     "workers_scaled")}}


def test_serving_amortization(benchmark):
    def compute():
        return {"cold": _cold(), "session": _session(),
                "service": _service()}

    measured = run_once(benchmark, compute)

    table = Table(
        f"Serving amortization over {len(QUERIES)} mixed queries",
        ["Deployment", "simulated s", "shuffles", "shuffles saved"],
    )
    for name, row in measured.items():
        table.add_row(name, f"{row['simulated_time_s']:.2f}",
                      row["shuffles"], row["saved"])
    table.show()

    tails = Table(
        "Service tail latency per algorithm (wall-clock, 4 workers)",
        ["Algorithm", "p50 ms", "p99 ms"],
    )
    for algorithm, (p50, p99) in measured["service"]["tail_ms"].items():
        tails.add_row(algorithm, f"{p50:.1f}", f"{p99:.1f}")
    tails.show()

    # Amortization must be real, and the concurrent front end must charge
    # the same simulated work as the sequential session.
    assert measured["session"]["shuffles"] < measured["cold"]["shuffles"]
    assert measured["service"]["saved"] >= measured["session"]["saved"] // 2
    assert (measured["service"]["shuffles"]
            <= measured["cold"]["shuffles"])
    # The load-shaping counters ship in every stats() payload; an
    # unshaped run reports them all zero.
    assert measured["service"]["counters"] == {
        "queries_shed": 0, "deadline_exceeded": 0, "workers_scaled": 0}
    for algorithm, (p50, p99) in measured["service"]["tail_ms"].items():
        assert 0 < p50 <= p99, algorithm
