"""Figure 4 — effect of the caching and multithreading optimizations.

Four AMPC MIS variants per dataset: both optimizations, multithreading
only, caching only, and unoptimized.  Paper shapes: both-optimizations is
always fastest; multithreading alone gives a 1.26-2.59x speedup over
unoptimized; caching alone gives 1.47-3.99x; caching cuts KV bytes by
1.96-12.2x; the unoptimized variant did not finish on CW/HL within 4 hours
(here it finishes — the simulator has no 4-hour budget — but is slowest by
a wide margin).
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_DATASETS, run_once
from repro.analysis.experiment import bench_config, run_ampc_mis
from repro.analysis.reporting import Table, normalize

VARIANTS = [
    ("Caching + Multithreading", True, True),
    ("Only Multithreading", False, True),
    ("Only Caching", True, False),
    ("Unoptimized", False, False),
]


def test_fig4_optimization_ablation(benchmark, datasets):
    def compute():
        rows = {}
        for ds in BENCH_DATASETS:
            graph = datasets[ds]
            times = []
            kv_bytes = []
            for _, caching, multithreading in VARIANTS:
                config = bench_config(caching=caching,
                                      multithreading=multithreading)
                record = run_ampc_mis(graph, config=config)
                times.append(record["simulated_time_s"])
                kv_bytes.append(record["kv_bytes"])
            rows[ds] = (times, kv_bytes)
        return rows

    rows = run_once(benchmark, compute)

    table = Table(
        "Figure 4: AMPC MIS slowdown relative to fastest variant",
        ["Dataset"] + [name for name, _, __ in VARIANTS]
        + ["caching KV-bytes reduction"],
    )
    for ds in BENCH_DATASETS:
        times, kv_bytes = rows[ds]
        slowdowns = normalize(times)
        reduction = kv_bytes[3] / kv_bytes[0]
        table.add_row(ds, *[f"{s:.2f}x" for s in slowdowns],
                      f"{reduction:.2f}x")
    table.show()

    for ds in BENCH_DATASETS:
        times, kv_bytes = rows[ds]
        both, only_mt, only_cache, unoptimized = times
        # Both optimizations fastest; unoptimized slowest.
        assert both <= min(only_mt, only_cache)
        assert unoptimized >= max(only_mt, only_cache)
        # Each single optimization beats no optimization.
        assert only_mt < unoptimized
        assert only_cache < unoptimized
        # Caching reduces bytes to the KV store (paper: 1.96-12.2x).
        assert kv_bytes[0] < kv_bytes[1]
