"""Table 4 — RDMA vs TCP/IP vs MPC, for 1-vs-2-Cycle and MIS.

The paper swaps the key-value store's RDMA transport for TCP/IP RPCs and
reports normalized times:

    2-Cycle:  TCP/RDMA 1.74 / 3.75 / 5.90 on 2x10^8 / 2x10^9 / 2x10^10;
              MPC/RDMA 3.40 / 6.70 / 9.87.
    MIS:      TCP/RDMA 1.50-1.85 across the five graphs;
              MPC/RDMA 2.30-3.04.

Headline shapes: TCP is slower than RDMA (more so for the search-dominated
2-cycle problem, increasingly with cycle length) but *still beats the MPC
baseline* — the paper's conclusion that AMPC does not fundamentally require
RDMA.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_DATASETS, run_once
from repro.analysis.datasets import cycle_instance
from repro.analysis.experiment import (
    bench_config,
    run_ampc_mis,
    run_ampc_two_cycle,
    run_mpc_local_contraction,
    run_mpc_mis,
)
from repro.analysis.reporting import Table

CYCLE_SIZES = [1_000, 10_000, 100_000]
PAPER_CYCLE = {1_000: (1.74, 3.40), 10_000: (3.75, 6.70),
               100_000: (5.90, 9.87)}
PAPER_MIS_TCP = {"OK-S": 1.85, "TW-S": 1.63, "FS-S": 1.50, "CW-S": 1.68,
                 "HL-S": 1.71}
PAPER_MIS_MPC = {"OK-S": 2.39, "TW-S": 3.04, "FS-S": 2.98, "CW-S": 2.37,
                 "HL-S": 2.30}


def test_table4_two_cycle_transports(benchmark):
    def compute():
        rows = {}
        for k in CYCLE_SIZES:
            graph = cycle_instance(k, two=True, seed=11)
            rdma = run_ampc_two_cycle(graph, seed=11)
            tcp = run_ampc_two_cycle(graph, seed=11,
                                     config=bench_config(transport="tcp"))
            mpc = run_mpc_local_contraction(graph, seed=11)
            rows[k] = (rdma, tcp, mpc)
        return rows

    rows = run_once(benchmark, compute)

    table = Table(
        "Table 4 (top): 1-vs-2-Cycle normalized times (RDMA = 1)",
        ["2 x k", "RDMA", "TCP/IP", "paper TCP", "MPC", "paper MPC"],
    )
    for k in CYCLE_SIZES:
        rdma, tcp, mpc = rows[k]
        base = rdma["simulated_time_s"]
        paper_tcp, paper_mpc = PAPER_CYCLE[k]
        table.add_row(
            f"2x{k}", "1.00",
            f"{tcp['simulated_time_s'] / base:.2f}", f"{paper_tcp:.2f}",
            f"{mpc['simulated_time_s'] / base:.2f}", f"{paper_mpc:.2f}",
        )
    table.show()

    tcp_ratios = []
    for k in CYCLE_SIZES:
        rdma, tcp, mpc = rows[k]
        base = rdma["simulated_time_s"]
        tcp_ratio = tcp["simulated_time_s"] / base
        tcp_ratios.append(tcp_ratio)
        # TCP slower than RDMA; MPC slower than both transports.
        assert tcp_ratio > 1.0
        assert mpc["simulated_time_s"] > tcp["simulated_time_s"]
        # All three agree on the answer.
        assert rdma["output_size"] == 2
        assert mpc["output_size"] == 2
    # The TCP penalty grows with cycle length (search-dominated regime).
    assert tcp_ratios[-1] > tcp_ratios[0]


def test_table4_mis_transports(benchmark, datasets):
    def compute():
        rows = {}
        for ds in BENCH_DATASETS:
            graph = datasets[ds]
            rdma = run_ampc_mis(graph)
            tcp = run_ampc_mis(graph, config=bench_config(transport="tcp"))
            mpc = run_mpc_mis(graph)
            rows[ds] = (rdma, tcp, mpc)
        return rows

    rows = run_once(benchmark, compute)

    table = Table(
        "Table 4 (bottom): MIS normalized times (RDMA = 1)",
        ["Dataset", "RDMA", "TCP/IP", "paper TCP", "MPC", "paper MPC"],
    )
    for ds in BENCH_DATASETS:
        rdma, tcp, mpc = rows[ds]
        base = rdma["simulated_time_s"]
        table.add_row(
            ds, "1.00",
            f"{tcp['simulated_time_s'] / base:.2f}",
            f"{PAPER_MIS_TCP[ds]:.2f}",
            f"{mpc['simulated_time_s'] / base:.2f}",
            f"{PAPER_MIS_MPC[ds]:.2f}",
        )
    table.show()

    for ds in BENCH_DATASETS:
        rdma, tcp, mpc = rows[ds]
        # TCP modestly slower than RDMA for MIS (paper: 1.5-1.85x) and the
        # TCP-backed AMPC algorithm still beats the MPC baseline.
        assert rdma["simulated_time_s"] < tcp["simulated_time_s"]
        assert tcp["simulated_time_s"] < mpc["simulated_time_s"]
        tcp_ratio = tcp["simulated_time_s"] / rdma["simulated_time_s"]
        assert tcp_ratio < 3.0
