"""WorkerPool unit tests: map_unordered semantics and lifecycle."""

import threading
import time

import pytest

from repro.serve import ServiceClosedError, WorkerPool


@pytest.fixture()
def pool():
    pool = WorkerPool(4)
    yield pool
    pool.close(wait=False)


class TestMapUnordered:
    def test_applies_fn_to_every_item(self, pool):
        results = list(pool.map_unordered(lambda x: x * x, range(10)))
        assert sorted(results) == [x * x for x in range(10)]

    def test_yields_in_completion_order_not_submission_order(self, pool):
        gate = threading.Event()

        def job(item):
            if item == "slow":
                gate.wait(30)
            else:
                gate.set()
            return item

        results = list(pool.map_unordered(job, ["slow", "fast"]))
        assert results == ["fast", "slow"]

    def test_results_stream_before_the_batch_finishes(self, pool):
        gate = threading.Event()

        def job(item):
            if item == "blocked":
                gate.wait(30)
            return item

        iterator = pool.map_unordered(job, ["blocked", "free"])
        assert next(iterator) == "free"  # yields while "blocked" waits
        gate.set()
        assert next(iterator) == "blocked"

    def test_exception_propagates(self, pool):
        def job(item):
            if item == 2:
                raise ValueError("boom")
            return item

        with pytest.raises(ValueError, match="boom"):
            list(pool.map_unordered(job, [1, 2, 3]))

    def test_timeout_bounds_each_wait(self, pool):
        gate = threading.Event()
        try:
            with pytest.raises(TimeoutError):
                list(pool.map_unordered(lambda _: gate.wait(30), [1],
                                        timeout=0.05))
        finally:
            gate.set()

    def test_empty_iterable(self, pool):
        assert list(pool.map_unordered(lambda x: x, [])) == []

    def test_closed_pool_raises(self):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(ServiceClosedError):
            list(pool.map_unordered(lambda x: x, [1]))

    def test_concurrency_is_real(self):
        """Four 100ms sleeps on four workers finish well under 400ms."""
        pool = WorkerPool(4)
        try:
            start = time.perf_counter()
            list(pool.map_unordered(lambda _: time.sleep(0.1), range(4)))
            assert time.perf_counter() - start < 0.35
        finally:
            pool.close()
