"""Figure 9 — KV-store communication vs. input size.

The paper plots total bytes communicated to the key-value store (x: number
of edges, y: bytes, log-log) for the AMPC MIS, MM and MSF across the five
datasets and observes "a consistent linear trend ... with respect to the
number of edges".  We reproduce the series and check the linearity by
regressing log(bytes) on log(edges): the slope should be ~1.
"""

from __future__ import annotations

import math

from benchmarks.conftest import BENCH_DATASETS, run_once
from repro.analysis.experiment import (
    run_ampc_matching,
    run_ampc_mis,
    run_ampc_msf,
)
from repro.analysis.reporting import Table, format_bytes


def _log_log_slope(xs, ys):
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    var = sum((a - mean_x) ** 2 for a in lx)
    return cov / var


def test_fig9_kv_bytes_linear_in_edges(benchmark, datasets, weighted_datasets):
    def compute():
        rows = {}
        for ds in BENCH_DATASETS:
            graph = datasets[ds]
            weighted = weighted_datasets[ds]
            rows[ds] = {
                "edges": graph.num_edges,
                "MIS": run_ampc_mis(graph)["kv_bytes"],
                "MM": run_ampc_matching(graph)["kv_bytes"],
                "MSF": run_ampc_msf(weighted)["kv_bytes"],
            }
        return rows

    rows = run_once(benchmark, compute)

    table = Table(
        "Figure 9: total bytes of KV-store communication",
        ["Dataset", "Edges", "MIS", "MM", "MSF"],
    )
    for ds in BENCH_DATASETS:
        row = rows[ds]
        table.add_row(ds, row["edges"], format_bytes(row["MIS"]),
                      format_bytes(row["MM"]), format_bytes(row["MSF"]))
    edges = [rows[ds]["edges"] for ds in BENCH_DATASETS]
    slopes = {}
    for algorithm in ("MIS", "MM", "MSF"):
        series = [rows[ds][algorithm] for ds in BENCH_DATASETS]
        slopes[algorithm] = _log_log_slope(edges, series)
    table.add_row("log-log slope", "-",
                  f"{slopes['MIS']:.2f}", f"{slopes['MM']:.2f}",
                  f"{slopes['MSF']:.2f}")
    table.show()

    # "A consistent linear trend": slope ~1 on the log-log plot.  Allow the
    # slack the paper's own plot shows — dataset structure (hub skew on
    # CW-S) moves individual points off the trend line.
    for algorithm, slope in slopes.items():
        assert 0.6 < slope < 1.7, (algorithm, slope)
    # Grows with input size end to end (individual inversions allowed, as
    # between the paper's CW and HL points).
    for algorithm in ("MIS", "MM", "MSF"):
        series = [rows[ds][algorithm] for ds in BENCH_DATASETS]
        assert series[0] < series[-1]
