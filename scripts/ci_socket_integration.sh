#!/usr/bin/env bash
# End-to-end socket-backend integration: two standalone DHT nodes, a
# process-pool serve front end on --backend socket, a mixed query burst
# over the JSON-lines protocol, and a clean shutdown of every piece.
#
# CI runs this; it is also a local smoke test:
#
#     bash scripts/ci_socket_integration.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

PORT_A=${PORT_A:-7171}
PORT_B=${PORT_B:-7172}
OUT=$(mktemp)
trap 'kill -TERM ${NODE_A:-} ${NODE_B:-} 2>/dev/null || true; rm -f "$OUT"' EXIT

python -m repro dht-server --port "$PORT_A" &
NODE_A=$!
python -m repro dht-server --port "$PORT_B" &
NODE_B=$!
sleep 1

# A mixed burst: register a graph, run three algorithms across seeds,
# mutate the graph, re-run, then ask for stats and shut down cleanly.
printf '%s\n' \
  '{"op": "load", "name": "g", "edges": [[0,1],[1,2],[2,3],[3,4],[4,0],[0,2],[1,3]]}' \
  '{"op": "run", "algorithm": "mis", "graph": "g", "seed": 1}' \
  '{"op": "run", "algorithm": "mis", "graph": "g", "seed": 2}' \
  '{"op": "run", "algorithm": "matching", "graph": "g", "seed": 1}' \
  '{"op": "run", "algorithm": "components", "graph": "g", "seed": 1}' \
  '{"op": "update", "graph": "g", "deletions": [[0, 2]]}' \
  '{"op": "run", "algorithm": "mis", "graph": "g", "seed": 1}' \
  '{"op": "stats"}' \
  '{"op": "shutdown"}' \
  | timeout 300 python -m repro serve --machines 4 --processes 2 \
      --backend socket \
      --dht-node "127.0.0.1:$PORT_A" --dht-node "127.0.0.1:$PORT_B" \
      --replication 2 > "$OUT"

python - "$OUT" <<'PY'
import json
import sys

lines = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
bad = [line for line in lines if not line.get("ok")]
assert not bad, f"failed responses: {bad}"
runs = [line["result"] for line in lines if "result" in line]
assert len(runs) == 5, f"expected 5 run results, got {len(runs)}"
assert all(run["summary"]["output_size"] >= 1 for run in runs), runs
stats = [line["stats"] for line in lines if "stats" in line][-1]
assert stats["backend"] == "socket", stats
assert stats["completed"] == 5, stats
assert any(line.get("bye") for line in lines), "no clean shutdown ack"
print(f"socket integration ok: {stats['completed']} queries over "
      f"{stats.get('processes', '?')} worker processes, backend=socket")
PY

# Clean node shutdown must be orderly (SIGTERM, zero wedged processes).
kill -TERM "$NODE_A" "$NODE_B"
wait "$NODE_A" 2>/dev/null || true
wait "$NODE_B" 2>/dev/null || true
echo "SOCKET-INTEGRATION-OK"

# ---- chaos phase: the same stack with a deliberately slow node --------
# One ring node sleeps 150ms per request; the burst must still answer
# every query correctly (replication keeps reads failing over fast, the
# slow node just drags its share of the traffic).
PORT_C=${PORT_C:-7173}
PORT_D=${PORT_D:-7174}
trap 'kill -TERM ${NODE_C:-} ${NODE_D:-} 2>/dev/null || true; rm -f "$OUT"' EXIT

python -m repro dht-server --port "$PORT_C" --chaos-latency-ms 150 &
NODE_C=$!
python -m repro dht-server --port "$PORT_D" &
NODE_D=$!
sleep 1

# Prove the chaos injection is live before trusting the serve run: a
# direct store round-trip against the slow node must eat the latency.
python - "$PORT_C" <<'PY'
import sys
import time

from repro.distdht import SocketBackingStore

store = SocketBackingStore([("127.0.0.1", int(sys.argv[1]))])
start = time.monotonic()
store.put(b"chaos-probe", b"x")
elapsed = time.monotonic() - start
store.close()
assert elapsed >= 0.15, f"chaos latency not injected ({elapsed:.3f}s)"
print(f"chaos probe ok: slow node injected {elapsed * 1000:.0f}ms")
PY

printf '%s\n' \
  '{"op": "load", "name": "g", "edges": [[0,1],[1,2],[2,3],[3,4],[4,0],[0,2],[1,3]]}' \
  '{"op": "run", "algorithm": "mis", "graph": "g", "seed": 1}' \
  '{"op": "run", "algorithm": "components", "graph": "g", "seed": 1}' \
  '{"op": "stats"}' \
  '{"op": "shutdown"}' \
  | timeout 300 python -m repro serve --machines 4 --processes 2 \
      --backend socket \
      --dht-node "127.0.0.1:$PORT_C" --dht-node "127.0.0.1:$PORT_D" \
      --replication 2 > "$OUT"

python - "$OUT" <<'PY'
import json
import sys

lines = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
bad = [line for line in lines if not line.get("ok")]
assert not bad, f"failed responses under chaos: {bad}"
runs = [line["result"] for line in lines if "result" in line]
assert len(runs) == 2 and all(
    run["summary"]["output_size"] >= 1 for run in runs), runs
stats = [line["stats"] for line in lines if "stats" in line][-1]
assert stats["completed"] == 2, stats
print("chaos integration ok: slow-node ring answered every query")
PY

kill -TERM "$NODE_C" "$NODE_D"
wait "$NODE_C" 2>/dev/null || true
wait "$NODE_D" 2>/dev/null || true
trap 'rm -f "$OUT"' EXIT
echo "SOCKET-CHAOS-OK"

# ---- self-healing phase: kill -> hints -> rejoin -> repair -> verify --
# A replica node is killed mid-workload; writes keep landing (hinted
# handoff), the node restarts EMPTY, hint replay + anti-entropy converge
# it, and the dht-repair CLI digest-verifies the cluster from outside.
# Then a worker process is killed with queries in flight: with retries
# enabled the client sees zero failures.
python - <<'PY'
import json
import os
import signal
import subprocess
import sys

from repro.ampc.cluster import ClusterConfig
from repro.distdht import DHTNodeServer, NodeOutage, SocketBackingStore
from repro.graph.generators import erdos_renyi_gnm
from repro.serve import ProcessGraphService

node_a = DHTNodeServer("127.0.0.1", 0).start()
node_b = DHTNodeServer("127.0.0.1", 0).start()
store = SocketBackingStore([node_a.address, node_b.address],
                           replication=2, retries=0, backoff_s=0.01,
                           failure_threshold=1, probe_interval_s=0.0)
keys = [f"ci|heal|k{i}".encode() for i in range(32)]
store.put_many([(key, b"v-" + key) for key in keys])

# kill one replica mid-workload: writes land via hints, no exceptions
outage = NodeOutage(node_b)
outage.__enter__()
store.ping()  # observe the kill -> circuit opens
for key in keys[:8]:
    store.put(key, b"v2-" + key)
store.put(b"ci|heal|fresh", b"fresh")
assert store.delete(keys[8])
node_b = outage.restart()  # rejoins EMPTY
assert store.probe_now() == [1]  # hint replay + auto anti-entropy
counters = store.health()["counters"]
assert counters["hints_parked"] >= 10, counters
assert counters["hints_replayed"] >= 10, counters
assert counters["auto_repairs"] == 1, counters
assert store.node_digest(0) == store.node_digest(1), "digests diverge"
assert store.get(keys[0]) == b"v2-" + keys[0]
assert store.get(keys[8]) is None, "deleted key resurrected"
print(f"self-heal ok: {counters['hints_replayed']} hints replayed, "
      "digests agree after rejoin")

# worker kill with retries on: every in-flight query still answers
config = ClusterConfig(num_machines=4)
addresses = [f"{host}:{port}"
             for host, port in (node_a.address, node_b.address)]
with ProcessGraphService(config, processes=2, backend="socket",
                         dht_nodes=addresses,
                         replication=2) as service:
    service.load("g", erdos_renyi_gnm(40, 100, seed=1))
    service.query("mis", "g", seed=0, timeout=300)
    victim = next(c for c in service._clients if c.shipped)
    os.kill(victim.process.pid, signal.SIGSTOP)  # wedge: burst queues
    pending = [service.submit("mis", "g", seed=0) for _ in range(4)]
    os.kill(victim.process.pid, signal.SIGKILL)
    results = [p.result(300) for p in pending]
    assert len(results) == 4
    stats = service.stats()
    assert stats["queries_retried"] >= 1, stats
    assert stats["failed"] == 0, stats
print(f"worker-kill ok: {stats['queries_retried']} retried, "
      "0 client-visible failures")

# outside-in digest verification via the CLI verb
verify = subprocess.run(
    [sys.executable, "-m", "repro", "dht-repair",
     "--dht-node", addresses[0], "--dht-node", addresses[1],
     "--replication", "2", "--json"],
    capture_output=True, text=True)
assert verify.returncode == 0, verify.stderr[-2000:]
report = json.loads(verify.stdout)
assert report["converged"], report
print(f"dht-repair verify ok: {report['keys_checked']} keys checked, "
      f"converged in {report['rounds']} round(s)")
store.close()
node_a.close()
node_b.close()
PY
echo "SOCKET-SELFHEAL-OK"
