"""Synthetic graph generators.

All generators take an explicit ``seed`` where randomness is involved and are
fully deterministic for a given seed.  They are implemented from scratch (no
networkx dependency) so the repository is self-contained.

The two families that matter most for the paper's evaluation:

* :func:`two_cycles` / :func:`cycle_graph` — the 1-vs-2-Cycle inputs
  (Section 5.6 / Table 4).
* :func:`chung_lu_graph` and :func:`barabasi_albert_graph` — skewed,
  social-network-like graphs used to build the scaled analogues of the
  paper's real-world datasets (Table 2) in :mod:`repro.analysis.datasets`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.graph.graph import Graph, WeightedGraph


def path_graph(n: int) -> Graph:
    """A simple path on ``n`` vertices (n-1 edges)."""
    graph = Graph(n)
    for v in range(n - 1):
        graph.add_edge(v, v + 1)
    return graph


def cycle_graph(n: int, *, shuffle_ids: bool = False, seed: int = 0) -> Graph:
    """A single cycle on ``n`` vertices.

    With ``shuffle_ids=True`` the vertex ids are randomly permuted, so that
    consecutive cycle positions do not have consecutive ids; this removes any
    accidental locality that could favor one algorithm.
    """
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    ids = list(range(n))
    if shuffle_ids:
        random.Random(seed).shuffle(ids)
    graph = Graph(n)
    for i in range(n):
        graph.add_edge(ids[i], ids[(i + 1) % n])
    return graph


def two_cycles(k: int, *, shuffle_ids: bool = False, seed: int = 0) -> Graph:
    """Two disjoint cycles on ``k`` vertices each (the ``2 x k`` graphs).

    This is the canonical hard instance for the 1-vs-2-Cycle problem
    (Section 5.6): distinguishing this graph from ``cycle_graph(2 * k)``
    requires Omega(log n) MPC rounds under the 1-vs-2-Cycle conjecture.
    """
    if k < 3:
        raise ValueError("each cycle needs at least 3 vertices")
    ids = list(range(2 * k))
    if shuffle_ids:
        random.Random(seed).shuffle(ids)
    graph = Graph(2 * k)
    for i in range(k):
        graph.add_edge(ids[i], ids[(i + 1) % k])
    for i in range(k):
        graph.add_edge(ids[k + i], ids[k + (i + 1) % k])
    return graph


def complete_graph(n: int) -> Graph:
    graph = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def star_graph(n: int, center: int = 0) -> Graph:
    """A star: ``center`` connected to every other vertex (extreme skew)."""
    graph = Graph(n)
    for v in range(n):
        if v != center:
            graph.add_edge(center, v)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """A rows x cols grid; useful as a bounded-degree, high-diameter input."""
    graph = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def erdos_renyi_gnm(n: int, m: int, seed: int = 0) -> Graph:
    """G(n, m): ``m`` distinct uniformly random edges on ``n`` vertices."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"requested {m} edges but K_{n} has only {max_edges}")
    rng = random.Random(seed)
    graph = Graph(n)
    while graph.num_edges < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def chung_lu_graph(expected_degrees: Sequence[float], seed: int = 0) -> Graph:
    """Chung-Lu random graph with the given expected degree sequence.

    Each edge ``{u, v}`` appears independently with probability
    ``min(1, d_u * d_v / sum(d))``.  Implemented with the standard O(n + m)
    skip-sampling trick over the weight-sorted vertex order, so it scales to
    the dataset sizes used in the benchmarks.
    """
    n = len(expected_degrees)
    order = sorted(range(n), key=lambda v: -expected_degrees[v])
    weights = [float(expected_degrees[v]) for v in order]
    total = sum(weights)
    if total <= 0:
        return Graph(n)
    rng = random.Random(seed)
    graph = Graph(n)
    import math

    for i in range(n - 1):
        w_i = weights[i]
        if w_i <= 0:
            break
        j = i + 1
        p = min(1.0, w_i * weights[j] / total)
        while j < n and p > 0:
            if p < 1.0:
                # Skip ahead geometrically over non-edges.
                r = rng.random()
                skip = int(math.log(r) / math.log(1.0 - p)) if r > 0 else 0
                j += skip
            if j >= n:
                break
            q = min(1.0, w_i * weights[j] / total)
            if rng.random() < q / p:
                graph.add_edge(order[i], order[j])
            p = q
            j += 1
    return graph


def power_law_degrees(
    n: int, exponent: float = 2.5, min_degree: float = 1.0,
    max_degree: Optional[float] = None, seed: int = 0,
) -> List[float]:
    """Sample ``n`` expected degrees from a bounded Pareto distribution."""
    if max_degree is None:
        max_degree = float(n) ** 0.5
    rng = random.Random(seed)
    alpha = exponent - 1.0
    lo, hi = float(min_degree), float(max_degree)
    degrees = []
    for _ in range(n):
        u = rng.random()
        # Inverse CDF of the bounded Pareto distribution.
        value = (lo ** -alpha - u * (lo ** -alpha - hi ** -alpha)) ** (-1.0 / alpha)
        degrees.append(value)
    return degrees


def barabasi_albert_graph(n: int, attach: int, seed: int = 0) -> Graph:
    """Preferential attachment: each new vertex attaches to ``attach`` others.

    Produces a connected power-law graph (exponent ~3) with hubs, matching
    the qualitative degree skew of the paper's social-network inputs.
    """
    if attach < 1 or attach >= n:
        raise ValueError("need 1 <= attach < n")
    rng = random.Random(seed)
    graph = Graph(n)
    # Seed clique keeps early attachment well-defined.
    targets = list(range(attach + 1))
    for u in range(attach + 1):
        for v in range(u + 1, attach + 1):
            graph.add_edge(u, v)
    # repeated_nodes holds each vertex once per incident edge endpoint,
    # so uniform sampling from it is degree-proportional sampling.
    repeated_nodes: List[int] = []
    for u in range(attach + 1):
        repeated_nodes.extend([u] * attach)
    for v in range(attach + 1, n):
        chosen = set()
        while len(chosen) < attach:
            candidate = repeated_nodes[rng.randrange(len(repeated_nodes))]
            chosen.add(candidate)
        for u in chosen:
            graph.add_edge(v, u)
            repeated_nodes.append(u)
        repeated_nodes.extend([v] * attach)
    return graph


def random_spanning_tree_graph(n: int, extra_edges: int = 0, seed: int = 0) -> Graph:
    """A random tree on ``n`` vertices plus ``extra_edges`` random chords.

    The tree is a uniform random recursive tree (each vertex attaches to a
    uniformly random earlier vertex); always connected.
    """
    rng = random.Random(seed)
    graph = Graph(n)
    for v in range(1, n):
        graph.add_edge(v, rng.randrange(v))
    added = 0
    while added < extra_edges:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph


def disjoint_union(graphs: Sequence[Graph]) -> Graph:
    """Disjoint union; vertex ids of graph i are offset by sum of earlier n."""
    total = sum(g.num_vertices for g in graphs)
    union = Graph(total)
    offset = 0
    for g in graphs:
        for u, v in g.edges():
            union.add_edge(u + offset, v + offset)
        offset += g.num_vertices
    return union


def degree_weighted(graph: Graph) -> WeightedGraph:
    """Weight every edge ``(u, v)`` by ``deg(u) + deg(v)``.

    This is exactly the weighting the paper uses for its MSF experiments
    (Section 5.2: "the weight of an edge (u, v) is proportional to
    deg(u) + deg(v)").
    """
    return WeightedGraph.from_graph(
        graph, lambda u, v: float(graph.degree(u) + graph.degree(v))
    )


def random_weighted(graph: Graph, seed: int = 0) -> WeightedGraph:
    """Assign i.i.d. uniform(0, 1) weights; used for CC-via-MSF experiments."""
    rng = random.Random(seed)
    return WeightedGraph.from_graph(graph, lambda u, v: rng.random())
