"""Rooted forests and Euler tours (Algorithm 5, lines 2-4).

:class:`RootedForest` turns an undirected forest into parent/children/level
arrays (rooting each component at its minimum-id vertex by default), and
:class:`EulerTour` produces the tour sequence used for LCA computation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph

EdgeId = Tuple[int, int]


class RootedForest:
    """An undirected forest rooted at one vertex per component.

    Construction is iterative (explicit stack), so trees of any depth are
    handled without hitting the interpreter recursion limit.
    """

    def __init__(self, num_vertices: int, edges: Iterable[EdgeId],
                 roots: Optional[Sequence[int]] = None):
        self.num_vertices = num_vertices
        adjacency: List[List[int]] = [[] for _ in range(num_vertices)]
        edge_count = 0
        for u, v in edges:
            adjacency[u].append(v)
            adjacency[v].append(u)
            edge_count += 1
        self.parent: List[int] = [-1] * num_vertices
        self.level: List[int] = [-1] * num_vertices
        self.children: List[List[int]] = [[] for _ in range(num_vertices)]
        self.root_of: List[int] = [-1] * num_vertices
        self.roots: List[int] = []

        visited = [False] * num_vertices
        seeds = list(roots) if roots is not None else list(range(num_vertices))
        visited_count = 0
        for seed in seeds:
            if visited[seed]:
                continue
            self.roots.append(seed)
            visited[seed] = True
            self.level[seed] = 0
            self.root_of[seed] = seed
            stack = [seed]
            while stack:
                u = stack.pop()
                visited_count += 1
                for v in sorted(adjacency[u]):
                    if not visited[v]:
                        visited[v] = True
                        self.parent[v] = u
                        self.level[v] = self.level[u] + 1
                        self.children[u].append(v)
                        self.root_of[v] = seed
                        stack.append(v)
        if visited_count != num_vertices:
            raise ValueError("roots did not cover every component")
        if edge_count != num_vertices - len(self.roots):
            raise ValueError("edge set is not a forest (cycle or duplicate)")

    @classmethod
    def from_graph(cls, forest: Graph,
                   roots: Optional[Sequence[int]] = None) -> "RootedForest":
        return cls(forest.num_vertices, forest.edges(), roots=roots)

    def same_tree(self, u: int, v: int) -> bool:
        return self.root_of[u] == self.root_of[v]

    def is_ancestor_of(self, a: int, v: int) -> bool:
        """True if ``a`` lies on the path from ``v`` to its root (walks up)."""
        while v != -1:
            if v == a:
                return True
            v = self.parent[v]
        return False


class EulerTour:
    """Euler tour of a rooted forest: each tree contributes a 2k-1 sequence.

    ``first[v]`` is the first tour index of vertex ``v``; the vertex of
    minimum level between ``first[u]`` and ``first[v]`` is ``LCA(u, v)``.
    Trees are concatenated; cross-tree queries are guarded by the caller
    (different components have no LCA).
    """

    def __init__(self, forest: RootedForest):
        self.forest = forest
        self.tour: List[int] = []
        self.first: List[int] = [-1] * forest.num_vertices
        for root in forest.roots:
            self._tour_tree(root)

    def _tour_tree(self, root: int) -> None:
        # Iterative Euler tour: push (vertex, next-child-index) frames.
        tour, first = self.tour, self.first
        children = self.forest.children
        stack: List[Tuple[int, int]] = [(root, 0)]
        first[root] = len(tour)
        tour.append(root)
        while stack:
            vertex, child_index = stack[-1]
            if child_index < len(children[vertex]):
                stack[-1] = (vertex, child_index + 1)
                child = children[vertex][child_index]
                first[child] = len(tour)
                tour.append(child)
                stack.append((child, 0))
            else:
                stack.pop()
                if stack:
                    tour.append(stack[-1][0])

    def levels_along_tour(self) -> List[int]:
        """The level of each tour entry (input array for the LCA RMQ)."""
        level = self.forest.level
        return [level[v] for v in self.tour]
