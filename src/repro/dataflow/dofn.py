"""DoFns and the per-machine execution context.

A :class:`DoFn` transforms elements of a PCollection; :meth:`DoFn.process`
is called once per element and yields zero or more outputs.  The
:class:`MachineContext` passed alongside identifies the executing machine
and is the *only* way a DoFn may touch a DHT store — every lookup and write
goes through it so that the cluster can charge latency, bandwidth and the
per-machine AMPC communication budget.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.ampc.cluster import Cluster, MachineWork
from repro.ampc.cost_model import estimate_bytes
from repro.ampc.dht import DHTStore


class MachineContext:
    """Execution context of one machine within one ParDo stage."""

    def __init__(self, machine_id: int, cluster: Cluster):
        self.machine_id = machine_id
        self.cluster = cluster
        self.work = MachineWork()

    # -- KV-store access (the AMPC extension) ----------------------------

    def lookup(self, store: DHTStore, key: Any) -> Any:
        """Synchronous KV read; returns None for missing keys."""
        value = store.lookup(key)
        self.work.kv_reads += 1
        self.work.kv_read_bytes += estimate_bytes(key) + estimate_bytes(value)
        return value

    def write(self, store: DHTStore, key: Any, value: Any) -> None:
        """KV write into the current round's output store."""
        value_bytes = store.write(key, value)
        self.work.kv_writes += 1
        self.work.kv_write_bytes += estimate_bytes(key) + value_bytes

    def note_cache_hit(self) -> None:
        """Record that a per-machine cache answered instead of the DHT."""
        self.work.cache_hits += 1

    def charge_compute(self, operations: int) -> None:
        """Charge extra elementary operations beyond the per-element default."""
        self.work.compute_ops += operations

    @property
    def caching_enabled(self) -> bool:
        return self.cluster.config.caching


class DoFn:
    """Base class for per-element transformations.

    Subclasses override :meth:`process`; :meth:`start_machine` runs once per
    machine per stage and is where per-machine state (such as the caching
    optimization's table) is created.
    """

    def start_machine(self, ctx: MachineContext) -> None:
        """Per-machine setup hook (default: nothing)."""

    def process(self, element: Any, ctx: MachineContext) -> Optional[Iterable[Any]]:
        raise NotImplementedError


class _CallableDoFn(DoFn):
    """Adapter for the map/filter/flat_map conveniences."""

    def __init__(self, fn, mode: str):
        self._fn = fn
        self._mode = mode

    def process(self, element, ctx):
        if self._mode == "map":
            yield self._fn(element)
        elif self._mode == "flat_map":
            yield from self._fn(element)
        elif self._mode == "filter":
            if self._fn(element):
                yield element
        else:  # pragma: no cover - internal invariant
            raise AssertionError(f"unknown mode {self._mode}")
