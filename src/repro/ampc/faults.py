"""Preemption injection.

The paper's environment runs batch jobs at low priority in a shared data
center, where machines are routinely preempted (Section 5.1, citing the
Borg traces of Tirmazi et al.).  Both Flume-C++ and the AMPC extension
survive this because every stage's *input* is durable: shuffle outputs are
written to durable storage and the DHT is fault-tolerant (Section 2).
Recovery therefore re-executes only the lost machine's partition.

:class:`FaultPlan` models exactly that: during a stage, each machine is
independently preempted with probability ``preempt_probability``; a
preempted machine's work is re-run, which adds its stage time again (the
work is deterministic, so the *output* is unchanged — asserted by the
fault-injection tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class FaultPlan:
    """Deterministic preemption schedule."""

    preempt_probability: float = 0.0
    seed: int = 0
    #: an upper bound on re-executions of one machine in one stage
    max_retries_per_stage: int = 3

    def __post_init__(self):
        if not (0.0 <= self.preempt_probability < 1.0):
            raise ValueError("preempt_probability must be in [0, 1)")
        self._rng = random.Random(self.seed)

    def executions_for(self, stage_index: int, machine_id: int) -> int:
        """How many times this machine runs its partition in this stage.

        1 means no preemption; k means k-1 preemptions occurred before a
        successful run.  Deterministic given (seed, call order).
        """
        executions = 1
        while (
            executions <= self.max_retries_per_stage
            and self._rng.random() < self.preempt_probability
        ):
            executions += 1
        return executions
