"""ProcessGraphService: correctness, affinity, stats merge, lifecycle.

The process-pool acceptance bar mirrors the thread-pool stress suite: a
ProcessGraphService serving the same 24 mixed concurrent queries must
return outputs identical to sequential Session runs, with per-run metrics
isolated and the merged stats equal to the field-wise sum of the
per-worker SessionStats.  On top of that, routing is observable: the same
graph lands on the same worker (affinity -> cache hits), and a hot queue
spills over to the least-loaded worker.

``REPRO_SERVE_PROCESSES`` overrides the worker-process count (CI runs the
suite with 2).
"""

import dataclasses
import os
import random
import signal
import socket
import threading

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.api import Session
from repro.api.session import SessionStats
from repro.graph.generators import degree_weighted, erdos_renyi_gnm
from repro.serve import (
    GraphService,
    ProcessGraphService,
    ServiceClosedError,
    WorkerDiedError,
    serve_socket,
)

PROCESSES = int(os.environ.get("REPRO_SERVE_PROCESSES", "2"))
CONFIG = ClusterConfig(num_machines=4)

GRAPHS = {
    "a": erdos_renyi_gnm(40, 100, seed=1),
    "b": erdos_renyi_gnm(40, 90, seed=2),
}

#: every (algorithm, graph, seed) twice, shuffled: 2 * 2 * 3 * 2 = 24
#: queries, so each shared graph sees guaranteed cache hits
QUERIES = [
    (algorithm, name, seed)
    for algorithm in ("mis", "matching", "components")
    for name in ("a", "b")
    for seed in (0, 1)
] * 2

#: the SessionStats portion of a stats row (merged or per-worker)
STAT_FIELDS = [field.name for field in dataclasses.fields(SessionStats)]


def _output_key(result):
    output = result.output
    for attribute in ("independent_set", "matching", "labels"):
        value = getattr(output, attribute, None)
        if value is not None:
            return value
    raise AssertionError(f"unrecognized output {type(output).__name__}")


def test_concurrent_results_match_sequential_and_stats_merge():
    queries = list(QUERIES)
    random.Random(7).shuffle(queries)
    assert len(queries) >= 20

    # Sequential ground truth: one cold Session per distinct query.
    expected = {}
    for algorithm, name, seed in set(queries):
        run = Session(CONFIG).run(algorithm, GRAPHS[name], seed=seed)
        expected[(algorithm, name, seed)] = run

    with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
        for name, graph in GRAPHS.items():
            service.load(name, graph)
        pending = [
            (query, service.submit(query[0], query[1], seed=query[2]))
            for query in queries
        ]
        results = [(query, p.result(300)) for query, p in pending]
        per_worker = service.worker_stats()
        stats = service.stats()

    # 1. Outputs identical to sequential runs — the process boundary and
    # the routing policy change nothing about what a query returns.
    for query, result in results:
        reference = expected[query]
        assert _output_key(result) == _output_key(reference), query
        assert result.summary == reference.summary, query
        assert result.description == reference.description
        assert result.graph_name == query[1]

    # 2. Per-run metrics isolated: each run is exactly the sequential
    # cold profile, or prep_shuffles cheaper when its worker's cache hit.
    for query, result in results:
        reference = expected[query]
        cold = reference.metrics["shuffles"]
        observed = result.metrics["shuffles"]
        if result.preprocessing_reused:
            assert observed == cold - result.shuffles_saved, query
        else:
            assert observed == cold, query

    # 3. Merged stats == field-wise sum of the per-worker SessionStats.
    assert len(per_worker) == PROCESSES
    for field in STAT_FIELDS:
        total = sum(row[field] for row in per_worker)
        assert stats[field] == pytest.approx(total), field

    # 4. ...and equal to the sum of the per-run envelopes.
    assert stats["runs"] == len(queries)
    assert (stats["preprocessing_hits"] + stats["preprocessing_misses"]
            == len(queries))
    assert stats["shuffles_executed"] == sum(
        result.metrics["shuffles"] for _, result in results)
    assert stats["kv_reads_executed"] == sum(
        result.metrics["kv_reads"] for _, result in results)
    assert stats["kv_writes_executed"] == sum(
        result.metrics["kv_writes"] for _, result in results)
    assert stats["shuffles_saved"] == sum(
        result.shuffles_saved for _, result in results)

    # 5. Dispatcher accounting.
    assert stats["completed"] == len(queries)
    assert stats["failed"] == 0
    assert stats["preprocessing_hits"] >= len(GRAPHS)


def test_affinity_same_graph_same_worker_cache_hits():
    """Sequential queries on one graph all land on its affinity worker,
    so every repeat takes that worker's preprocessing cache hit."""
    with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
        service.load("g", GRAPHS["a"])
        results = [service.query("mis", "g", seed=0, timeout=300)
                   for _ in range(6)]
        per_worker = service.worker_stats()
        stats = service.stats()

    busy = [row for row in per_worker if row["runs"] > 0]
    assert len(busy) == 1, "affinity must keep one graph on one worker"
    assert busy[0]["runs"] == 6
    assert busy[0]["preprocessing_misses"] == 1
    assert busy[0]["preprocessing_hits"] == 5
    assert stats["preprocessing_hits"] > 0
    assert stats["rebalances"] == 0
    assert stats["affinity_routed"] == 5  # first sight assigns, 5 follow
    assert stats["graphs_shipped"] == 1  # pickled once, then by reference
    outputs = {frozenset(r.output.independent_set) for r in results}
    assert len(outputs) == 1


@pytest.mark.skipif(PROCESSES < 2, reason="spillover needs >= 2 workers")
def test_hot_queue_spills_to_least_loaded_worker():
    """A burst on one graph with a tight spill threshold rebalances to
    the least-loaded worker, which re-prepares and serves correctly."""
    with ProcessGraphService(CONFIG, processes=PROCESSES,
                             spill_threshold=1) as service:
        service.load("g", GRAPHS["a"])
        pending = [service.submit("mis", "g", seed=0) for _ in range(12)]
        results = [p.result(300) for p in pending]
        per_worker = service.worker_stats()
        stats = service.stats()

    assert stats["rebalances"] >= 1
    assert sum(row["runs"] for row in per_worker) == 12
    # the spill-over re-prepare: more than one worker paid a miss, yet
    # outputs stay identical to the single-worker answer
    assert stats["preprocessing_misses"] >= 2
    reference = Session(CONFIG).run("mis", GRAPHS["a"], seed=0)
    for result in results:
        assert (result.output.independent_set
                == reference.output.independent_set)


def test_matches_thread_service_results_and_weighted_adaptation():
    """Thread service and process service agree query-for-query,
    including the automatic degree-weighted derivation."""
    with GraphService(CONFIG, workers=2) as threads, \
            ProcessGraphService(CONFIG, processes=PROCESSES) as procs:
        threads.load("g", GRAPHS["b"])
        procs.load("g", GRAPHS["b"])
        for algorithm in ("mis", "matching", "components", "msf"):
            mine = procs.query(algorithm, "g", seed=1, timeout=300)
            theirs = threads.query(algorithm, "g", seed=1, timeout=300)
            assert mine.summary == theirs.summary, algorithm
            assert mine.graph_name == theirs.graph_name, algorithm
    direct = Session(CONFIG).run("msf", degree_weighted(GRAPHS["b"]), seed=1)
    assert mine.summary == direct.summary


def test_raw_graph_objects_and_fingerprint_sharing():
    """Unnamed graphs route by content fingerprint: equal objects share
    one worker's cache."""
    first = erdos_renyi_gnm(30, 60, seed=5)
    second = erdos_renyi_gnm(30, 60, seed=5)  # equal content, new object
    with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
        cold = service.query("mis", first, seed=0, timeout=300)
        warm = service.query("mis", second, seed=0, timeout=300)
        stats = service.stats()
    assert not cold.preprocessing_reused
    assert warm.preprocessing_reused
    assert cold.graph_name is None
    assert stats["graphs_shipped"] == 1


def test_errors_surface_at_submit_and_in_results():
    with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
        service.load("g", GRAPHS["a"])
        with pytest.raises(KeyError, match="unknown algorithm"):
            service.submit("frobnicate", "g")
        with pytest.raises(KeyError, match="no graph loaded"):
            service.submit("mis", "nope")
        with pytest.raises(TypeError, match="unexpected parameter"):
            service.submit("mis", "g", bogus=1)
        stats = service.stats()
        assert stats["submitted"] == 0
        # a worker-side failure resolves the future, not the service:
        # two-cycle rejects a non-cycle graph with ValueError
        error = service.submit("two-cycle", "g").exception(300)
        assert error is not None
        assert service.stats()["failed"] == 1
        # and the service keeps serving
        assert service.query("mis", "g", timeout=300).summary


def test_unpicklable_graph_fails_at_submit_and_close_does_not_hang():
    """A graph that cannot cross the process boundary surfaces its
    pickling error to the submitter, leaks no in-flight entry (close
    would otherwise hang draining it), and leaves the service serving."""
    poisoned = erdos_renyi_gnm(10, 15, seed=3)
    poisoned.not_picklable = lambda: None
    with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
        with pytest.raises(Exception) as excinfo:
            service.submit("mis", poisoned)
        assert not isinstance(excinfo.value, ServiceClosedError)
        assert all(c.inflight_runs == 0 for c in service._clients)
        service.load("ok", GRAPHS["a"])
        assert service.query("mis", "ok", timeout=300).algorithm == "mis"
    # context-manager exit ran close(wait=True): reaching here means the
    # drain did not wedge on the discarded request


def test_unload_forgets_the_name():
    with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
        service.load("g", GRAPHS["a"])
        service.query("mis", "g", timeout=300)
        service.unload("g")
        assert service.graphs() == []
        with pytest.raises(KeyError, match="no graph loaded"):
            service.submit("mis", "g")


def test_closed_service_rejects_submissions():
    service = ProcessGraphService(CONFIG, processes=PROCESSES)
    service.load("g", GRAPHS["a"])
    assert service.query("mis", "g", timeout=300).algorithm == "mis"
    service.close()
    with pytest.raises(ServiceClosedError):
        service.submit("mis", "g")
    # close is idempotent and stats survive the processes
    service.close()
    assert service.stats()["runs"] == 1


@pytest.mark.skipif(PROCESSES < 2, reason="failover needs >= 2 workers")
def test_worker_death_fails_pending_then_fails_over():
    """Killing a worker fails its in-flight futures with WorkerDiedError;
    later queries re-route (and re-ship) to the survivors."""
    with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
        service.load("g", GRAPHS["a"])
        warm = service.query("mis", "g", seed=0, timeout=300)
        victim = next(c for c in service._clients if c.shipped)
        victim.process.terminate()
        victim.process.join(30)
        victim.reader.join(30)
        assert not victim.alive
        result = service.query("mis", "g", seed=0, timeout=300)
        assert (result.output.independent_set
                == warm.output.independent_set)
        stats = service.stats()
        assert stats["graphs_shipped"] >= 1  # re-shipped to a survivor

    # direct check of the in-flight path: pending fail on a dead pipe
    with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
        service.load("g", GRAPHS["a"])
        client = service._clients[0]
        client.process.terminate()
        client.process.join(30)
        client.reader.join(30)
        with pytest.raises((WorkerDiedError, ServiceClosedError)):
            client.submit_run("mis", "fp", GRAPHS["a"], 0, True, {},
                              None, lambda ok: None)


@pytest.mark.skipif(PROCESSES < 2, reason="failover needs >= 2 workers")
def test_worker_death_retries_inflight_queries():
    """Queries in flight on a killed worker are transparently re-run on
    a survivor: the caller sees results, never WorkerDiedError."""
    with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
        service.load("g", GRAPHS["a"])
        warm = service.query("mis", "g", seed=0, timeout=300)
        victim = next(c for c in service._clients if c.shipped)
        # wedge the worker so the burst is provably in flight at the kill
        os.kill(victim.process.pid, signal.SIGSTOP)
        pending = [service.submit("mis", "g", seed=0) for _ in range(3)]
        os.kill(victim.process.pid, signal.SIGKILL)
        for p in pending:
            result = p.result(300)
            assert (result.output.independent_set
                    == warm.output.independent_set)
        stats = service.stats()
        assert stats["queries_retried"] == 3
        assert stats["failed"] == 0
        assert stats["completed"] == 4
        assert stats["submitted"] == 4  # a retry is the same query


def test_single_worker_death_retries_on_respawn():
    """With one worker there is no survivor: the retry lands on the
    replacement that the on-death respawn brings up (the respawn runs
    before in-flight queries are failed, so the retry has a target)."""
    with ProcessGraphService(CONFIG, processes=1) as service:
        service.load("g", GRAPHS["a"])
        warm = service.query("mis", "g", seed=0, timeout=300)
        victim = service._clients[0]
        os.kill(victim.process.pid, signal.SIGSTOP)
        pending = service.submit("mis", "g", seed=0)
        os.kill(victim.process.pid, signal.SIGKILL)
        result = pending.result(300)
        assert (result.output.independent_set
                == warm.output.independent_set)
        stats = service.stats()
        assert stats["queries_retried"] == 1
        assert stats["workers_respawned"] >= 1


def test_retry_opt_out_surfaces_worker_death():
    """retry_worker_death=False restores fail-fast WorkerDiedError."""
    with ProcessGraphService(CONFIG, processes=1,
                             retry_worker_death=False) as service:
        service.load("g", GRAPHS["a"])
        service.query("mis", "g", seed=0, timeout=300)
        victim = service._clients[0]
        os.kill(victim.process.pid, signal.SIGSTOP)
        pending = service.submit("mis", "g", seed=0)
        os.kill(victim.process.pid, signal.SIGKILL)
        assert isinstance(pending.exception(300), WorkerDiedError)
        assert service.stats()["queries_retried"] == 0


class TestProtocol:
    """The JSON-lines protocol drives the process pool unchanged."""

    def test_stream_round_trip(self):
        import io
        import json

        from repro.serve import serve_stream

        edges = [[u, v] for u, v in GRAPHS["a"].edges()]
        requests = [
            {"op": "load", "name": "g", "edges": edges, "id": 1},
            {"op": "run", "algorithm": "mis", "graph": "g", "seed": 2,
             "id": 2},
            {"op": "run", "algorithm": "mis", "graph": "g", "seed": 2,
             "id": 3},
            {"op": "stats", "id": 4},
            {"op": "shutdown", "id": 5},
        ]
        output = io.StringIO()
        with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
            serve_stream(
                service,
                io.StringIO("\n".join(json.dumps(r) for r in requests)
                            + "\n"),
                output,
            )
        responses = [json.loads(line)
                     for line in output.getvalue().splitlines()]
        assert [r["ok"] for r in responses] == [True] * 5
        cold, warm = responses[1]["result"], responses[2]["result"]
        assert cold["summary"] == warm["summary"]
        assert not cold["preprocessing_reused"]
        assert warm["preprocessing_reused"]
        assert warm["graph_name"] == "g"
        stats = responses[3]["stats"]
        assert stats["runs"] == 2
        assert stats["processes"] == PROCESSES
        assert len(stats["per_worker"]) == PROCESSES
        json.dumps(stats)  # the merged view stays JSON-serializable

    def test_tcp_round_trip(self):
        edges = [[u, v] for u, v in GRAPHS["b"].edges()]
        with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
            server = serve_socket(service)
            thread = threading.Thread(target=server.serve_forever,
                                      daemon=True)
            thread.start()
            try:
                import json

                with socket.create_connection(server.server_address[:2],
                                              timeout=300) as conn:
                    stream = conn.makefile("rw", encoding="utf-8")
                    for request in (
                        {"op": "load", "name": "g", "edges": edges},
                        {"op": "run", "algorithm": "matching",
                         "graph": "g"},
                        {"op": "shutdown"},
                    ):
                        stream.write(json.dumps(request) + "\n")
                        stream.flush()
                    responses = [json.loads(stream.readline())
                                 for _ in range(3)]
                assert all(r["ok"] for r in responses)
                assert responses[1]["result"]["summary"]["output_size"] > 0
                thread.join(30)
                assert not thread.is_alive()
            finally:
                server.close()
