"""Tree-algorithm substrate.

Everything Appendix B of the paper relies on: sparse-table range-minimum
queries, Euler tours, lowest common ancestors, heavy-light decomposition
(Algorithm 5), plus the ternary treap of Appendix A used to analyze
TruncatedPrim, and pointer jumping used by forest connectivity.
"""

from repro.trees.rmq import RangeMax, RangeMin
from repro.trees.euler_tour import EulerTour, RootedForest
from repro.trees.lca import LCAIndex
from repro.trees.heavy_light import HeavyLightDecomposition
from repro.trees.treap import TernaryTreap, build_ternary_treap
from repro.trees.pointer_jumping import find_roots, forest_depth

__all__ = [
    "RangeMax",
    "RangeMin",
    "EulerTour",
    "RootedForest",
    "LCAIndex",
    "HeavyLightDecomposition",
    "TernaryTreap",
    "build_ternary_treap",
    "find_roots",
    "forest_depth",
]
