"""Stable key hashing for placement decisions.

Shard and machine placement must be *reproducible*: the paper's metrics
(shard contention, per-machine critical paths, cache hit rates) are only
comparable across runs if the same key always lands on the same shard.
Python's builtin ``hash`` is salted per interpreter process for strings
(PYTHONHASHSEED), so it cannot be used for placement.

This module provides :func:`stable_hash`, a salt-free 64-bit hash built on
a splitmix64 finalizer — high quality, dependency-free, and identical
across interpreter runs.  It is the canonical home of the finalizer;
:mod:`repro.core.ranks` builds its hash-based priorities on the same one.
"""

from __future__ import annotations

from typing import Any

_MASK = (1 << 64) - 1
_SEED = 0x517CC1B727220A95


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def _fold_int(state: int, value: int) -> int:
    if value < 0:
        state = _splitmix64(state ^ 0xA5A5A5A5A5A5A5A5)
        value = -value
    state = _splitmix64(state ^ (value & _MASK))
    value >>= 64
    while value:  # arbitrary-precision ints: fold 64 bits at a time
        state = _splitmix64(state ^ (value & _MASK))
        value >>= 64
    return state


def _fold_bytes(state: int, value: bytes) -> int:
    for index in range(0, len(value), 8):
        chunk = int.from_bytes(value[index:index + 8], "little")
        state = _splitmix64(state ^ chunk)
    return _splitmix64(state ^ len(value))


def _fold(state: int, value: Any) -> int:
    if value is None:
        return _splitmix64(state ^ 0x0F)
    # Numeric cross-type equality must be preserved (dicts treat
    # True == 1 == 1.0 as one key, so placement must too): bools and
    # integral floats fold exactly like the equal int.
    if isinstance(value, bool):
        return _fold_int(state, int(value))
    if isinstance(value, int):
        return _fold_int(state, value)
    if isinstance(value, float):
        if value.is_integer():
            return _fold_int(state, int(value))
        return _fold_bytes(_splitmix64(state ^ 0x0D),
                           value.hex().encode("ascii"))
    if isinstance(value, str):
        return _fold_bytes(_splitmix64(state ^ 0x0E), value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return _fold_bytes(_splitmix64(state ^ 0x10), bytes(value))
    if isinstance(value, tuple):
        state = _splitmix64(state ^ 0x11 ^ len(value))
        for item in value:
            state = _fold(state, item)
        return state
    if isinstance(value, frozenset):
        # Order-insensitive combine, mirroring builtin set hashing.
        combined = 0
        for item in value:
            combined ^= _fold(_SEED, item)
        return _splitmix64(state ^ 0x12 ^ combined)
    # Unknown key types fall back to the builtin hash; placement of such
    # keys is then only stable within one interpreter run.
    return _splitmix64(state ^ (hash(value) & _MASK))


def stable_hash(key: Any) -> int:
    """A 64-bit hash of ``key`` that is identical across interpreter runs.

    Supports the key types algorithms place by — ints, strings, bytes,
    floats, bools, None, and tuples/frozensets thereof.  Like the builtin
    hash, equal numeric keys of different types (``True == 1 == 1.0``)
    hash equally, so a dict-backed shard and the placement hash always
    agree on key identity.

    Small non-negative ints — the vertex-id keys of every DHT placement
    (``DHTStore.shard_of``, ``Cluster.machine_for``) — take an inlined
    single-``splitmix64`` path; it computes exactly ``_fold(_SEED, key)``
    without the dispatch chain or call overhead.
    """
    if type(key) is int and 0 <= key <= _MASK:
        x = ((_SEED ^ key) + 0x9E3779B97F4A7C15) & _MASK
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
        return x ^ (x >> 31)
    return _fold(_SEED, key)


def stable_hash_reference(key: Any) -> int:
    """The general fold, kept as the fast path's executable specification.

    ``tests/ampc/test_hashing_fastpath.py`` asserts ``stable_hash`` and
    this function agree exactly on every supported key shape.
    """
    return _fold(_SEED, key)
