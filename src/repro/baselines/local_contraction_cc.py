"""MPC connectivity via local contractions (the Section 5.6 baseline).

This is the general-purpose MPC connectivity algorithm of Lacki, Mirrokni
and Wlodarczyk (CC-LocalContraction) that prior work found to be the
fastest MPC connectivity implementation, and that the paper compares its
AMPC 1-vs-2-Cycle algorithm against.

Each phase, every vertex points to the minimum-rank vertex of its closed
neighborhood (priorities are hashed, so this costs no communication once
the adjacency is grouped), and all edges are rewritten through the pointer
map.  On a cycle the surviving ids are the local rank minima — one third of
the vertices in expectation, matching the paper's observed 2.59-3x
(average 2.69x) per-iteration shrink.  Three shuffles per phase: adjacency
grouping plus the two endpoint rewrites.

Pointer maps are not idempotent (the pointer target may itself point
elsewhere); that is sound for connectivity because every pointer stays
inside its component, and the final labels are resolved when composing the
per-phase maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.faults import FaultPlan
from repro.ampc.metrics import Metrics
from repro.api.incremental import patch_records, touched_edges
from repro.api.registry import AlgorithmSpec, ParamSpec, register_algorithm
from repro.core.ranks import hash_rank
from repro.graph.graph import Graph, edge_key
from repro.mpc.runtime import MPCRuntime

EdgeId = Tuple[int, int]


@dataclass
class LocalContractionResult:
    """Component labels from the MPC local-contraction baseline."""

    labels: List[int]
    metrics: Metrics
    phases: int = 0
    #: vertex counts after each phase (for the shrink-factor analysis)
    vertices_per_phase: List[int] = field(default_factory=list)

    @property
    def num_components(self) -> int:
        return len(set(self.labels))


@dataclass
class PreparedLocalContraction:
    """Edge list staged onto its home machines (seed-independent)."""

    records: List[EdgeId]


def prepare_local_contraction_cc(graph: Graph, *,
                                 runtime: Optional[MPCRuntime] = None,
                                 config: Optional[ClusterConfig] = None,
                                 seed: int = 0) -> PreparedLocalContraction:
    """Stage the canonical edge list (one placement shuffle)."""
    del seed
    if runtime is None:
        runtime = MPCRuntime(config=config)
    placed = runtime.pipeline.from_items(
        [edge_key(u, v) for u, v in graph.edges()]
    ).repartition(lambda edge: edge, name="place-edge-list")
    runtime.next_round()
    return PreparedLocalContraction(records=placed.collect())


def update_local_contraction_cc(prepared: PreparedLocalContraction,
                                graph: Graph, *,
                                runtime: Optional[MPCRuntime] = None,
                                config: Optional[ClusterConfig] = None,
                                seed: int = 0,
                                insertions=(), deletions=()
                                ) -> PreparedLocalContraction:
    """Patch the staged edge list after an edge batch (O(batch))."""
    del seed
    if runtime is None:
        runtime = MPCRuntime(config=config)
    touched = touched_edges(insertions, deletions)
    live = [edge for edge in touched if graph.has_edge(*edge)]
    removed = [edge for edge in touched if not graph.has_edge(*edge)]
    patch = runtime.pipeline.from_items(live).repartition(
        lambda edge: edge, name="place-edge-patch")
    runtime.next_round()
    return PreparedLocalContraction(records=patch_records(
        prepared.records, patch.collect(), removed,
        key=lambda edge: edge))


def mpc_local_contraction_cc(graph: Graph, *,
                             runtime: Optional[MPCRuntime] = None,
                             config: Optional[ClusterConfig] = None,
                             fault_plan: Optional[FaultPlan] = None,
                             seed: int = 0,
                             in_memory_threshold: int = 512,
                             max_phases: int = 10_000,
                             prepared: Optional[PreparedLocalContraction] = None
                             ) -> LocalContractionResult:
    """Connected-component labels via iterated local contraction."""
    if runtime is None:
        runtime = MPCRuntime(config=config, fault_plan=fault_plan)
    metrics = runtime.metrics

    n = graph.num_vertices
    label = list(range(n))
    if prepared is not None:
        current = runtime.pipeline.from_items(
            prepared.records, key_fn=lambda edge: edge
        )
    else:
        current = runtime.pipeline.from_items(
            [edge_key(u, v) for u, v in graph.edges()]
        )
    phases = 0
    vertices_per_phase: List[int] = []
    while True:
        edge_count = current.count()
        if edge_count == 0:
            break
        if edge_count <= in_memory_threshold:
            remaining = runtime.run_in_memory(current, solver=list)
            _merge_labels(label, remaining)
            break
        phases += 1
        if phases > max_phases:
            raise RuntimeError("local contraction did not converge")
        runtime.next_round()
        phase_seed = (seed, phases)

        def _rank(vertex: int) -> Tuple[float, int]:
            return (hash_rank(phase_seed[0], phase_seed[1], vertex), vertex)

        # Shuffle 1: adjacency grouping; each vertex picks the minimum-rank
        # vertex of its closed neighborhood (hash priorities: no shuffle).
        adjacency = current.flat_map(
            lambda edge: [(edge[0], edge[1]), (edge[1], edge[0])],
            name="key-by-endpoints",
        ).group_by_key(name="group-adjacency")
        pointers = adjacency.map_elements(
            lambda group: (group[0],
                           min([group[0]] + list(group[1]), key=_rank)),
            name="local-minima-pointers",
        )
        pointer_map = dict(pointers.collect())
        # Compose into the global labels (driver-side output bookkeeping).
        for v in range(n):
            label[v] = pointer_map.get(label[v], label[v])

        # Shuffles 2 + 3: rewrite both endpoints through the pointer map.
        tagged_ptrs = pointers.map_elements(
            lambda pair: (pair[0], ("ptr", pair[1])), name="tag-pointers"
        )
        keyed_u = current.map_elements(
            lambda edge: (edge[0], ("edge", edge)), name="key-by-u"
        )
        joined_u = keyed_u.flatten_with(tagged_ptrs).group_by_key(
            name="rewrite-u"
        )

        def _apply_u(group):
            vertex, tags = group
            root = vertex
            pending = []
            for kind, payload in tags:
                if kind == "ptr":
                    root = payload
                else:
                    pending.append(payload)
            return [(v, ("edge", (root, v))) for (u, v) in pending]

        half = joined_u.flat_map(_apply_u, name="emit-half")
        joined_v = half.flatten_with(tagged_ptrs).group_by_key(
            name="rewrite-v"
        )

        def _apply_v(group):
            vertex, tags = group
            root = vertex
            pending = []
            for kind, payload in tags:
                if kind == "ptr":
                    root = payload
                else:
                    pending.append(payload)
            seen: Set[EdgeId] = set()
            output = []
            for (u, v) in pending:
                if u == root:
                    continue
                edge = edge_key(u, root)
                if edge not in seen:
                    seen.add(edge)
                    output.append(edge)
            return output

        current = joined_v.flat_map(_apply_v, name="drop-self-loops")
        vertices_per_phase.append(
            len({x for edge in current.collect() for x in edge})
        )

    # Resolve label chains (vertices relabeled to ids that were themselves
    # relabeled in the same phase).
    resolved = _resolve_chains(label)
    return LocalContractionResult(labels=resolved, metrics=metrics,
                                  phases=phases,
                                  vertices_per_phase=vertices_per_phase)


# ---------------------------------------------------------------------------
# Registry spec (the Session/CLI entry point)
# ---------------------------------------------------------------------------


def _summarize(result: LocalContractionResult, graph: Graph):
    return {"output_size": result.num_components, "phases": result.phases}


def _describe(result: LocalContractionResult, graph: Graph, params) -> str:
    return (f"MPC local-contraction components: {result.num_components} "
            f"({result.phases} phase(s))")


register_algorithm(AlgorithmSpec(
    name="local-contraction-cc",
    summary="MPC local-contraction connectivity baseline",
    input_kind="graph",
    run=mpc_local_contraction_cc,
    prepare=prepare_local_contraction_cc,
    update=update_local_contraction_cc,
    summarize=_summarize,
    describe=_describe,
    params=(
        ParamSpec("in_memory_threshold", int, 512,
                  "edge count below which the residual graph is finished "
                  "on one machine"),
    ),
    prep_seed_sensitive=False,  # placement ignores the seed
    model="mpc",
))


def _merge_labels(label: List[int], remaining_edges: List[EdgeId]) -> None:
    """Union the residual edges into the label array (in-memory tail)."""
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    for u, v in remaining_edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    for v in range(len(label)):
        label[v] = find(label[v])


def _resolve_chains(label: List[int]) -> List[int]:
    """Follow label chains to fixpoints (path-compressed)."""
    resolved = list(label)
    for v in range(len(resolved)):
        chain = []
        x = v
        while resolved[x] != x and resolved[resolved[x]] != resolved[x]:
            chain.append(x)
            x = resolved[x]
        final = resolved[x]
        for node in chain:
            resolved[node] = final
        resolved[v] = final
    return resolved
