"""The columnar record layout and its store/dataflow twins.

``ColumnarRecords`` + ``DHTStore.write_columnar`` +
``partition_boxed``/``charge_map_stage`` are batch twins of the boxed
per-element reference paths; every observable — store content, recorded
sizes, per-shard insertion order, simulated charges, placement — must be
identical between the two.  numpy-only (the pure-python mode never
constructs columnar batches).
"""

import pytest

from repro.ampc import Cluster, ClusterConfig
from repro.ampc.dht import DHTStore, StoreSealedError
from repro.ampc.vector import HAVE_NUMPY
from repro.dataflow.pipeline import Pipeline

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="columnar layout needs numpy")

if HAVE_NUMPY:
    from repro.ampc.columnar import ColumnarRecords
    from repro.ampc.vector import np, placement_ids
    from repro.dataflow.columnar import (charge_map_stage, partition_boxed,
                                         roundrobin_counts)


def _pair_records(num_records=12, rows_per=3):
    keys = list(range(num_records))
    indptr = [rows_per * i for i in range(num_records + 1)]
    total = indptr[-1]
    ranks = [i / total for i in range(total)]
    neighbors = [7 * i % 97 for i in range(total)]
    return ColumnarRecords.ragged(keys, indptr, ranks, neighbors)


class TestColumnarRecordsShape:
    def test_items_box_the_reference_objects(self):
        records = ColumnarRecords.ragged([4, 2], [0, 2, 3],
                                         [0.5, 0.25, 0.125], [9, 8, 7])
        assert records.items() == [
            (4, ((0.5, 9), (0.25, 8))),
            (2, ((0.125, 7),)),
        ]
        # boxing is cached: same list object on the second call
        assert records.items() is records.items()

    def test_scalar_records_box_to_plain_scalars(self):
        records = ColumnarRecords.scalars([3, 1], [10, 20])
        assert records.items() == [(3, 10), (1, 20)]
        assert records.value_sizes().tolist() == [8, 8]

    def test_single_column_rows_box_to_scalar_tuples(self):
        records = ColumnarRecords.ragged([0, 1], [0, 1, 3], [5, 6, 7])
        assert records.items() == [(0, (5,)), (1, (6, 7))]

    def test_bad_indptr_rejected(self):
        with pytest.raises(ValueError):
            ColumnarRecords.ragged([0, 1], [0, 1], [5])
        with pytest.raises(ValueError):
            ColumnarRecords([0], None, ())

    def test_placement_matches_store_hash(self):
        records = _pair_records()
        store = DHTStore("s", num_shards=5)
        assert records.shard_ids(5).tolist() == [
            store.shard_of(key) for key in records.keys.tolist()
        ]


class TestWriteColumnarEquivalence:
    def test_matches_write_many_observables(self):
        records = _pair_records()
        columnar = DHTStore("col", num_shards=4)
        boxed = DHTStore("box", num_shards=4)
        total_col = columnar.write_columnar(records)
        total_box = boxed.write_many(records.items())
        assert total_col == total_box
        assert columnar.total_entries == boxed.total_entries
        assert columnar.total_value_bytes == boxed.total_value_bytes
        assert columnar._shards == boxed._shards
        assert columnar._sizes == boxed._sizes
        # per-shard insertion order is observable via dict iteration
        for shard_col, shard_box in zip(columnar._shards, boxed._shards):
            assert list(shard_col) == list(shard_box)

    def test_overwrites_refund_like_write_many(self):
        store = DHTStore("s", num_shards=3)
        store.write_columnar(ColumnarRecords.scalars([1, 2], [10, 20]))
        before = store.total_value_bytes
        store.write_columnar(
            ColumnarRecords.ragged([1], [0, 2], [5, 6], [7, 8]))
        assert store.total_entries == 2
        assert store.total_value_bytes == before - 8 + 32
        assert store.lookup(1) == ((5, 7), (6, 8))

    def test_sealed_store_rejects_columnar_writes(self):
        store = DHTStore("s", num_shards=2)
        store.seal()
        with pytest.raises(StoreSealedError):
            store.write_columnar(ColumnarRecords.scalars([1], [2]))

    def test_lookup_reports_precomputed_sizes(self):
        records = _pair_records(num_records=6, rows_per=2)
        store = DHTStore("s", num_shards=3)
        store.write_columnar(records)
        store.seal()
        for (key, value), size in zip(records.items(),
                                      records.value_size_list()):
            fetched, fetched_size = store.lookup_with_size(key)
            assert fetched == value
            assert fetched_size == size


class TestDataflowTwins:
    def test_partition_boxed_matches_from_items(self):
        cluster = Cluster(ClusterConfig(num_machines=4))
        pipeline = Pipeline(cluster)
        items = [(key, key * key) for key in range(50)]
        keys = np.arange(50, dtype=np.int64)
        fast = partition_boxed(pipeline, items, placement_ids(keys, 4))
        reference = pipeline.from_items(items, key_fn=lambda item: item[0])
        assert fast._partitions == reference._partitions

    def test_roundrobin_counts_match_cluster_partition(self):
        cluster = Cluster(ClusterConfig(num_machines=4))
        for size in (0, 1, 9, 10, 11, 100):
            parts = cluster.partition(list(range(size)))
            assert roundrobin_counts(size, 4) == [len(p) for p in parts]

    def test_charge_map_stage_matches_boxed_par_do(self):
        config = ClusterConfig(num_machines=3)
        boxed_cluster = Cluster(config)
        boxed = Pipeline(boxed_cluster)
        items = list(range(20))
        boxed.from_items(items).map_elements(lambda x: x + 1, name="inc")
        fast_cluster = Cluster(config)
        charge_map_stage(fast_cluster,
                         roundrobin_counts(len(items), 3))
        assert (fast_cluster.metrics.simulated_time_s
                == boxed_cluster.metrics.simulated_time_s)
        assert (fast_cluster._stage_counter
                == boxed_cluster._stage_counter)
