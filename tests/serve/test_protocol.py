"""JSON-lines protocol tests: stdio stream, TCP server, error reporting."""

import io
import json
import socket
import threading

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.graph.generators import erdos_renyi_gnm
from repro.serve import GraphService, handle_request, serve_socket, serve_stream

CONFIG = ClusterConfig(num_machines=3)
GRAPH = erdos_renyi_gnm(24, 50, seed=1)
EDGES = [[u, v] for u, v in GRAPH.edges()]


@pytest.fixture()
def service():
    with GraphService(CONFIG, workers=2) as svc:
        yield svc


def _drive(service, requests):
    output = io.StringIO()
    serve_stream(
        service,
        io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n"),
        output,
    )
    return [json.loads(line) for line in output.getvalue().splitlines()]


class TestStream:
    def test_load_run_stats_shutdown(self, service):
        responses = _drive(service, [
            {"op": "load", "name": "g", "edges": EDGES, "id": 1},
            {"op": "run", "algorithm": "mis", "graph": "g", "seed": 2,
             "id": 2},
            {"op": "run", "algorithm": "mis", "graph": "g", "seed": 2,
             "id": 3},
            {"op": "stats", "id": 4},
            {"op": "shutdown", "id": 5},
        ])
        assert [r["ok"] for r in responses] == [True] * 5
        assert [r["id"] for r in responses] == [1, 2, 3, 4, 5]
        assert responses[0]["vertices"] == GRAPH.num_vertices
        assert responses[0]["edges"] == GRAPH.num_edges
        cold, warm = responses[1]["result"], responses[2]["result"]
        assert cold["summary"] == warm["summary"]
        assert not cold["preprocessing_reused"]
        assert warm["preprocessing_reused"]
        assert warm["graph_name"] == "g"
        assert responses[3]["stats"]["runs"] == 2
        assert responses[4]["bye"]

    def test_weighted_inline_edges(self, service):
        responses = _drive(service, [
            {"op": "load", "name": "w",
             "edges": [[0, 1, 2.0], [1, 2, 1.0], [0, 2, 3.0]]},
            {"op": "run", "algorithm": "msf", "graph": "w"},
        ])
        assert responses[1]["ok"]
        assert responses[1]["result"]["summary"]["output_size"] == 2
        assert responses[1]["result"]["summary"]["weight"] == 3.0

    def test_load_from_file(self, service, tmp_path):
        from repro.graph.io import write_edge_list

        path = tmp_path / "g.txt"
        write_edge_list(GRAPH, path)
        responses = _drive(service, [
            {"op": "load", "name": "g", "path": str(path)},
            {"op": "run", "algorithm": "components", "graph": "g"},
        ])
        assert all(r["ok"] for r in responses)

    def test_errors_are_reported_not_fatal(self, service):
        responses = _drive(service, [
            {"op": "load", "name": "g", "edges": EDGES},
            {"op": "run", "algorithm": "frobnicate", "graph": "g", "id": 1},
            {"op": "run", "algorithm": "mis", "graph": "missing", "id": 2},
            {"op": "run", "algorithm": "mis", "graph": "g",
             "params": {"bogus": 1}, "id": 3},
            {"op": "load", "name": "x", "id": 4},
            {"op": "nonsense", "id": 5},
            {"op": "run", "algorithm": "mis", "graph": "g", "id": 6},
        ])
        assert [r["ok"] for r in responses] == [
            True, False, False, False, False, False, True,
        ]
        assert "unknown algorithm" in responses[1]["error"]
        assert "no graph loaded" in responses[2]["error"]
        assert "unexpected parameter" in responses[3]["error"]
        assert "'edges' or 'path'" in responses[4]["error"]
        assert "unknown op" in responses[5]["error"]

    def test_invalid_json_line(self, service):
        output = io.StringIO()
        serve_stream(service, io.StringIO("this is not json\n"), output)
        response = json.loads(output.getvalue())
        assert not response["ok"]
        assert "invalid JSON" in response["error"]

    def test_handle_request_rejects_non_objects(self, service):
        response = handle_request(service, ["not", "an", "object"])
        assert not response["ok"]


class TestLoadShaping:
    """The wire half of admission control and deadlines: structured
    errors on the line, never a connection teardown."""

    def test_malformed_deadline_ms_is_a_structured_error(self, service):
        responses = _drive(service, [
            {"op": "load", "name": "g", "edges": EDGES},
            {"op": "run", "algorithm": "mis", "graph": "g",
             "deadline_ms": "soon", "id": 1},
            {"op": "run", "algorithm": "mis", "graph": "g",
             "deadline_ms": -5, "id": 2},
            {"op": "run", "algorithm": "mis", "graph": "g",
             "deadline_ms": True, "id": 3},
            # the stream survives every malformed line
            {"op": "run", "algorithm": "mis", "graph": "g", "id": 4},
        ])
        assert [r["ok"] for r in responses] == [True, False, False,
                                                False, True]
        for response in responses[1:4]:
            assert "'deadline_ms'" in response["error"]
            assert "deadline_exceeded" not in response

    def test_unknown_fields_are_rejected_by_name(self, service):
        responses = _drive(service, [
            {"op": "load", "name": "g", "edges": EDGES},
            {"op": "run", "algorithm": "mis", "graph": "g",
             "deadlin_ms": 50, "id": 1},
            {"op": "ping", "shards": 3, "id": 2},
            {"op": "run", "algorithm": "mis", "graph": "g", "id": 3},
        ])
        assert [r["ok"] for r in responses] == [True, False, False, True]
        assert "deadlin_ms" in responses[1]["error"]  # the misspelling
        assert "deadline_ms" in responses[1]["error"]  # what is allowed
        assert "shards" in responses[2]["error"]

    def test_expired_deadline_answers_deadline_exceeded(self, service):
        responses = _drive(service, [
            {"op": "load", "name": "g", "edges": EDGES},
            {"op": "run", "algorithm": "mis", "graph": "g",
             "deadline_ms": 0, "id": 1},
            {"op": "run", "algorithm": "mis", "graph": "g", "id": 2},
        ])
        assert not responses[1]["ok"]
        assert responses[1]["deadline_exceeded"] is True
        assert responses[2]["ok"]  # the service is unharmed

    def test_shed_query_answers_overloaded_with_retry_hint(self):
        import threading

        from repro.serve import estimate_query_cost
        from repro.api import registry

        price = estimate_query_cost(
            registry.get("mis"), GRAPH.num_vertices, GRAPH.num_edges,
            cached=False, config=CONFIG)
        with GraphService(CONFIG, workers=1,
                          max_inflight_cost=price * 1.2,
                          admission_queue_factor=1.0) as svc:
            svc.load("g", GRAPH)
            gate = threading.Event()
            svc._pool.submit(gate.wait)  # hold the admitted cost in flight
            first = svc.submit("mis", "g", seed=0)
            response = handle_request(
                svc, {"op": "run", "algorithm": "mis", "graph": "g",
                      "seed": 1, "id": 7})
            gate.set()
            first.result(60)
            assert response == {
                "ok": False, "error": response["error"],
                "overloaded": True,
                "retry_after_s": response["retry_after_s"], "id": 7,
            }
            assert response["retry_after_s"] > 0
            assert "overloaded" in response["error"]


class TestSocket:
    def test_tcp_round_trip(self, service):
        server = serve_socket(service)  # ephemeral port
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with socket.create_connection(server.server_address[:2],
                                          timeout=30) as conn:
                stream = conn.makefile("rw", encoding="utf-8")
                for request in (
                    {"op": "load", "name": "g", "edges": EDGES},
                    {"op": "run", "algorithm": "matching", "graph": "g"},
                    {"op": "shutdown"},
                ):
                    stream.write(json.dumps(request) + "\n")
                    stream.flush()
                responses = [json.loads(stream.readline())
                             for _ in range(3)]
            assert all(r["ok"] for r in responses)
            assert responses[1]["result"]["summary"]["output_size"] > 0
            assert responses[2]["bye"]
            thread.join(30)
            assert not thread.is_alive()
        finally:
            server.close()

    def test_close_unblocks_idle_connection(self, service):
        """Regression: close() with a client holding an idle connection
        open must force the handler out of its blocked read and return,
        instead of leaving the connection (and anything joining on the
        server) wedged."""
        server = serve_socket(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        with socket.create_connection(server.server_address[:2],
                                      timeout=30) as conn:
            stream = conn.makefile("rw", encoding="utf-8")
            stream.write(json.dumps({"op": "ping"}) + "\n")
            stream.flush()
            assert json.loads(stream.readline())["pong"]
            # the handler is now blocked reading the next line; close
            # from another thread must not hang on it
            assert server.active_connections == 1
            closer = threading.Thread(target=lambda: server.close(drain=0.2))
            closer.start()
            closer.join(10)
            assert not closer.is_alive()
            assert stream.readline() == ""  # server force-closed the socket
        thread.join(10)
        assert not thread.is_alive()
        assert server.active_connections == 0

    def test_close_drains_request_in_flight(self, service):
        """close() while a request is mid-flight delivers the response
        within the drain window, then shuts the connection down."""
        server = serve_socket(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        with socket.create_connection(server.server_address[:2],
                                      timeout=30) as conn:
            stream = conn.makefile("rw", encoding="utf-8")
            stream.write(json.dumps({"op": "load", "name": "g",
                                     "edges": EDGES}) + "\n")
            stream.write(json.dumps({"op": "run", "algorithm": "mis",
                                     "graph": "g"}) + "\n")
            stream.flush()
            closer = threading.Thread(target=lambda: server.close(drain=30))
            closer.start()
            responses = [json.loads(stream.readline()) for _ in range(2)]
            assert all(r["ok"] for r in responses)
            assert responses[1]["result"]["summary"]["output_size"] > 0
            # once the in-flight work has drained, the server closes the
            # now-idle connection itself — no client cooperation needed
            assert stream.readline() == ""
        closer.join(30)
        assert not closer.is_alive()
        thread.join(10)
        assert not thread.is_alive()

    def test_close_is_idempotent_and_safe_before_serving(self, service):
        server = serve_socket(service)
        server.close()  # never served: must not hang on shutdown()
        server.close()  # and calling it again is a no-op
