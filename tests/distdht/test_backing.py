"""Record codec and the in-memory reference BackingStore."""

import pytest

from repro.distdht import backing
from repro.distdht.backing import (
    TOMBSTONE,
    InMemoryBackingStore,
    decode_record,
    encode_key,
    encode_record,
    fetch,
    is_tombstone,
    record_size,
)


class TestRecordCodec:
    @pytest.mark.parametrize("value,size", [
        (42, 8), ("hello", 13), ((1, "a", None), 64),
        ([0] * 100, 808), ({"k": (2, 3)}, 72),
    ])
    def test_roundtrip_preserves_value_and_recorded_size(self, value, size):
        record = encode_record(value, size)
        decoded = decode_record(record)
        assert decoded is not None
        assert decoded[0] == value
        assert decoded[1] == size
        assert record_size(record) == size

    def test_tombstone_decodes_to_none(self):
        assert decode_record(TOMBSTONE) is None
        assert is_tombstone(TOMBSTONE)
        assert not is_tombstone(encode_record("live", 12))

    def test_encode_key_is_stable_and_injective_enough(self):
        # the byte encoding is the cross-process identity of a key
        assert encode_key((3, "x")) == encode_key((3, "x"))
        assert encode_key((3, "x")) != encode_key((3, "y"))
        assert encode_key(1) != encode_key("1")


class TestInMemoryBackingStore:
    def test_put_get_delete_contains(self):
        store = InMemoryBackingStore()
        assert store.get(b"a") is None
        store.put(b"a", b"rec-a")
        store.put(b"b", b"rec-b")
        assert store.get(b"a") == b"rec-a"
        assert store.contains(b"b")
        assert store.delete(b"a")
        assert not store.delete(b"a")
        assert store.get(b"a") is None

    def test_put_many_get_many_align(self):
        store = InMemoryBackingStore()
        store.put_many([(b"k1", b"v1"), (b"k2", b"v2")])
        assert store.get_many([b"k2", b"missing", b"k1"]) == \
            [b"v2", None, b"v1"]

    def test_scan_and_delete_prefix(self):
        store = InMemoryBackingStore()
        store.put_many([(b"ns1|a", b"1"), (b"ns1|b", b"2"), (b"ns2|a", b"3")])
        assert sorted(store.scan(b"ns1|")) == [b"ns1|a", b"ns1|b"]
        assert store.delete_prefix(b"ns1|") == 2
        assert store.scan(b"ns1|") == []
        assert store.get(b"ns2|a") == b"3"

    def test_overwrite_replaces(self):
        store = InMemoryBackingStore()
        store.put(b"k", b"old")
        store.put(b"k", b"new")
        assert store.get(b"k") == b"new"

    def test_stats_report_kind(self):
        store = InMemoryBackingStore()
        assert store.stats()["kind"] == "mem"
        assert store.remote is False


class TestFetchRegistry:
    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError, match="unknown locator tag"):
            fetch(("no-such-tag", "x"))

    def test_registered_tags_cover_shipped_backends(self):
        # importing the package registers the shm and dht resolvers
        import repro.distdht  # noqa: F401
        assert "shm" in backing._FETCHERS
        assert "dht" in backing._FETCHERS
