"""MPC model substrate.

MPC programs are dataflow pipelines that never touch a DHT: all
communication happens through shuffles.  :class:`MPCRuntime` is a thin
wrapper that provides the round counter and the single-machine fallback
helper the paper's baselines use.
"""

from repro.mpc.runtime import MPCRuntime

__all__ = ["MPCRuntime"]
