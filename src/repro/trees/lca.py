"""Lowest common ancestors via Euler tour + range-minimum queries.

This is the reduction Appendix B uses (lines 4-6 of Algorithm 5): build an
Euler tour, annotate each tour position with the vertex level, and answer
``LCA(u, v)`` as the minimum-level vertex on the tour between the first
occurrences of ``u`` and ``v``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.trees.euler_tour import EulerTour, RootedForest
from repro.trees.rmq import RangeMin

EdgeId = Tuple[int, int]


class LCAIndex:
    """O(1) LCA queries over a rooted forest after O(n log n) preprocessing."""

    def __init__(self, forest: RootedForest):
        self.forest = forest
        self._tour = EulerTour(forest)
        self._rmq = RangeMin(self._tour.levels_along_tour())

    @classmethod
    def from_edges(cls, num_vertices: int, edges: Iterable[EdgeId],
                   roots: Optional[Sequence[int]] = None) -> "LCAIndex":
        return cls(RootedForest(num_vertices, edges, roots=roots))

    def lca(self, u: int, v: int) -> Optional[int]:
        """LCA of u and v, or None when they lie in different trees."""
        if not self.forest.same_tree(u, v):
            return None
        i, j = self._tour.first[u], self._tour.first[v]
        position = self._rmq.argquery(min(i, j), max(i, j))
        return self._tour.tour[position]

    def level(self, v: int) -> int:
        return self.forest.level[v]

    def parent(self, v: int) -> int:
        return self.forest.parent[v]

    def distance(self, u: int, v: int) -> Optional[int]:
        """Tree distance (number of edges), None across trees."""
        ancestor = self.lca(u, v)
        if ancestor is None:
            return None
        level = self.forest.level
        return level[u] + level[v] - 2 * level[ancestor]
