"""Tests for the Session API: parity with the legacy entry points and
cross-run preprocessing reuse."""

import json

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.api import Session
from repro.core.connectivity import ampc_connected_components
from repro.core.matching import ampc_maximal_matching
from repro.core.mis import ampc_mis
from repro.core.msf import ampc_msf
from repro.core.random_walks import ampc_pagerank
from repro.core.two_cycle import ampc_one_vs_two_cycle
from repro.graph.generators import (
    degree_weighted,
    erdos_renyi_gnm,
    two_cycles,
)

CONFIG = ClusterConfig(num_machines=4)
SEED = 3

GRAPH = erdos_renyi_gnm(50, 130, seed=2)
WEIGHTED = degree_weighted(GRAPH)
CYCLES = two_cycles(40, shuffle_ids=True, seed=2)


@pytest.fixture()
def session():
    return Session(CONFIG)


class TestLegacyParity:
    """``Session.run`` must reproduce the legacy ``ampc_*`` outputs and
    metrics on a fixed seed — the API is a new skin, not a new algorithm."""

    def test_mis(self, session):
        run = session.run("mis", GRAPH, seed=SEED)
        legacy = ampc_mis(GRAPH, config=CONFIG, seed=SEED)
        assert run.output.independent_set == legacy.independent_set
        assert run.output.rounds == legacy.rounds
        assert run.metrics == legacy.metrics.summary()

    def test_matching(self, session):
        run = session.run("matching", GRAPH, seed=SEED)
        legacy = ampc_maximal_matching(GRAPH, config=CONFIG, seed=SEED)
        assert run.output.matching == legacy.matching
        assert run.metrics == legacy.metrics.summary()

    def test_msf(self, session):
        run = session.run("msf", WEIGHTED, seed=SEED)
        legacy = ampc_msf(WEIGHTED, config=CONFIG, seed=SEED)
        assert run.output.forest == legacy.forest
        assert run.metrics == legacy.metrics.summary()

    def test_components(self, session):
        run = session.run("components", GRAPH, seed=SEED)
        legacy = ampc_connected_components(GRAPH, config=CONFIG, seed=SEED)
        assert run.output.labels == legacy.labels
        assert run.metrics == legacy.metrics.summary()

    def test_two_cycle(self, session):
        run = session.run("two-cycle", CYCLES, seed=SEED)
        legacy = ampc_one_vs_two_cycle(CYCLES, config=CONFIG, seed=SEED)
        assert run.output.num_cycles == legacy.num_cycles == 2
        assert run.metrics == legacy.metrics.summary()

    def test_pagerank(self, session):
        run = session.run("pagerank", GRAPH, seed=SEED, walks_per_vertex=4)
        legacy = ampc_pagerank(GRAPH, config=CONFIG, seed=SEED,
                               walks_per_vertex=4)
        assert run.output.scores == legacy.scores
        assert run.metrics == legacy.metrics.summary()


class TestPreprocessingReuse:
    @pytest.mark.parametrize("name,graph", [
        ("mis", GRAPH),
        ("matching", GRAPH),
        ("msf", WEIGHTED),
        ("components", GRAPH),
        ("two-cycle", CYCLES),
        ("pagerank", GRAPH),
    ])
    def test_second_run_shuffles_strictly_fewer(self, session, name, graph):
        first = session.run(name, graph, seed=SEED)
        second = session.run(name, graph, seed=SEED)
        assert not first.preprocessing_reused
        assert second.preprocessing_reused
        assert second.metrics["shuffles"] < first.metrics["shuffles"]
        assert second.shuffles_saved > 0

    def test_reuse_preserves_the_output(self, session):
        first = session.run("mis", GRAPH, seed=SEED)
        second = session.run("mis", GRAPH, seed=SEED)
        assert second.output.independent_set == first.output.independent_set

    def test_seed_sensitive_preprocessing_not_shared_across_seeds(
            self, session):
        session.run("mis", GRAPH, seed=1)
        other = session.run("mis", GRAPH, seed=2)
        assert not other.preprocessing_reused
        legacy = ampc_mis(GRAPH, config=CONFIG, seed=2)
        assert other.output.independent_set == legacy.independent_set

    def test_seed_insensitive_preprocessing_shared_across_seeds(
            self, session):
        session.run("msf", WEIGHTED, seed=1)
        other = session.run("msf", WEIGHTED, seed=2)
        assert other.preprocessing_reused
        legacy = ampc_msf(WEIGHTED, config=CONFIG, seed=2)
        assert other.output.forest == legacy.forest

    def test_pagerank_and_walks_share_the_adjacency(self, session):
        session.run("pagerank", GRAPH, seed=SEED, walks_per_vertex=2)
        walks = session.run("random-walks", GRAPH, seed=SEED)
        assert walks.preprocessing_reused
        assert walks.metrics["shuffles"] == 0

    def test_logical_rounds_stable_across_cache_state(self, session):
        """The envelope's rounds field is the algorithm's round count —
        a cache-served preparation round still counts, for every
        algorithm (mis has a .rounds result field, pagerank/two-cycle
        gained one for exactly this)."""
        for name, graph in (("mis", GRAPH), ("pagerank", GRAPH),
                            ("two-cycle", CYCLES)):
            cold = session.run(name, graph, seed=SEED)
            warm = session.run(name, graph, seed=SEED)
            assert warm.preprocessing_reused
            assert warm.rounds == cold.rounds
            # executed rounds still visible, one lower on the hit
            assert warm.metrics["rounds"] == cold.metrics["rounds"] - 1

    def test_different_graphs_do_not_collide(self, session):
        session.run("mis", GRAPH, seed=SEED)
        other_graph = erdos_renyi_gnm(50, 130, seed=9)
        other = session.run("mis", other_graph, seed=SEED)
        assert not other.preprocessing_reused
        legacy = ampc_mis(other_graph, config=CONFIG, seed=SEED)
        assert other.output.independent_set == legacy.independent_set

    def test_reuse_can_be_disabled(self, session):
        session.run("mis", GRAPH, seed=SEED)
        cold = session.run("mis", GRAPH, seed=SEED,
                           reuse_preprocessing=False)
        assert not cold.preprocessing_reused
        assert cold.metrics["shuffles"] == 1

    def test_clear_preprocessing(self, session):
        session.run("mis", GRAPH, seed=SEED)
        assert session.cached_preprocessings == 1
        session.clear_preprocessing()
        assert session.cached_preprocessings == 0
        again = session.run("mis", GRAPH, seed=SEED)
        assert not again.preprocessing_reused

    def test_stats_accumulate(self, session):
        session.run("mis", GRAPH, seed=SEED)
        session.run("mis", GRAPH, seed=SEED)
        session.run("matching", GRAPH, seed=SEED)
        stats = session.stats
        assert stats.runs == 3
        assert stats.preprocessing_hits == 1
        assert stats.preprocessing_misses == 2
        assert stats.shuffles_saved == 1
        assert stats.kv_writes_saved == GRAPH.num_vertices


class TestRunResultEnvelope:
    def test_summary_and_description(self, session):
        run = session.run("mis", GRAPH, seed=SEED)
        assert run.algorithm == "mis"
        assert run.seed == SEED
        assert run.output_size == len(run.output.independent_set)
        assert "maximal independent set" in run.description
        assert run.phases  # per-phase breakdown present

    def test_params_echo_includes_defaults(self, session):
        run = session.run("pagerank", GRAPH, seed=SEED, walks_per_vertex=2)
        assert run.params["walks_per_vertex"] == 2
        assert run.params["damping"] == 0.85

    def test_to_json_round_trips(self, session):
        run = session.run("mis", GRAPH, seed=SEED)
        decoded = json.loads(run.to_json())
        assert decoded["algorithm"] == "mis"
        assert decoded["metrics"]["shuffles"] == run.metrics["shuffles"]
        assert decoded["summary"]["output_size"] == run.output_size
        assert "output" not in decoded  # native objects stay out of JSON

    def test_unknown_parameter_rejected(self, session):
        with pytest.raises(TypeError, match="unexpected parameter"):
            session.run("mis", GRAPH, seed=SEED, walk_length=5)

    def test_unknown_algorithm_rejected(self, session):
        with pytest.raises(KeyError):
            session.run("steiner-tree", GRAPH)


class TestStrictRounds:
    def test_reused_stores_are_sealed_and_readable(self):
        session = Session(CONFIG, strict_rounds=True)
        first = session.run("mis", GRAPH, seed=SEED)
        second = session.run("mis", GRAPH, seed=SEED)
        assert second.preprocessing_reused
        assert second.output.independent_set == first.output.independent_set
