"""Session over real backends, chain folding, and derive-name tagging."""

import random

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.ampc.dht import DHTStore, DerivedDHTStore, next_delta_name
from repro.ampc.runtime import AMPCRuntime
from repro.api import Session
from repro.distdht.backing import InMemoryBackingStore
from repro.graph.generators import erdos_renyi_gnm

CONFIG = ClusterConfig(num_machines=4)
GRAPH = erdos_renyi_gnm(30, 60, seed=7)


def _signature(result):
    signature = {"summary": result.summary, "metrics": result.metrics,
                 "phases": result.phases}
    for field in ("independent_set", "matching", "forest", "labels",
                  "scores", "endpoints"):
        value = getattr(result.output, field, None)
        if value is not None:
            signature[field] = value
    return signature


class TestSessionBackends:
    @pytest.mark.parametrize("backend", ["mem", "shm"])
    def test_run_result_identical_to_sim(self, backend):
        baseline = Session(CONFIG).run("mis", GRAPH, seed=3)
        with Session(CONFIG, backend=backend) as session:
            assert session.backend == backend
            observed = session.run("mis", GRAPH, seed=3)
        assert _signature(observed) == _signature(baseline)

    def test_preprocessing_cache_hits_on_backed_stores(self):
        with Session(CONFIG, backend="mem") as session:
            session.run("mis", GRAPH, seed=3)
            again = session.run("mis", GRAPH, seed=3)
            assert again.preprocessing_reused
            assert session.stats.preprocessing_hits == 1

    def test_cache_eviction_releases_backing_records(self):
        import gc

        other = erdos_renyi_gnm(30, 60, seed=8)
        # how many records one artifact alone occupies
        solo = InMemoryBackingStore()
        with Session(CONFIG, backend=solo) as session:
            session.run("mis", other, seed=3)
            single_entry_records = solo.stats()["entries"]
        backing = InMemoryBackingStore()
        with Session(CONFIG, backend=backing, max_cache_bytes=1) as session:
            session.run("mis", GRAPH, seed=3)
            # the 1-byte budget keeps exactly one (over-budget) entry:
            # caching the second artifact evicts the first, whose stores
            # are collected and their backing namespaces reclaimed
            session.run("mis", other, seed=3)
            gc.collect()
            assert session.stats.preprocessing_evictions == 1
            assert backing.stats()["entries"] == single_entry_records

    def test_close_is_idempotent_and_context_managed(self):
        session = Session(CONFIG, backend="shm")
        session.run("mis", GRAPH, seed=0)
        session.close()
        session.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            Session(CONFIG, backend="carrier-pigeon")

    def test_socket_backend_requires_nodes(self):
        with pytest.raises(ValueError, match="node"):
            Session(CONFIG, backend="socket")

    def test_incremental_updates_match_sim_byte_for_byte(self):
        """The same load/run/patch/run sequence on a backed session and a
        simulated one: the patched runs must agree on everything, metrics
        included (the patch path derives backed copy-on-write stores)."""
        def drive(backend):
            graph = erdos_renyi_gnm(24, 50, seed=11)
            with Session(CONFIG, backend=backend) as session:
                handle = session.load("g", graph)
                session.run("mis", "g", seed=1)
                edges = sorted(graph.edges())
                deletions = [tuple(e[:2]) for e in edges[:3]]
                handle.apply_batch(deletions=deletions)
                patched = session.run("mis", "g", seed=1)
                assert session.stats.incremental_updates == 1
                return _signature(patched)

        assert drive("mem") == drive("sim")
        assert drive("shm") == drive("sim")


class TestNextDeltaName:
    """Satellite: generation tags make deep derivation chains collision-free."""

    def test_generation_numbering(self):
        assert next_delta_name("ranks") == "ranks+delta"
        assert next_delta_name("ranks+delta") == "ranks+delta2"
        assert next_delta_name("ranks+delta2") == "ranks+delta3"
        assert next_delta_name("ranks+delta9") == "ranks+delta10"

    def test_suffix_resembling_tag_is_treated_as_base(self):
        # "+delta" followed by non-digits is part of the base name
        assert next_delta_name("ranks+deltaX") == "ranks+deltaX+delta"

    def test_deep_chain_has_distinct_names(self):
        store = DHTStore("ranks", 4)
        names = {store.name}
        for _ in range(12):
            store.seal()
            store = store.derive()
            assert store.name not in names, (
                f"derivation chain re-used the name {store.name!r}")
            names.add(store.name)

    def test_runtime_derive_avoids_ancestor_names_across_runtimes(self):
        """The regression: each incremental patch derives on a *fresh*
        runtime, whose registry cannot see the ancestor chain — a
        grandchild used to collide with its grandparent's name."""
        parent = DHTStore("levels", 4)
        parent.seal()
        names = {parent.name}
        for _ in range(6):
            runtime = AMPCRuntime(config=CONFIG)  # fresh, like each patch
            child = runtime.derive_store(parent)
            assert child.name not in names, (
                f"derive_store re-used ancestor name {child.name!r}")
            names.add(child.name)
            child.seal()
            parent = child


class TestMaxChainGenerations:
    """Satellite: the knob that folds old cache generations flat."""

    def _chain_depth(self, store):
        depth = 0
        while isinstance(store, DerivedDHTStore):
            depth += 1
            store = store.parent
        return depth

    def _mutate(self, handle, graph, rng):
        edges = list(graph.edges())
        rng.shuffle(edges)
        handle.apply_batch(deletions=[tuple(edges[0][:2])])

    def test_generations_fold_at_the_knob(self):
        graph = erdos_renyi_gnm(24, 50, seed=5)
        session = Session(CONFIG, max_chain_generations=2)
        handle = session.load("g", graph)
        session.run("mis", "g", seed=1)
        rng = random.Random(8)
        for _ in range(5):
            self._mutate(handle, graph, rng)
            session.run("mis", "g", seed=1)
            for entry in session._cache.values():
                assert entry.generations <= 2
                for store in entry.prepared.__dict__.values():
                    if isinstance(store, DHTStore):
                        assert self._chain_depth(store) <= 2
        assert session.stats.incremental_updates == 5

    def test_folded_artifact_serves_identical_results(self):
        graph = erdos_renyi_gnm(24, 50, seed=5)
        twin = erdos_renyi_gnm(24, 50, seed=5)
        folding = Session(CONFIG, max_chain_generations=1)
        handle = folding.load("g", graph)
        folding.run("mis", "g", seed=1)
        rng = random.Random(8)
        for _ in range(4):
            edges = list(graph.edges())
            rng.shuffle(edges)
            victim = tuple(edges[0][:2])
            handle.apply_batch(deletions=[victim])
            twin.remove_edge(*victim)
            folded = folding.run("mis", "g", seed=1)
            baseline = Session(CONFIG).run("mis", twin, seed=1)
            # folding must not change what the algorithm computes (the
            # patch path's metrics legitimately differ from scratch)
            assert folded.summary == baseline.summary
            assert folded.output.independent_set \
                == baseline.output.independent_set
        assert folding.stats.incremental_updates == 4

    def test_unbounded_by_default(self):
        graph = erdos_renyi_gnm(24, 50, seed=5)
        session = Session(CONFIG)
        handle = session.load("g", graph)
        session.run("mis", "g", seed=1)
        rng = random.Random(8)
        for _ in range(3):
            self._mutate(handle, graph, rng)
            session.run("mis", "g", seed=1)
        depths = [entry.generations for entry in session._cache.values()]
        assert max(depths) == 3
