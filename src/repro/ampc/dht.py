"""Distributed hash tables: the defining primitive of the AMPC model.

The model (Section 2) provides a sequence of hash tables D0, D1, ...; in
round i machines read D_{i-1} and write D_i.  :class:`DHTService` owns the
tables and enforces that lifecycle: a store accepts writes until it is
*sealed*, after which it is read-only (the AMPC read/write separation), and
a store can be configured to reject reads until sealed (strict mode).

Each store is sharded across the cluster's machines by key hash;
per-shard read counts are tracked so that contention (the hot-key concern
of Section 2, "Caching and Query Contention") is observable in tests and
benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.ampc.cost_model import estimate_bytes
from repro.ampc.hashing import _MASK, _SEED, stable_hash


class StoreSealedError(RuntimeError):
    """Raised on writes to a sealed store (or strict reads of an open one)."""


def next_delta_name(name: str) -> str:
    """The canonical name for the next derivation generation of ``name``.

    ``ranks`` -> ``ranks+delta`` -> ``ranks+delta2`` -> ``ranks+delta3``:
    every generation in a derivation chain gets a *distinct* name.  The
    old scheme collapsed every generation onto ``base+delta``, so a
    grandchild collided with its own parent whenever the two met in the
    same registry (or the same cache-key space) — ``_unique_store_name``
    suffixing could not save the cases where the parent was registered
    after the child name was chosen.
    """
    base, sep, tail = name.partition("+delta")
    if sep and (not tail or tail.isdigit()):
        generation = int(tail) if tail else 1
        return f"{base}+delta{generation + 1}"
    # no tag, or "+delta<non-digits>" (part of the base name, not a tag)
    return f"{name}+delta"


class DHTStore:
    """One distributed hash table D_i, sharded over the cluster machines."""

    def __init__(self, name: str, num_shards: int, *, strict_rounds: bool = False):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.name = name
        self.num_shards = num_shards
        self.sealed = False
        self._strict_rounds = strict_rounds
        #: key -> shard memo: shard placement is a pure hash, and query
        #: processes revisit hot keys many times per stage — one dict get
        #: beats re-running splitmix64 on every touch
        self._shard_memo: Dict[Any, int] = {}
        self._shards: List[Dict[Any, Any]] = [dict() for _ in range(num_shards)]
        #: serialized size of each live entry, recorded at write time so
        #: reads never re-walk values (and overwrites can refund exactly)
        self._sizes: List[Dict[Any, int]] = [dict() for _ in range(num_shards)]
        #: reads served per shard (contention accounting)
        self.shard_reads: List[int] = [0] * num_shards
        self.total_entries = 0
        self.total_value_bytes = 0

    def shard_of(self, key: Any) -> int:
        # Stable across interpreter runs: placement (and therefore shard
        # contention metrics) must not depend on PYTHONHASHSEED.  The
        # vertex-id case inlines stable_hash's single-splitmix64 fast
        # path — this runs once per simulated KV operation.
        shard = self._shard_memo.get(key)
        if shard is not None:
            return shard
        if type(key) is int and 0 <= key <= _MASK:
            x = ((_SEED ^ key) + 0x9E3779B97F4A7C15) & _MASK
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
            shard = (x ^ (x >> 31)) % self.num_shards
        else:
            shard = stable_hash(key) % self.num_shards
        self._shard_memo[key] = shard
        return shard

    # -- writes --------------------------------------------------------

    def write(self, key: Any, value: Any) -> int:
        """Store a key-value pair; returns the serialized value size.

        Duplicate keys overwrite, matching the put semantics of the
        key-value stores the paper builds on; the replaced entry's
        recorded size is refunded, so ``total_value_bytes`` always equals
        the live entries' sizes.
        """
        if self.sealed:
            raise StoreSealedError(f"store {self.name!r} is sealed")
        shard_index = self.shard_of(key)
        sizes = self._sizes[shard_index]
        value_bytes = estimate_bytes(value)
        replaced = sizes.get(key)
        if replaced is None:
            self.total_entries += 1
            self.total_value_bytes += value_bytes
        else:
            self.total_value_bytes += value_bytes - replaced
        self._shards[shard_index][key] = value
        sizes[key] = value_bytes
        return value_bytes

    def write_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        """Bulk :meth:`write`: one pass, aggregate accounting.

        Returns the total serialized size of the written values — exactly
        ``sum(write(k, v) for k, v in items)``, computed without the
        per-item method dispatch.
        """
        if self.sealed:
            raise StoreSealedError(f"store {self.name!r} is sealed")
        shard_of = self.shard_of
        shards = self._shards
        size_shards = self._sizes
        total = 0
        entries_added = 0
        bytes_delta = 0
        try:
            for key, value in items:
                # Size first: an inestimable value raises before this
                # item mutates anything, and the finally block commits
                # the completed items' accounting — exactly the state a
                # write() sequence failing on the same item leaves.
                value_bytes = estimate_bytes(value)
                shard_index = shard_of(key)
                sizes = size_shards[shard_index]
                replaced = sizes.get(key)
                if replaced is None:
                    entries_added += 1
                    bytes_delta += value_bytes
                else:
                    bytes_delta += value_bytes - replaced
                shards[shard_index][key] = value
                sizes[key] = value_bytes
                total += value_bytes
        finally:
            self.total_entries += entries_added
            self.total_value_bytes += bytes_delta
        return total

    def write_columnar(self, records) -> int:
        """Batch write of a :class:`~repro.ampc.columnar.ColumnarRecords`.

        Accounting-identical to ``write_many(records.items())`` — same
        shard placement, same write-time size memo, same totals, same
        per-shard insertion order — but the sizes and shard ids arrive as
        precomputed columns (one vectorized pass each), so only the dict
        inserts remain per-record.  Subclasses (backed stores, derived
        overlays) fall back to their own ``write_many``.
        """
        if type(self) is not DHTStore:
            return self.write_many(records.items())
        if self.sealed:
            raise StoreSealedError(f"store {self.name!r} is sealed")
        shard_list = records.shard_ids(self.num_shards).tolist()
        size_list = records.value_size_list()
        # seed the placement memo in bulk: readers of these keys skip the
        # splitmix fallback entirely
        self._shard_memo.update(zip(records.keys.tolist(), shard_list))
        shards = self._shards
        size_shards = self._sizes
        total = 0
        entries_added = 0
        bytes_delta = 0
        for (key, value), value_bytes, shard_index in zip(
                records.items(), size_list, shard_list):
            sizes = size_shards[shard_index]
            replaced = sizes.get(key)
            if replaced is None:
                entries_added += 1
                bytes_delta += value_bytes
            else:
                bytes_delta += value_bytes - replaced
            shards[shard_index][key] = value
            sizes[key] = value_bytes
            total += value_bytes
        self.total_entries += entries_added
        self.total_value_bytes += bytes_delta
        return total

    #: backwards-compatible alias for :meth:`write_many`
    write_all = write_many

    def seal(self) -> None:
        """Freeze the store: subsequent writes raise."""
        self.sealed = True

    # -- reads ---------------------------------------------------------

    def lookup(self, key: Any) -> Any:
        """Read one key; returns None for missing keys (get semantics)."""
        if self._strict_rounds and not self.sealed:
            raise StoreSealedError(
                f"store {self.name!r} is still being written this round"
            )
        shard_index = self.shard_of(key)
        self.shard_reads[shard_index] += 1
        return self._shards[shard_index].get(key)

    def lookup_with_size(self, key: Any) -> Tuple[Any, int]:
        """:meth:`lookup` plus the entry's recorded serialized size.

        The size was computed by :func:`estimate_bytes` at write time, so
        callers charging read bytes need not re-walk the value; missing
        keys report ``(None, 0)`` (what ``estimate_bytes(None)`` charges).
        """
        if self._strict_rounds and not self.sealed:
            raise StoreSealedError(
                f"store {self.name!r} is still being written this round"
            )
        shard_index = self.shard_of(key)
        self.shard_reads[shard_index] += 1
        size = self._sizes[shard_index].get(key)
        if size is None:
            return None, 0
        return self._shards[shard_index][key], size

    def lookup_many(self, keys: Iterable[Any]) -> Tuple[List[Any], int]:
        """Bulk read: shard routing and read accounting in one pass.

        Returns the values in key order (None for misses) plus the total
        recorded size of the hit values — the aggregate a
        :class:`~repro.dataflow.dofn.MachineContext` charges as read
        bytes.  Per-shard read counts advance exactly as the equivalent
        :meth:`lookup` sequence would.
        """
        if self._strict_rounds and not self.sealed:
            raise StoreSealedError(
                f"store {self.name!r} is still being written this round"
            )
        shard_of = self.shard_of
        shards = self._shards
        size_shards = self._sizes
        shard_reads = self.shard_reads
        values: List[Any] = []
        append = values.append
        total = 0
        for key in keys:
            shard_index = shard_of(key)
            shard_reads[shard_index] += 1
            size = size_shards[shard_index].get(key)
            if size is None:
                append(None)
            else:
                append(shards[shard_index][key])
                total += size
        return values, total

    def contains(self, key: Any) -> bool:
        """Membership probe; charged and round-checked like :meth:`lookup`."""
        if self._strict_rounds and not self.sealed:
            raise StoreSealedError(
                f"store {self.name!r} is still being written this round"
            )
        shard_index = self.shard_of(key)
        self.shard_reads[shard_index] += 1
        return key in self._shards[shard_index]

    # -- derivation ------------------------------------------------------

    def _entry(self, key: Any, shard_index: int) -> Optional[Tuple[Any, int]]:
        """The live ``(value, recorded size)`` under ``key``, or None.

        Internal, uncharged: derived children resolve fall-through reads
        with it, so reading through a child never perturbs this store's
        ``shard_reads`` contention metrics.
        """
        size = self._sizes[shard_index].get(key)
        if size is None:
            return None
        return self._shards[shard_index][key], size

    def derive(self, name: Optional[str] = None) -> "DerivedDHTStore":
        """Unseal this sealed store into a copy-on-write child.

        The child reads fall through to this store; its writes and deletes
        land in a private overlay, so patching a DHT-resident artifact can
        never mutate an entry another cached artifact still serves.  Byte
        and entry accounting on the child stays exact — overlay deltas are
        applied to this store's write-time memoized sizes.  Only sealed
        (immutable) stores can be derived, and deriving a child is itself
        derivable, so repeated patch generations chain — each generation
        under a distinct default name (see :func:`next_delta_name`).
        """
        if not self.sealed:
            raise StoreSealedError(
                f"store {self.name!r} must be sealed before it can be "
                "derived (an unsealed parent could drift under the child)"
            )
        return self._derived_class(name or next_delta_name(self.name), self)

    def folded(self, name: Optional[str] = None) -> "DHTStore":
        """Flatten the logical view into a fresh, flat, sealed store.

        The result has no parent chain: identical logical content,
        identical recorded entry sizes (the write-time memoized sizes are
        copied, not re-estimated), fresh ``shard_reads``.  The Session
        cache uses this to fold old derivation generations once a lineage
        outgrows its max-generations knob, releasing the parent stores.
        """
        flat = self._spawn_sibling(name or self.name)
        shard_of = self.shard_of
        entry_of = self._entry
        for key in self.keys():
            value, size = entry_of(key, shard_of(key))
            flat._install(key, value, size)
        flat.seal()
        return flat

    def _spawn_sibling(self, name: str) -> "DHTStore":
        """An empty unsealed store with this store's shape and storage."""
        return DHTStore(name, self.num_shards,
                        strict_rounds=self._strict_rounds)

    def _install(self, key: Any, value: Any, size: int) -> None:
        """Raw insert with a pre-recorded size (folding only; uncharged)."""
        shard_index = self.shard_of(key)
        self._shards[shard_index][key] = value
        self._sizes[shard_index][key] = size
        self.total_entries += 1
        self.total_value_bytes += size

    def cache_resident_bytes(self) -> int:
        """What this store costs the local process (Session cache sizing)."""
        return self.total_value_bytes + 8 * self.total_entries

    # -- introspection (driver-side; free of charge) ---------------------

    def keys(self) -> List[Any]:
        result = []
        for shard in self._shards:
            result.extend(shard.keys())
        return result

    def max_shard_load(self) -> int:
        return max(self.shard_reads)

    def __len__(self) -> int:
        return self.total_entries

    def __repr__(self) -> str:
        return (
            f"DHTStore({self.name!r}, entries={self.total_entries}, "
            f"sealed={self.sealed})"
        )


class DerivedDHTStore(DHTStore):
    """A copy-on-write overlay over a sealed parent store.

    Reads resolve overlay-first (tombstones, then overlay entries, then
    the parent chain); writes and deletes touch only the overlay.  The
    aggregate counters (``total_entries`` / ``total_value_bytes``) always
    describe the *logical* store — parent plus overlay — using the
    write-time memoized sizes, so they equal what a from-scratch store
    with the same final content would report.  ``shard_reads`` counts this
    store's own reads only; the parent's metrics never move.
    """

    def __init__(self, name: str, parent: DHTStore):
        super().__init__(name, parent.num_shards,
                         strict_rounds=parent._strict_rounds)
        self.parent = parent
        self.total_entries = parent.total_entries
        self.total_value_bytes = parent.total_value_bytes
        #: keys shadow-deleted from the parent view
        self._deleted: List[set] = [set() for _ in range(self.num_shards)]

    # -- resolution ------------------------------------------------------

    def _entry(self, key: Any, shard_index: int) -> Optional[Tuple[Any, int]]:
        if key in self._deleted[shard_index]:
            return None
        size = self._sizes[shard_index].get(key)
        if size is not None:
            return self._shards[shard_index][key], size
        return self.parent._entry(key, shard_index)

    # -- writes ----------------------------------------------------------

    def write(self, key: Any, value: Any) -> int:
        if self.sealed:
            raise StoreSealedError(f"store {self.name!r} is sealed")
        shard_index = self.shard_of(key)
        value_bytes = estimate_bytes(value)
        sizes = self._sizes[shard_index]
        replaced = sizes.get(key)
        if replaced is not None:
            self.total_value_bytes += value_bytes - replaced
        else:
            deleted = self._deleted[shard_index]
            if key in deleted:
                deleted.discard(key)
                self.total_entries += 1
                self.total_value_bytes += value_bytes
            else:
                shadowed = self.parent._entry(key, shard_index)
                if shadowed is None:
                    self.total_entries += 1
                    self.total_value_bytes += value_bytes
                else:
                    self.total_value_bytes += value_bytes - shadowed[1]
        self._shards[shard_index][key] = value
        sizes[key] = value_bytes
        return value_bytes

    def write_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        # Overlay accounting needs the per-key parent probe, so the bulk
        # path is a plain loop over write() (still one call per item from
        # the caller's perspective, charge-identical).
        if self.sealed:
            raise StoreSealedError(f"store {self.name!r} is sealed")
        write = self.write
        return sum(write(key, value) for key, value in items)

    write_all = write_many

    def delete(self, key: Any) -> bool:
        """Remove ``key`` from the logical view; True if it was present.

        Overlay entries are dropped; parent entries are tombstoned (the
        parent itself is immutable).
        """
        if self.sealed:
            raise StoreSealedError(f"store {self.name!r} is sealed")
        shard_index = self.shard_of(key)
        removed = self._sizes[shard_index].pop(key, None)
        if removed is not None:
            del self._shards[shard_index][key]
            self.total_entries -= 1
            self.total_value_bytes -= removed
            if self.parent._entry(key, shard_index) is not None:
                self._deleted[shard_index].add(key)
            return True
        if key in self._deleted[shard_index]:
            return False
        shadowed = self.parent._entry(key, shard_index)
        if shadowed is None:
            return False
        self._deleted[shard_index].add(key)
        self.total_entries -= 1
        self.total_value_bytes -= shadowed[1]
        return True

    # -- reads -----------------------------------------------------------

    def _check_readable(self) -> None:
        if self._strict_rounds and not self.sealed:
            raise StoreSealedError(
                f"store {self.name!r} is still being written this round"
            )

    def lookup(self, key: Any) -> Any:
        self._check_readable()
        shard_index = self.shard_of(key)
        self.shard_reads[shard_index] += 1
        entry = self._entry(key, shard_index)
        return None if entry is None else entry[0]

    def lookup_with_size(self, key: Any) -> Tuple[Any, int]:
        self._check_readable()
        shard_index = self.shard_of(key)
        self.shard_reads[shard_index] += 1
        entry = self._entry(key, shard_index)
        if entry is None:
            return None, 0
        return entry

    def lookup_many(self, keys: Iterable[Any]) -> Tuple[List[Any], int]:
        self._check_readable()
        shard_of = self.shard_of
        shard_reads = self.shard_reads
        entry_of = self._entry
        values: List[Any] = []
        append = values.append
        total = 0
        for key in keys:
            shard_index = shard_of(key)
            shard_reads[shard_index] += 1
            entry = entry_of(key, shard_index)
            if entry is None:
                append(None)
            else:
                append(entry[0])
                total += entry[1]
        return values, total

    def contains(self, key: Any) -> bool:
        self._check_readable()
        shard_index = self.shard_of(key)
        self.shard_reads[shard_index] += 1
        return self._entry(key, shard_index) is not None

    # -- introspection ---------------------------------------------------

    def keys(self) -> List[Any]:
        result = []
        for shard in self._shards:
            result.extend(shard.keys())
        # parent.keys() is already the parent's *logical* view, so chained
        # derivations compose
        for key in self.parent.keys():
            shard_index = self.shard_of(key)
            if (key not in self._shards[shard_index]
                    and key not in self._deleted[shard_index]):
                result.append(key)
        return result

    def __repr__(self) -> str:
        return (
            f"DerivedDHTStore({self.name!r}, entries={self.total_entries}, "
            f"parent={self.parent.name!r}, sealed={self.sealed})"
        )


#: class instantiated by :meth:`DHTStore.derive`; the backed adapter
#: (repro.distdht.store) overrides it so derivation stays in-backing
DHTStore._derived_class = DerivedDHTStore
DerivedDHTStore._derived_class = DerivedDHTStore


class DHTService:
    """Factory and registry for the DHT sequence D0, D1, ...

    With ``backing`` set (a :class:`~repro.distdht.backing.BackingStore`),
    created stores are :class:`~repro.distdht.store.BackedDHTStore`
    adapters whose values physically live in that backing store; the
    accounting surface is identical either way.
    """

    def __init__(self, num_shards: int, *, strict_rounds: bool = False,
                 backing=None):
        self.num_shards = num_shards
        self.strict_rounds = strict_rounds
        self.backing = backing
        self._stores: Dict[str, DHTStore] = {}
        self._counter = 0

    def create(self, name: Optional[str] = None) -> DHTStore:
        if name is None:
            name = f"D{self._counter}"
        if name in self._stores:
            raise ValueError(f"store {name!r} already exists")
        self._counter += 1
        if self.backing is not None:
            from repro.distdht.store import BackedDHTStore
            store = BackedDHTStore(name, self.num_shards,
                                   backing=self.backing,
                                   strict_rounds=self.strict_rounds)
        else:
            store = DHTStore(name, self.num_shards,
                             strict_rounds=self.strict_rounds)
        self._stores[name] = store
        return store

    def register(self, store: DHTStore) -> DHTStore:
        """Adopt an externally constructed store (e.g. a derived child)."""
        if store.name in self._stores:
            raise ValueError(f"store {store.name!r} already exists")
        self._counter += 1
        self._stores[store.name] = store
        return store

    def get(self, name: str) -> DHTStore:
        return self._stores[name]

    def stores(self) -> List[DHTStore]:
        return list(self._stores.values())
