"""Tests for the synthetic graph generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    barabasi_albert_graph,
    chung_lu_graph,
    complete_graph,
    cycle_graph,
    degree_weighted,
    disjoint_union,
    erdos_renyi_gnm,
    grid_graph,
    path_graph,
    random_spanning_tree_graph,
    star_graph,
    two_cycles,
)
from repro.graph.generators import power_law_degrees, random_weighted
from repro.graph.properties import connected_component_sizes, is_connected


class TestBasicShapes:
    def test_path(self):
        graph = path_graph(5)
        assert graph.num_edges == 4
        assert graph.degree(0) == 1
        assert graph.degree(2) == 2

    def test_cycle(self):
        graph = cycle_graph(6)
        assert graph.num_edges == 6
        assert all(graph.degree(v) == 2 for v in graph.vertices())
        assert is_connected(graph)

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_cycle_shuffled_ids_same_shape(self):
        graph = cycle_graph(50, shuffle_ids=True, seed=7)
        assert graph.num_edges == 50
        assert all(graph.degree(v) == 2 for v in graph.vertices())
        assert is_connected(graph)

    def test_two_cycles(self):
        graph = two_cycles(10)
        sizes = connected_component_sizes(graph)
        assert sorted(sizes.values()) == [10, 10]
        assert all(graph.degree(v) == 2 for v in graph.vertices())

    def test_two_cycles_shuffled(self):
        graph = two_cycles(25, shuffle_ids=True, seed=3)
        sizes = connected_component_sizes(graph)
        assert sorted(sizes.values()) == [25, 25]

    def test_complete(self):
        graph = complete_graph(5)
        assert graph.num_edges == 10

    def test_star(self):
        graph = star_graph(7)
        assert graph.degree(0) == 6
        assert graph.num_edges == 6

    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.num_vertices == 12
        assert graph.num_edges == 3 * 3 + 2 * 4
        assert is_connected(graph)


class TestRandomGraphs:
    def test_gnm_exact_edge_count(self):
        graph = erdos_renyi_gnm(50, 120, seed=1)
        assert graph.num_edges == 120

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(4, 10)

    def test_gnm_deterministic(self):
        a = erdos_renyi_gnm(40, 80, seed=9)
        b = erdos_renyi_gnm(40, 80, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_chung_lu_respects_expected_volume(self):
        degrees = [10.0] * 200
        graph = chung_lu_graph(degrees, seed=3)
        expected_edges = sum(degrees) / 2
        assert 0.5 * expected_edges < graph.num_edges < 1.5 * expected_edges

    def test_chung_lu_skew(self):
        degrees = power_law_degrees(500, exponent=2.2, min_degree=2, seed=4)
        graph = chung_lu_graph(degrees, seed=4)
        assert graph.max_degree() > 3 * (2 * graph.num_edges / 500)

    def test_power_law_degrees_bounds(self):
        degrees = power_law_degrees(1000, exponent=2.5, min_degree=1.5,
                                    max_degree=40, seed=0)
        assert all(1.5 <= d <= 40 for d in degrees)

    def test_barabasi_albert_connected_with_hubs(self):
        graph = barabasi_albert_graph(300, attach=3, seed=5)
        assert is_connected(graph)
        assert graph.max_degree() >= 15  # hubs emerge

    def test_barabasi_albert_bad_params(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(5, attach=5)

    def test_random_spanning_tree_connected(self):
        graph = random_spanning_tree_graph(100, extra_edges=20, seed=2)
        assert is_connected(graph)
        assert graph.num_edges == 119


class TestCombinators:
    def test_disjoint_union(self):
        union = disjoint_union([cycle_graph(4), path_graph(3)])
        assert union.num_vertices == 7
        assert union.num_edges == 6
        sizes = connected_component_sizes(union)
        assert sorted(sizes.values()) == [3, 4]

    def test_degree_weighted_matches_paper_rule(self):
        graph = star_graph(5)
        weighted = degree_weighted(graph)
        # center degree 4, leaves degree 1 -> every edge weighs 5
        assert all(w == 5.0 for _, _, w in weighted.edges())

    def test_random_weighted_unit_interval(self):
        graph = random_weighted(cycle_graph(20), seed=11)
        assert all(0.0 <= w < 1.0 for _, _, w in graph.edges())


@given(st.integers(min_value=3, max_value=40))
@settings(max_examples=20, deadline=None)
def test_cycle_property_all_degree_two(n):
    graph = cycle_graph(n)
    assert graph.num_edges == n
    assert all(graph.degree(v) == 2 for v in graph.vertices())


@given(st.integers(min_value=3, max_value=25), st.integers(min_value=0, max_value=999))
@settings(max_examples=20, deadline=None)
def test_two_cycles_property(k, seed):
    graph = two_cycles(k, shuffle_ids=True, seed=seed)
    sizes = connected_component_sizes(graph)
    assert sorted(sizes.values()) == [k, k]
