"""Columnar stage twins: whole-shard charging for batch record flows.

The boxed dataflow operations (``par_do``, ``repartition``,
``write_store``) walk one Python object per element to compute charges
that are, for the bulk record flows of the prepare stages, pure functions
of per-machine *counts and byte totals*.  The helpers here compute those
aggregates from a :class:`~repro.ampc.columnar.ColumnarRecords` batch
with vectorized column math and hand the cluster the **same**
:class:`~repro.ampc.cluster.MachineWork` values the per-element loop
would have produced — both paths end in ``Cluster.finish_stage``, so the
simulated metrics cannot drift (the golden-metrics snapshot pins this).

Stage-counter discipline matters for fault plans: each helper advances
the cluster's stage counter exactly as its boxed twin does (one
``charge_stage`` per ParDo, one ``charge_shuffle`` per movement), so a
:class:`~repro.ampc.faults.FaultPlan` hits the same (stage, machine)
cells either way.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ampc.cluster import Cluster, MachineWork
from repro.ampc.vector import np
from repro.dataflow.pcollection import BudgetExceededError, PCollection

__all__ = [
    "roundrobin_counts",
    "charge_map_stage",
    "machine_byte_totals",
    "write_columnar_store",
    "partition_boxed",
]


def roundrobin_counts(num_items: int, num_machines: int) -> List[int]:
    """Per-machine element counts of a keyless ``from_items`` placement."""
    base, extra = divmod(num_items, num_machines)
    return [base + 1 if machine < extra else base
            for machine in range(num_machines)]


def charge_map_stage(cluster: Cluster, in_counts: Sequence[int],
                     out_counts: Optional[Sequence[int]] = None) -> None:
    """Charge a pure map/flat_map ParDo from per-machine counts.

    Twin of ``par_do`` with a KV-free DoFn: ``compute_ops`` is inputs
    plus outputs per machine (``out_counts`` defaults to ``in_counts``,
    the 1:1 map case).
    """
    if out_counts is None:
        out_counts = in_counts
    works = [MachineWork(compute_ops=int(inputs) + int(outputs))
             for inputs, outputs in zip(in_counts, out_counts)]
    cluster.finish_stage(works)


def machine_byte_totals(machine_ids, per_record_bytes, num_machines: int):
    """Per-machine sums of ``per_record_bytes``, as plain Python ints.

    float64 bincount accumulation is exact here: record sizes are small
    multiples of 8 and the totals stay far below 2**53.
    """
    sums = np.bincount(machine_ids, weights=per_record_bytes,
                       minlength=num_machines)
    return [int(total) for total in sums]


def write_columnar_store(cluster: Cluster, store, records, machine_ids,
                         *, name: Optional[str] = None,
                         seal: bool = True) -> None:
    """Twin of ``AMPCRuntime.write_store`` for a columnar record batch.

    ``machine_ids`` assigns each record to the machine whose ParDo
    partition would have written it; ``records`` must already be in the
    machine-major scan order the boxed repartition would have produced,
    so the store's per-shard insertion order comes out identical.  Per
    machine the charge is one KV write per record (8 key bytes + the
    record's value bytes), plus the ParDo's ``compute_ops`` of one input
    per element and zero outputs.
    """
    num_machines = cluster.config.num_machines
    counts = np.bincount(machine_ids, minlength=num_machines).tolist()
    byte_totals = machine_byte_totals(
        machine_ids, records.value_sizes(), num_machines)
    budget = cluster.config.query_budget_per_machine
    stage = name if name is not None else f"write:{store.name}"
    works = []
    for machine_id, (count, value_bytes) in enumerate(
            zip(counts, byte_totals)):
        work = MachineWork(compute_ops=count, kv_writes=count,
                          kv_write_bytes=8 * count + value_bytes)
        if budget is not None and work.kv_queries > budget:
            raise BudgetExceededError(
                f"machine {machine_id} made {work.kv_queries} KV "
                f"queries in stage {stage!r}, budget is {budget}"
            )
        works.append(work)
    store.write_columnar(records)
    cluster.finish_stage(works)
    if seal:
        store.seal()


def partition_boxed(pipeline, items: Sequence, machine_ids) -> PCollection:
    """A PCollection from boxed items with precomputed placement (free).

    Twin of ``Pipeline.from_items(items, key_fn)`` when the per-item
    machine ids were already computed by one vectorized pass.
    """
    partitions: List[List] = [
        [] for _ in range(pipeline.cluster.config.num_machines)]
    for item, machine in zip(items, machine_ids.tolist()):
        partitions[machine].append(item)
    return PCollection(pipeline, partitions)
