"""Scaled analogues of the paper's datasets (Table 2).

The paper evaluates on five real-world graphs (Orkut, Twitter, Friendster,
ClueWeb, Hyperlink2012) ranging from 234M to 226B edges.  Those inputs (and
the cluster to process them) are unavailable here, so we build synthetic
analogues ~1000x smaller that preserve the *structural properties driving
every comparison in the paper*:

* relative size ordering OK < TW < FS < CW < HL (vertices and edges);
* power-law degree distributions with hubs — extreme hub skew for ``CW-S``,
  whose high-degree vertices (up to 75.6M neighbors in the real ClueWeb)
  cause the join skew that slows the MPC baselines (Section 5.3);
* component counts in the same regime: 1, 2, 1, many, many;
* the diameter ordering OK < TW < FS < CW < HL (web graphs are shallow but
  long-tailed; realized by attaching calibrated path appendages).

Each dataset records the paper's original statistics so Table 2 can be
printed side by side, paper vs. scaled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.graph.generators import (
    chung_lu_graph,
    cycle_graph,
    disjoint_union,
    power_law_degrees,
    random_spanning_tree_graph,
    two_cycles,
)
from repro.graph.graph import Graph, WeightedGraph
from repro.graph.generators import degree_weighted
from repro.graph.properties import connected_components


@dataclass(frozen=True)
class PaperStats:
    """The original Table 2 row (for side-by-side reporting)."""

    num_vertices: float
    num_edges: float
    diameter: int
    diameter_is_lower_bound: bool
    num_components: int
    largest_component: float


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one scaled dataset analogue (plus its paper stats)."""

    name: str
    description: str
    paper: PaperStats
    #: target main-part vertex count at full scale
    main_vertices: int
    #: average degree of the power-law part
    average_degree: float
    #: power-law exponent (lower = heavier hubs)
    exponent: float
    #: max expected degree as a fraction of n (hub skew control)
    hub_fraction: float
    #: extra planted components (count, size) besides the main one
    planted_components: Tuple[Tuple[int, int], ...]
    #: length of the path appendage calibrating the diameter
    path_appendage: int
    seed: int


DATASETS: Dict[str, DatasetSpec] = {
    "OK-S": DatasetSpec(
        name="OK-S",
        description="com-Orkut analogue: dense social network, 1 component",
        paper=PaperStats(3.07e6, 234.4e6, 9, False, 1, 3.1e6),
        main_vertices=3072,
        average_degree=15.0,
        exponent=2.6,
        hub_fraction=0.03,
        planted_components=(),
        path_appendage=0,
        seed=101,
    ),
    "TW-S": DatasetSpec(
        name="TW-S",
        description="Twitter analogue: follower graph, 2 components",
        paper=PaperStats(41.6e6, 2.4e9, 23, True, 2, 41.6e6),
        main_vertices=8192,
        average_degree=12.0,
        exponent=2.2,
        hub_fraction=0.05,
        planted_components=((1, 16),),
        path_appendage=16,
        seed=102,
    ),
    "FS-S": DatasetSpec(
        name="FS-S",
        description="Friendster analogue: large social network, 1 component",
        paper=PaperStats(65.6e6, 3.6e9, 32, False, 1, 65.6e6),
        main_vertices=16384,
        average_degree=10.0,
        exponent=2.7,
        hub_fraction=0.02,
        planted_components=(),
        path_appendage=24,
        seed=103,
    ),
    "CW-S": DatasetSpec(
        name="CW-S",
        description="ClueWeb analogue: web graph, extreme hub skew, many components",
        paper=PaperStats(0.978e9, 74.7e9, 132, True, 23_794_336, 0.950e9),
        main_vertices=24576,
        average_degree=10.0,
        exponent=1.9,
        hub_fraction=0.12,
        planted_components=((22, 14),),
        path_appendage=90,
        seed=104,
    ),
    "HL-S": DatasetSpec(
        name="HL-S",
        description="Hyperlink2012 analogue: largest input, many components",
        paper=PaperStats(3.56e9, 225.8e9, 331, True, 144_628_744, 3.35e9),
        main_vertices=32768,
        average_degree=10.0,
        exponent=2.1,
        hub_fraction=0.06,
        planted_components=((13, 18),),
        path_appendage=160,
        seed=105,
    ),
}

DATASET_NAMES: List[str] = list(DATASETS)

_CACHE: Dict[Tuple[str, float], Graph] = {}


def dataset_spec(name: str) -> DatasetSpec:
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {DATASET_NAMES}"
        ) from None


def _connect_main_part(graph: Graph, rng: random.Random) -> None:
    """Attach the stragglers of the generated main part to its giant
    component.

    Chung-Lu samples leave stragglers (low-weight vertices can end up
    isolated); the real social graphs are dominated by one giant component,
    so the analogue links each straggler component directly to a random
    giant-component vertex — a vanishing perturbation of both the degree
    sequence and the diameter (+2 at most).
    """
    labels = connected_components(graph)
    sizes: Dict[int, int] = {}
    for label in labels:
        sizes[label] = sizes.get(label, 0) + 1
    giant = max(sizes, key=lambda lab: (sizes[lab], -lab))
    giant_members = [v for v in range(graph.num_vertices)
                     if labels[v] == giant]
    seen: Dict[int, int] = {}
    for vertex, label in enumerate(labels):
        if label != giant and label not in seen:
            seen[label] = vertex
            anchor = giant_members[rng.randrange(len(giant_members))]
            graph.add_edge(vertex, anchor)


def build_dataset(spec: DatasetSpec, scale: float = 1.0) -> Graph:
    """Materialize a dataset at the given scale (1.0 = full benchmarks,
    smaller values for fast tests)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = max(64, int(spec.main_vertices * scale))
    rng = random.Random(spec.seed)
    degrees = power_law_degrees(
        n,
        exponent=spec.exponent,
        min_degree=max(1.0, spec.average_degree / 3.0),
        max_degree=max(4.0, spec.hub_fraction * n),
        seed=spec.seed,
    )
    # Rescale so the realized average degree lands near the target.
    factor = spec.average_degree / (sum(degrees) / n)
    degrees = [d * factor for d in degrees]
    main = chung_lu_graph(degrees, seed=spec.seed + 1)
    _connect_main_part(main, rng)

    parts: List[Graph] = [main]
    appendage = int(spec.path_appendage * max(scale, 0.25))
    if appendage >= 2:
        # A path glued to vertex 0 raises the diameter to the target regime.
        glued = Graph(main.num_vertices + appendage)
        for u, v in main.edges():
            glued.add_edge(u, v)
        previous = 0
        for i in range(appendage):
            extra = main.num_vertices + i
            glued.add_edge(previous, extra)
            previous = extra
        parts = [glued]
    for count, size in spec.planted_components:
        size = max(3, int(size * max(scale, 0.25)))
        for i in range(count):
            parts.append(
                random_spanning_tree_graph(
                    size, extra_edges=size // 4,
                    seed=spec.seed + 7 * len(parts) + i,
                )
            )
    return disjoint_union(parts)


def load_dataset(name: str, scale: float = 1.0) -> Graph:
    """Load (and cache) a dataset by name."""
    key = (name, scale)
    if key not in _CACHE:
        _CACHE[key] = build_dataset(dataset_spec(name), scale)
    return _CACHE[key]


def load_weighted_dataset(name: str, scale: float = 1.0) -> WeightedGraph:
    """The MSF inputs: the paper weighs edge (u, v) by deg(u) + deg(v)."""
    return degree_weighted(load_dataset(name, scale))


def cycle_instance(k: int, *, two: bool, seed: int = 0) -> Graph:
    """A ``2 x k`` instance (two=True) or a single 2k-cycle (two=False).

    These are the Section 5.6 inputs; ids are shuffled so that cycle
    position and vertex id are uncorrelated, as in any real edge dump.
    """
    if two:
        return two_cycles(k, shuffle_ids=True, seed=seed)
    return cycle_graph(2 * k, shuffle_ids=True, seed=seed)
