"""Figure 6 — normalized running times, AMPC vs MPC Maximal Matching.

Per dataset: the AMPC matching time broken into PermuteGraph / KV-Write /
IsInMM next to the MPC rootset matching.  Headline shapes: AMPC is always
faster, but by less than for MIS (paper: 1.16-1.72x vs 2.31-3.18x), because
the matching search is costlier and the edge-permuted graph carries all
edges through the shuffle.

Paper wall-clock annotations (seconds):

    dataset   AMPC    MPC
    OK        102.3   163
    TW        280.1   483
    FS        355.8   596
    CW        1715    2268
    HL        4293    4982
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_DATASETS, run_once
from repro.analysis.experiment import run_ampc_matching, run_ampc_mis, run_mpc_matching
from repro.analysis.reporting import Table

PAPER_TIMES = {
    "OK-S": (102.3, 163.0),
    "TW-S": (280.1, 483.0),
    "FS-S": (355.8, 596.0),
    "CW-S": (1715.0, 2268.0),
    "HL-S": (4293.0, 4982.0),
}


def test_fig6_matching_running_times(benchmark, datasets):
    def compute():
        rows = {}
        for ds in BENCH_DATASETS:
            graph = datasets[ds]
            rows[ds] = (
                run_ampc_matching(graph),
                run_mpc_matching(graph),
                run_ampc_mis(graph),
            )
        return rows

    rows = run_once(benchmark, compute)

    table = Table(
        "Figure 6: Maximal Matching simulated running times",
        ["Dataset", "PermuteGraph", "KV-Write", "IsInMM", "AMPC total",
         "MPC total", "Speedup", "paper speedup"],
    )
    for ds in BENCH_DATASETS:
        ampc, mpc, _ = rows[ds]
        phases = ampc["phase_breakdown"]
        speedup = mpc["simulated_time_s"] / ampc["simulated_time_s"]
        paper_ampc, paper_mpc = PAPER_TIMES[ds]
        table.add_row(
            ds,
            f"{phases.get('PermuteGraph', 0):.2f}s",
            f"{phases.get('KV-Write', 0):.2f}s",
            f"{phases.get('IsInMM', 0):.2f}s",
            f"{ampc['simulated_time_s']:.2f}s",
            f"{mpc['simulated_time_s']:.2f}s",
            f"{speedup:.2f}x",
            f"{paper_mpc / paper_ampc:.2f}x",
        )
    table.show()

    for ds in BENCH_DATASETS:
        ampc, mpc, mis = rows[ds]
        # AMPC faster, but by a smaller factor than for MIS (Figure 6).
        assert ampc["simulated_time_s"] < mpc["simulated_time_s"]
        mm_speedup = mpc["simulated_time_s"] / ampc["simulated_time_s"]
        # Copying all edges makes PermuteGraph costlier than MIS's
        # DirectGraph (Section 5.4: "copying the graph takes somewhat
        # longer than the MIS algorithm").
        assert (ampc["phase_breakdown"]["PermuteGraph"]
                > mis["phase_breakdown"]["DirectGraph"])
        assert ampc["output_size"] == mpc["output_size"]
