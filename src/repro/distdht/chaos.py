"""Fault injection for DHT nodes: latency, errors, blackholes.

``sever_connections`` on :class:`~repro.distdht.sockets.DHTNodeServer`
already covers *node-dead*.  Real clusters mostly fail softer than that:
a node gets slow (GC pause, saturated disk, noisy neighbour), starts
erroring (disk full, corrupted segment), or silently eats requests (a
half-partitioned network).  :class:`ChaosInjector` makes those modes
injectable on a live node so the full Session → procpool → socket-DHT
stack can be tested against them — not just against clean kills.

Three independent knobs, all applied per request *before* dispatch:

* ``latency_s`` — sleep that long before serving (node-slow).  Client
  requests still succeed; tail latency grows.  Exercises the pooled
  clients' socket timeouts and the serving layer's patience.
* ``error_rate`` — with that probability, reply ``STATUS_ERROR``
  instead of serving.  Surfaces client-side as a RuntimeError (not a
  ConnectionError), so it does **not** trigger replica failover — the
  request fails loudly, the way a real storage error does.
* ``blackhole`` — drop the request without any reply and hard-close
  the connection.  The client sees a ConnectionError mid-frame and
  retries / fails over exactly as it would for a killed node, except
  the node is still accepting fresh connections, which is the nastier
  half-dead shape.

The RNG is seeded so an ``error_rate`` schedule is reproducible in
tests.  ``heal()`` clears everything; injection and healing are safe on
a live node (the handler reads one consistent snapshot per request).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Optional, Tuple


class BlackholeError(ConnectionError):
    """Raised inside the node handler to drop a request unanswered.

    The handler treats it as a signal to close the connection without
    replying — the client-visible effect is a peer reset mid-request.
    """


class ChaosInjector:
    """Injectable fault policy for one DHT node.

    All knobs default to "off"; the injector is inert until one of them
    is set.  Thread-safe: many handler threads consult it concurrently
    while a test (or the CLI) reconfigures it.
    """

    def __init__(self, *, latency_s: float = 0.0, error_rate: float = 0.0,
                 blackhole: bool = False, seed: int = 0):
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._latency_s = 0.0
        self._error_rate = 0.0
        self._blackhole = False
        self._injected = 0
        self.configure(latency_s=latency_s, error_rate=error_rate,
                       blackhole=blackhole)

    # -- configuration -----------------------------------------------------

    def configure(self, *, latency_s: Optional[float] = None,
                  error_rate: Optional[float] = None,
                  blackhole: Optional[bool] = None) -> None:
        """Set any subset of the knobs; omitted ones keep their value."""
        with self._lock:
            if latency_s is not None:
                if latency_s < 0:
                    raise ValueError("latency_s must be >= 0")
                self._latency_s = float(latency_s)
            if error_rate is not None:
                if not 0.0 <= error_rate <= 1.0:
                    raise ValueError("error_rate must be in [0, 1]")
                self._error_rate = float(error_rate)
            if blackhole is not None:
                self._blackhole = bool(blackhole)

    def heal(self) -> None:
        """Turn every fault off (latency 0, error rate 0, no blackhole)."""
        self.configure(latency_s=0.0, error_rate=0.0, blackhole=False)

    # -- introspection -----------------------------------------------------

    @property
    def active(self) -> bool:
        with self._lock:
            return (self._latency_s > 0.0 or self._error_rate > 0.0
                    or self._blackhole)

    @property
    def injected(self) -> int:
        """How many requests have had a fault applied (sleep counts)."""
        with self._lock:
            return self._injected

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "latency_s": self._latency_s,
                "error_rate": self._error_rate,
                "blackhole": self._blackhole,
                "injected": self._injected,
            }

    # -- the hook ----------------------------------------------------------

    def before_request(self) -> None:
        """Called by the node handler once per incoming request.

        Applies latency, then blackhole, then the error roll — a node
        can be slow *and* flaky at once.  Raises
        :class:`BlackholeError` to drop the request, or RuntimeError to
        answer it with ``STATUS_ERROR``.
        """
        with self._lock:
            latency_s = self._latency_s
            blackhole = self._blackhole
            erroring = (self._error_rate > 0.0
                        and self._rng.random() < self._error_rate)
            if latency_s > 0.0 or blackhole or erroring:
                self._injected += 1
        if latency_s > 0.0:
            time.sleep(latency_s)
        if blackhole:
            raise BlackholeError("chaos: request blackholed")
        if erroring:
            raise RuntimeError("chaos: injected fault")


# -- node crash / rejoin ------------------------------------------------------


def restart_node_empty(host: str, port: int, *,
                       timeout_s: float = 5.0):
    """Start a fresh, empty DHT node on an address a node just vacated.

    The data-loss half of the self-healing story: a node that crashes
    and restarts comes back with *nothing* — hinted handoff and
    anti-entropy have to repopulate it.  Retries the bind briefly
    because the old listener's socket can linger a moment after close.
    """
    from repro.distdht.sockets import DHTNodeServer  # import cycle

    deadline = time.monotonic() + timeout_s
    while True:
        try:
            return DHTNodeServer(host, port).start()
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


class NodeOutage:
    """Scripted crash-and-rejoin of one live DHT node.

    Entering the context kills the node (listener and every established
    connection); :meth:`restart` — or exiting the context — brings an
    **empty** node back on the same address.  The caller owns closing
    the restarted node::

        with NodeOutage(node_b) as outage:
            store.put(b"k", b"v")          # lands via hints
        node_b = outage.restarted          # rejoined, empty
    """

    def __init__(self, node):
        self.node = node
        self.address: Tuple[str, int] = node.address
        self.restarted = None

    def __enter__(self) -> "NodeOutage":
        self.node.close()
        return self

    def restart(self):
        if self.restarted is None:
            self.restarted = restart_node_empty(*self.address)
        return self.restarted

    def __exit__(self, exc_type, exc, tb) -> None:
        self.restart()
