"""The batch-oriented DHT record layout: contiguous columns, boxed late.

A :class:`ColumnarRecords` is a batch of ``(key, value)`` records whose
keys and payload scalars live in flat columns instead of one boxed tuple
per record.  The layout covers the record shapes the AMPC algorithms
store — per-vertex sequences of scalars (MIS directed neighbors), of
fixed-arity rows (matching's ``(rank, neighbor)`` pairs, MSF's
``(neighbor, weight)`` pairs), and plain scalar values (MSF pointers):

* ``keys``    — int64 column, one non-negative vertex-id key per record;
* ``indptr``  — int64 row offsets (``None`` for scalar values);
* ``cols``    — one flat column per field of a payload row.

Because every scalar the algorithms store is an 8-byte int or float, the
serialized size of record ``i`` is ``8 * fields * rows_i`` — computed for
the whole batch by one vectorized expression that
``tests/ampc/test_hashing_fastpath.py`` pins against
:func:`~repro.ampc.cost_model.estimate_bytes_reference` exactly.  Shard
and machine placement hash the key column through the vectorized
splitmix64 kernel (:mod:`repro.ampc.vector`), again batch-at-a-time.

Boxing (``items()``) happens once, lazily, when a store or a PCollection
needs the actual Python objects; the boxed form is cached so the store
write and the returned records share one materialization.

This module is numpy-backed: callers construct ColumnarRecords only on
the ``vector.HAVE_NUMPY`` fast paths (the pure-python mode keeps the
per-element reference paths, which are charge-identical).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ampc.vector import HAVE_NUMPY, np, placement_ids

__all__ = ["ColumnarRecords"]


class ColumnarRecords:
    """A batch of ``(key, value)`` DHT records as contiguous columns."""

    __slots__ = ("keys", "indptr", "cols", "_items", "_sizes")

    def __init__(self, keys, indptr, cols):
        if not HAVE_NUMPY:
            raise RuntimeError(
                "ColumnarRecords needs numpy; callers must check "
                "vector.HAVE_NUMPY and stay on the boxed paths without it")
        self.keys = np.asarray(keys, dtype=np.int64)
        self.indptr = (None if indptr is None
                       else np.asarray(indptr, dtype=np.int64))
        if not cols:
            raise ValueError("need at least one payload column")
        self.cols = tuple(np.asarray(col) for col in cols)
        if self.indptr is not None and len(self.indptr) != len(self.keys) + 1:
            raise ValueError("indptr must have one offset per record + 1")
        self._items: Optional[List[Tuple]] = None
        self._sizes: Optional[List[int]] = None

    # -- construction conveniences ----------------------------------------

    @classmethod
    def scalars(cls, keys, values) -> "ColumnarRecords":
        """One scalar value per key (e.g. a pointer store)."""
        return cls(keys, None, (values,))

    @classmethod
    def ragged(cls, keys, indptr, *cols) -> "ColumnarRecords":
        """Tuple values: record i is ``tuple(rows[indptr[i]:indptr[i+1]])``
        where a row is a scalar (one column) or a k-tuple (k columns)."""
        return cls(keys, indptr, cols)

    # -- shape -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def row_counts(self):
        if self.indptr is None:
            return np.ones(len(self.keys), dtype=np.int64)
        return np.diff(self.indptr)

    # -- vectorized size accounting ---------------------------------------

    def value_sizes(self):
        """Serialized value bytes per record, as an int64 array.

        Every payload scalar is an 8-byte int or float, so record i costs
        ``8 * len(cols) * rows_i`` — exactly what ``estimate_bytes`` walks
        out of the boxed value.
        """
        if self.indptr is None:
            return np.full(len(self.keys), 8 * len(self.cols),
                           dtype=np.int64)
        return 8 * len(self.cols) * np.diff(self.indptr)

    def total_value_bytes(self) -> int:
        return int(self.value_sizes().sum())

    def element_bytes(self):
        """Bytes of each boxed ``(key, value)`` element (int key: 8)."""
        return self.value_sizes() + 8

    def total_element_bytes(self) -> int:
        """What ``PCollection._total_bytes`` charges for these elements."""
        return int(self.element_bytes().sum())

    # -- vectorized placement ---------------------------------------------

    def shard_ids(self, num_shards: int):
        return placement_ids(self.keys, num_shards)

    def machine_ids(self, num_machines: int):
        return placement_ids(self.keys, num_machines)

    # -- boxing (lazy, cached) --------------------------------------------

    def value_size_list(self) -> List[int]:
        """:meth:`value_sizes` as plain Python ints (store size memos)."""
        if self._sizes is None:
            self._sizes = self.value_sizes().tolist()
        return self._sizes

    def items(self) -> List[Tuple]:
        """The boxed ``(key, value)`` records, materialized once.

        Scalars come out as plain Python ints/floats (``tolist``), values
        as tuples of scalars or of row tuples — the exact objects the
        per-element reference path would have built.
        """
        if self._items is None:
            keys = self.keys.tolist()
            if self.indptr is None:
                values = self.cols[0].tolist()
                if len(self.cols) != 1:
                    rows = list(zip(*(col.tolist() for col in self.cols)))
                    values = rows
            else:
                offsets = self.indptr.tolist()
                if len(self.cols) == 1:
                    flat = self.cols[0].tolist()
                else:
                    flat = list(zip(*(col.tolist() for col in self.cols)))
                values = [tuple(flat[start:stop])
                          for start, stop in zip(offsets, offsets[1:])]
            self._items = list(zip(keys, values))
        return self._items
