"""AMPC Minimum Spanning Forest (Section 3 / Section 5.5).

Two entry points:

* :func:`ampc_msf` — the paper's *practical* implementation (Section 5.5):

  1. **SortGraph** (shuffle): per-vertex adjacency sorted by edge weight.
  2. **KV-Write**: adjacency into the DHT.
  3. **PrimSearch**: a truncated Prim search from every vertex, stopping on
     (a) the exploration budget, (b) exhausting the component, or (c)
     reaching a higher-priority (lower-rank) vertex.  Every edge the search
     adds is an MSF edge by the cut property; every visited lower-priority
     vertex emits a ``(visited, visitor)`` tuple.
  4. **Combine** (shuffle): group by visited vertex, keep the
     highest-priority visitor — a pointer forest (ranks strictly decrease
     along pointers, so no cycles).
  5. **PointerJump**: chase pointers through the DHT to tree roots.
  6. **Contract** (2 shuffles): rewrite both edge endpoints through the
     root mapping, then solve the contracted graph in memory and merge.

* :func:`ampc_msf_theory` — Algorithm 2: ternarize sparse graphs, run
  Algorithm 1 (``TruncatedPrim`` with the terminal-edge forest F), contract,
  and fall back to the dense routine.  The dense routine of Proposition 3.1
  (the [19] DenseMSF we cannot import) is substituted by repeated
  contraction rounds until the instance fits in one machine's memory — the
  same O(log log) shrink schedule, documented in DESIGN.md.

All variants carry the *original* endpoints of every edge through
contraction and solve with the strict total order (weight, endpoints), so
the output is edge-identical to Kruskal even with heavily tied weights
(e.g. the degree-weighted graphs of Section 5.2).
"""

from __future__ import annotations

import heapq
import math
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.columnar import ColumnarRecords
from repro.ampc.cost_model import _sequence_bytes
from repro.ampc.dht import DHTStore
from repro.ampc.metrics import Metrics
from repro.ampc.runtime import AMPCRuntime
from repro.ampc.vector import HAVE_NUMPY, np, placement_ids
from repro.api.incremental import patch_records, touched_vertices
from repro.api.registry import AlgorithmSpec, ParamSpec, register_algorithm
from repro.core.ranks import vertex_ranks, hash_rank
from repro.dataflow.columnar import (charge_map_stage, partition_boxed,
                                     roundrobin_counts, write_columnar_store)
from repro.dataflow.dofn import DoFn, MachineContext
from repro.graph.graph import WeightedGraph, edge_key
from repro.graph.ternarize import ternarize

EdgeId = Tuple[int, int]
#: (weight, original_u, original_v, current_u, current_v)
EdgeRecord = Tuple[float, int, int, int, int]


@dataclass
class MSFResult:
    """Output of an AMPC MSF run: the forest plus pipeline statistics."""

    forest: List[EdgeId]
    metrics: Metrics
    rounds: int = 0
    #: vertices of the contracted graph after the Prim round(s)
    contracted_vertices: int = 0
    #: MSF edges discovered directly by the Prim searches
    prim_edges: int = 0
    #: maximum pointer-chain length seen while jumping (paper saw <= 33)
    max_pointer_depth: int = 0


# ---------------------------------------------------------------------------
# Prim searches
# ---------------------------------------------------------------------------


#: per-store memo of completed Prim searches, keyed by the sealed
#: adjacency store (weak: dropping the store drops its memo)
_PRIM_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: per-adjacency-store memo of the contracted Kruskal forest, keyed by
#: (seed, budget).  Pure driver-side compute — the charge for the solve
#: is applied unconditionally at the call site.
_FOREST_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class _PrimSearch(DoFn):
    """Truncated Prim search from every vertex (Algorithm 1, lines 5-12).

    Emits ``("msf", edge)`` for each discovered MSF edge, ``("visit",
    visited, visitor)`` for every lower-priority visited vertex, and
    ``("ptr", v, u)`` when the search stops at a higher-priority vertex
    (the F edge of the theory algorithm).

    Each vertex's search is a pure function of the sealed adjacency
    store, the rank seed, and the budget, and so is its charge profile
    (which keys it read, in what order).  Over a plain in-process store
    the outcome is memoized per ``(seed, budget)`` — warm Session runs
    replay the recorded outputs and *exactly* the recorded charges (same
    reads, bytes, and per-shard contention bumps) without re-walking the
    heap.  Derived or backed stores are distinct memo keys or opt out.
    """

    def __init__(self, store: DHTStore, ranks: Sequence[float], budget: int,
                 *, seed: Optional[int] = None):
        self._store = store
        self._ranks = ranks
        self._budget = budget
        self._memo: Optional[Dict[int, tuple]] = None
        if seed is not None and type(store) is DHTStore:
            try:
                per_store = _PRIM_MEMO.setdefault(store, {})
            except TypeError:  # a store that cannot be weakly referenced
                pass
            else:
                self._memo = per_store.setdefault(
                    (seed, budget, len(ranks)), {})

    def process(self, element, ctx):
        memo = self._memo
        if memo is not None:
            entry = memo.get(element[0])
            if entry is not None:
                outputs, reads, read_bytes, shards = entry
                work = ctx.work
                work.kv_reads += reads
                work.kv_read_bytes += read_bytes
                shard_reads = self._store.shard_reads
                for shard in shards:
                    shard_reads[shard] += 1
                return outputs
        return self._search(element, ctx)

    def _search(self, element, ctx):
        vertex, incident = element
        ranks = self._ranks
        store = self._store
        budget = self._budget
        memo = self._memo
        heappop = heapq.heappop
        heappush = heapq.heappush
        my_rank = (ranks[vertex], vertex)
        visited = {vertex}
        heap = [((w,) + edge_key(vertex, u), vertex, u) for u, w in incident]
        heapq.heapify(heap)
        outputs = []
        append = outputs.append
        shards: List[int] = []
        read_bytes = 0
        work = ctx.work
        while heap:
            if len(visited) >= budget:
                break  # stopping condition (1): budget exhausted
            order, x, y = heappop(heap)
            if y in visited:
                continue
            visited.add(y)
            append(("msf", edge_key(x, y), 0))
            if (ranks[y], y) < my_rank:
                # stopping condition (3): reached a higher-priority vertex.
                append(("ptr", vertex, y))
                break
            append(("visit", y, vertex))
            if memo is not None:
                # charge-identical to ctx.lookup for an int key, with the
                # touched shard recorded for memo replay
                fetched, size = store.lookup_with_size(y)
                work.kv_reads += 1
                work.kv_read_bytes += 8 + size
                read_bytes += 8 + size
                shards.append(store.shard_of(y))
            else:
                fetched = ctx.lookup(store, y)
            for u, w in fetched or ():
                if u not in visited:
                    heappush(heap, ((w,) + edge_key(y, u), y, u))
        # Falling out of the loop with an empty heap is stopping
        # condition (2): the component is fully explored.
        if memo is not None:
            memo[vertex] = (outputs, len(shards), read_bytes, shards)
        return outputs


class _PointerJump(DoFn):
    """Chase parent pointers to the root, with per-machine memoization."""

    def __init__(self, store: DHTStore):
        self._store = store
        self._cache: Optional[Dict[int, int]] = None
        self.max_depth = 0

    def start_machine(self, ctx: MachineContext) -> None:
        self._cache = {} if ctx.caching_enabled else None

    def process(self, element, ctx):
        vertex = element
        chain = []
        current = vertex
        while True:
            if self._cache is not None and current in self._cache:
                ctx.note_cache_hit()
                current = self._cache[current]
                break
            parent = ctx.lookup(self._store, current)
            if parent is None or parent == current:
                break
            chain.append(current)
            current = parent
        self.max_depth = max(self.max_depth, len(chain))
        if self._cache is not None:
            for node in chain:
                self._cache[node] = current
        yield (vertex, current)


# ---------------------------------------------------------------------------
# Shared pieces
# ---------------------------------------------------------------------------


def _sorted_incident(graph: WeightedGraph, vertex: int):
    """Incident (neighbor, weight) pairs sorted by the edge total order."""
    return tuple(graph.neighbor_items(vertex))


def _contract_edges(runtime: AMPCRuntime, edge_records: Iterable[EdgeRecord],
                    roots_pcoll) -> List[EdgeRecord]:
    """Rewrite edge endpoints through the root mapping (2 shuffles)."""
    edges = runtime.pipeline.from_items(
        [("edge", record) for record in edge_records]
    )
    tagged_edges = edges.map_elements(
        lambda item: (item[1][3], ("edge", item[1])), name="key-by-u"
    )
    tagged_roots = roots_pcoll.map_elements(
        lambda pair: (pair[0], ("root", pair[1])), name="tag-roots"
    )
    joined = tagged_edges.flatten_with(tagged_roots).group_by_key(
        name="contract-join-u"
    )

    def _rewrite_u(record):
        vertex, tags = record
        root = vertex
        pending = []
        for kind, payload in tags:
            if kind == "root":
                root = payload
            else:
                pending.append(payload)
        return [
            (cv, ("edge", (w, ou, ov, root, cv)))
            for (w, ou, ov, cu, cv) in pending
        ]

    half = joined.flat_map(_rewrite_u, name="rewrite-u")
    joined2 = half.flatten_with(tagged_roots).group_by_key(
        name="contract-join-v"
    )

    def _rewrite_v(record):
        vertex, tags = record
        root = vertex
        pending = []
        for kind, payload in tags:
            if kind == "root":
                root = payload
            else:
                pending.append(payload)
        return [
            (w, ou, ov, cu, root)
            for (w, ou, ov, cu, cv) in pending
            if cu != root
        ]

    contracted = joined2.flat_map(_rewrite_v, name="rewrite-v")
    return contracted.collect()


class _DictUnionFind:
    """Union-find over arbitrary hashable ids (contracted vertex names)."""

    def __init__(self):
        self._parent: Dict = {}

    def find(self, x):
        parent = self._parent
        get = parent.get
        root = x
        step = get(root, root)
        while step != root:
            root = step
            step = get(root, root)
        while x != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x, y) -> bool:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        self._parent[ry] = rx
        return True


def _kruskal_records(records: Iterable[EdgeRecord]) -> List[EdgeId]:
    """Kruskal over contracted edges, ordered by (weight, original edge)."""
    uf = _DictUnionFind()
    forest: List[EdgeId] = []
    for w, ou, ov, cu, cv in sorted(records, key=lambda r: (r[0], r[1], r[2])):
        if cu != cv and uf.union(cu, cv):
            forest.append(edge_key(ou, ov))
    return forest


def _combine_pointers_columnar(runtime: AMPCRuntime, visits, ranks):
    """Columnar twin of the Combine stage chain (shuffles 2 and 3).

    Replays the boxed ``group_by_key`` → ``select-best-visitor`` →
    ``repartition`` → store-write sequence — same charges in the same
    stage order — from flat arrays.  The best (min ``(rank, id)``)
    visitor per visited vertex is unique, so one lexsort + first-of-group
    selects exactly what the boxed ``min`` picked; element order inside
    the intermediate stages is not metrics-visible (the charges are
    counts and byte totals, and the pointer store is a key-value map).
    """
    cluster = runtime.cluster
    num_machines = cluster.config.num_machines
    #: every element in this chain is an (int, int) pair
    pair_bytes = _sequence_bytes((0, 0))
    cluster.charge_shuffle(pair_bytes * len(visits))  # combine-visitors
    if visits:
        count = len(visits)
        visited = np.fromiter((pair[0] for pair in visits),
                              dtype=np.int64, count=count)
        visitors = np.fromiter((pair[1] for pair in visits),
                               dtype=np.int64, count=count)
        ranks_arr = np.asarray(ranks, dtype=np.float64)
        order = np.lexsort((visitors, ranks_arr[visitors], visited))
        sorted_visited = visited[order]
        first = np.ones(count, dtype=bool)
        first[1:] = sorted_visited[1:] != sorted_visited[:-1]
        keys = sorted_visited[first]
        best = visitors[order][first]
    else:
        keys = np.empty(0, dtype=np.int64)
        best = np.empty(0, dtype=np.int64)
    key_machines = placement_ids(keys, num_machines)
    counts = np.bincount(key_machines, minlength=num_machines).tolist()
    charge_map_stage(cluster, counts)                 # select-best-visitor
    cluster.charge_shuffle(pair_bytes * len(keys))    # place-pointers
    pointer_store = runtime.new_store("msf-pointers")
    write_columnar_store(cluster, pointer_store,
                         ColumnarRecords.scalars(keys, best), key_machines)
    return pointer_store


def _contract_edges_columnar(runtime: AMPCRuntime, graph, roots_pcoll):
    """Columnar twin of :func:`_contract_edges` (shuffles 4 and 5).

    Returns the contracted records as parallel arrays ``(w, ou, ov, cu,
    cv)`` instead of boxed tuples.  Charge replay, stage for stage:

    * key-by-u / tag-roots: two map stages over round-robin partitions;
    * each contract join moves every tagged edge (52 bytes: int key +
      ``"edge"`` tag + five scalars) and every tagged root (20 bytes) —
      the rewrite between the joins swaps one int for another, so both
      joins shuffle identical byte totals;
    * each rewrite stage reads one group per vertex (the root records
      cover *every* vertex, so per-machine group counts are the vertex
      placement histogram) and emits its surviving edges keyed by the
      join vertex.

    Element order never matters here: downstream consumes the records
    through an order-insensitive total sort (Kruskal) and counts.
    """
    cluster = runtime.cluster
    num_machines = cluster.config.num_machines
    csr = graph.csr()
    n = csr.num_vertices
    indptr = np.asarray(csr.indptr)
    dst = np.asarray(csr.indices)
    weights = (np.asarray(csr.weights) if csr.weights is not None
               else np.zeros(len(dst), dtype=np.float64))
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    forward = src < dst
    ou = src[forward]
    ov = dst[forward]
    weight = weights[forward]
    num_edges = len(ou)

    root_of = np.arange(n, dtype=np.int64)
    for vertex, root in roots_pcoll.collect():
        root_of[vertex] = root

    charge_map_stage(cluster, roundrobin_counts(num_edges, num_machines))
    charge_map_stage(cluster, roundrobin_counts(n, num_machines))
    tagged_edge_bytes = _sequence_bytes((0, ("edge", (0.0, 0, 0, 0, 0))))
    tagged_root_bytes = _sequence_bytes((0, ("root", 0)))
    join_bytes = tagged_edge_bytes * num_edges + tagged_root_bytes * n
    vertex_machines = placement_ids(np.arange(n, dtype=np.int64),
                                    num_machines)
    group_counts = np.bincount(vertex_machines,
                               minlength=num_machines).tolist()

    cluster.charge_shuffle(join_bytes)                # contract-join-u
    cu = root_of[ou]
    charge_map_stage(                                 # rewrite-u
        cluster, group_counts,
        np.bincount(vertex_machines[ou], minlength=num_machines).tolist())
    cluster.charge_shuffle(join_bytes)                # contract-join-v
    cv = root_of[ov]
    keep = cu != cv
    charge_map_stage(                                 # rewrite-v
        cluster, group_counts,
        np.bincount(vertex_machines[ov[keep]],
                    minlength=num_machines).tolist())
    return weight[keep], ou[keep], ov[keep], cu[keep], cv[keep]


def _kruskal_arrays(weight, ou, ov, cu, cv) -> List[EdgeId]:
    """:func:`_kruskal_records` over parallel arrays.

    Identical forest, identical order: the sort key ``(w, ou, ov)`` is a
    total order (each original edge appears once), and the union-find runs
    over the contracted class ids relabeled to a dense range.
    """
    order = np.lexsort((ov, ou, weight))
    classes, dense = np.unique(np.concatenate((cu, cv)), return_inverse=True)
    dense_u = dense[:len(cu)].tolist()
    dense_v = dense[len(cu):].tolist()
    parent = list(range(len(classes)))
    ou_list = ou.tolist()
    ov_list = ov.tolist()
    forest: List[EdgeId] = []
    append = forest.append
    for index in order.tolist():
        x = dense_u[index]
        while parent[x] != x:
            parent[x] = x = parent[parent[x]]
        y = dense_v[index]
        while parent[y] != y:
            parent[y] = y = parent[parent[y]]
        if x != y:
            parent[y] = x
            a = ou_list[index]
            b = ov_list[index]
            append((a, b) if a < b else (b, a))
    return forest


def _default_budget(num_vertices: int, epsilon: float) -> int:
    """The n^(epsilon/2) exploration budget of Algorithm 1."""
    if num_vertices <= 1:
        return 2
    return max(2, math.ceil(num_vertices ** (epsilon / 2.0)))


# ---------------------------------------------------------------------------
# The practical pipeline (Section 5.5)
# ---------------------------------------------------------------------------


@dataclass
class PreparedMSF:
    """The DHT-resident weight-sorted adjacency (Section 5.5 step 1).

    Seed-independent: the adjacency is ordered by edge weight, so one
    prepared artifact serves MSF runs under any seed.
    """

    #: ``(vertex, weight-sorted incident edges)`` records
    records: List[Tuple[int, Tuple[Tuple[int, float], ...]]]
    store: DHTStore
    #: ``(num_machines, per-record machine ids)`` precomputed by the
    #: columnar prepare (None on the boxed path) — lets runs on the same
    #: cluster shape re-place records without re-hashing every key
    machines: Optional[Tuple[int, object]] = None


def _prepare_msf_columnar(graph, runtime: AMPCRuntime) -> PreparedMSF:
    """Columnar twin of :func:`prepare_msf`: same charges, flat arrays.

    One lexsort orders every incident list by the edge total order
    ``(weight, canonical endpoints)``; weights ride as a float64 column
    (``WeightedGraph.add_edge`` declares float weights).  There is no map
    stage here — the boxed pipeline goes straight from ``from_items``
    (free) to the placement shuffle — so only the shuffle and KV-write
    charges are replayed.  Record-order reasoning as in
    :func:`repro.core.mis._prepare_mis_columnar`.
    """
    metrics = runtime.metrics
    cluster = runtime.cluster
    num_machines = cluster.config.num_machines
    csr = graph.csr()
    n = csr.num_vertices

    with metrics.phase("SortGraph"):
        indptr = np.asarray(csr.indptr)
        dst = np.asarray(csr.indices)
        # a vertexless WeightedGraph snapshots with weights=None (there is
        # no row to sniff weightedness from) — the columns are empty anyway
        weights = (np.asarray(csr.weights) if csr.weights is not None
                   else np.zeros(len(dst), dtype=np.float64))
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        keys = np.arange(n, dtype=np.int64)
        machines = placement_ids(keys, num_machines)
        record_order = np.lexsort((keys, keys % num_machines, machines))
        vertex_pos = np.empty(n, dtype=np.int64)
        vertex_pos[record_order] = np.arange(n, dtype=np.int64)
        edge_order = np.lexsort((hi, lo, weights, vertex_pos[src]))
        counts = np.diff(indptr)
        out_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts[record_order], out=out_indptr[1:])
        records = ColumnarRecords.ragged(
            keys[record_order], out_indptr,
            dst[edge_order], weights[edge_order])
        record_machines = machines[record_order]
        cluster.charge_shuffle(records.total_element_bytes())

    with metrics.phase("KV-Write"):
        store = runtime.new_store("msf-adjacency")
        write_columnar_store(cluster, store, records, record_machines)
    runtime.next_round()
    return PreparedMSF(records=records.items(), store=store,
                       machines=(num_machines, record_machines))


def prepare_msf(graph: WeightedGraph, *,
                runtime: Optional[AMPCRuntime] = None,
                config: Optional[ClusterConfig] = None,
                seed: int = 0) -> PreparedMSF:
    """The MSF preprocessing: sort adjacency by weight, write to the DHT.

    ``seed`` is accepted for interface uniformity but unused — the sorted
    adjacency does not depend on it.
    """
    del seed
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    if HAVE_NUMPY and hasattr(graph, "csr"):
        return _prepare_msf_columnar(graph, runtime)
    metrics = runtime.metrics

    # Shuffle 1: weight-sorted adjacency onto its home machines.
    with metrics.phase("SortGraph"):
        nodes = runtime.pipeline.from_items(
            [(v, _sorted_incident(graph, v)) for v in graph.vertices()]
        )
        placed = nodes.repartition(lambda record: record[0],
                                   name="place-sorted-graph")
    with metrics.phase("KV-Write"):
        store = runtime.new_store("msf-adjacency")
        runtime.write_store(placed, store,
                            key_fn=lambda record: record[0],
                            value_fn=lambda record: record[1])
    runtime.next_round()
    return PreparedMSF(records=placed.collect(), store=store)


def update_msf(prepared: PreparedMSF, graph: WeightedGraph, *,
               runtime: Optional[AMPCRuntime] = None,
               config: Optional[ClusterConfig] = None,
               seed: int = 0,
               insertions=(), deletions=()) -> PreparedMSF:
    """Patch the DHT-resident weight-sorted adjacency after an edge batch.

    Only the batch endpoints' weight-sorted incident lists change; they
    are recomputed from the mutated graph and written into a derived
    copy-on-write child of the sealed store — O(batch), seed-independent
    like :func:`prepare_msf` itself.
    """
    del seed
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    touched = touched_vertices(insertions, deletions)
    with metrics.phase("PatchSortedGraph"):
        patch = runtime.pipeline.from_items(
            [(v, _sorted_incident(graph, v)) for v in touched]
        ).repartition(lambda record: record[0], name="place-sorted-patch")
    with metrics.phase("KV-Patch"):
        store = runtime.derive_store(prepared.store)
        runtime.write_store(patch, store,
                            key_fn=lambda record: record[0],
                            value_fn=lambda record: record[1])
    runtime.next_round()
    return PreparedMSF(records=patch_records(prepared.records,
                                             patch.collect()),
                       store=store)


def ampc_msf(graph: WeightedGraph, *,
             runtime: Optional[AMPCRuntime] = None,
             config: Optional[ClusterConfig] = None,
             seed: int = 0,
             epsilon: float = 0.5,
             search_budget: Optional[int] = None,
             prepared: Optional[PreparedMSF] = None) -> MSFResult:
    """Section 5.5's practical AMPC MSF: one Prim round, then contract.

    Exactly 5 shuffles (Table 3): SortGraph, Combine-on-visited,
    pointer-map placement, and two contraction joins.  With a ``prepared``
    artifact (from :func:`prepare_msf`) the SortGraph shuffle and KV-write
    are skipped, leaving 4.
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    n = graph.num_vertices
    ranks = vertex_ranks(n, seed)
    budget = search_budget or _default_budget(n, epsilon)

    if prepared is None:
        prepared = prepare_msf(graph, runtime=runtime)
    store = prepared.store
    rounds_before = metrics.rounds
    if (prepared.machines is not None and prepared.machines[0]
            == runtime.cluster.config.num_machines):
        placed = partition_boxed(runtime.pipeline, prepared.records,
                                 prepared.machines[1])
    else:
        placed = runtime.pipeline.from_items(
            prepared.records, key_fn=lambda record: record[0]
        )

    with metrics.phase("PrimSearch"):
        search_output = placed.par_do(
            _PrimSearch(store, ranks, budget, seed=seed), name="prim-search"
        )
    prim_edges: Set[EdgeId] = set()
    visits: List[Tuple[int, int]] = []
    for tag, a, b in search_output.collect():
        if tag == "msf":
            prim_edges.add(a)
        elif tag == "visit":
            visits.append((a, b))

    # Shuffle 2: combine on visited vertices -> best (min-rank) visitor.
    with metrics.phase("PointerJump"):
        if HAVE_NUMPY:
            pointer_store = _combine_pointers_columnar(runtime, visits,
                                                       ranks)
        else:
            visit_pcoll = runtime.pipeline.from_items(visits)
            grouped = visit_pcoll.group_by_key(name="combine-visitors")
            pointers = grouped.map_elements(
                lambda record: (record[0],
                                min(record[1], key=lambda v: (ranks[v], v))),
                name="select-best-visitor",
            )
            # Shuffle 3: place the pointer map, then write it to the DHT.
            pointers = pointers.repartition(lambda pair: pair[0],
                                            name="place-pointers")
            pointer_store = runtime.new_store("msf-pointers")
            runtime.write_store(pointers, pointer_store,
                                key_fn=lambda pair: pair[0],
                                value_fn=lambda pair: pair[1])
        runtime.next_round()
        jumper = _PointerJump(pointer_store)
        vertices = runtime.pipeline.from_items(list(graph.vertices()))
        roots = vertices.par_do(jumper, name="pointer-jump")
    runtime.next_round()

    # Shuffles 4 + 5: contract, then solve in memory.  All edges take part,
    # including the already-discovered MSF edges: classes of the pointer
    # forest may be internally connected only *through* other classes, so
    # discovered edges that cross classes must stay visible to the
    # contracted solve (dropping them can force a heavier replacement).
    with metrics.phase("Contract"):
        if HAVE_NUMPY and hasattr(graph, "csr"):
            columns = _contract_edges_columnar(runtime, graph, roots)
            count = len(columns[0])
            operations = count * max(1, count.bit_length())
            runtime.pipeline.run_on_driver(operations)
            # the contracted forest is a pure function of the sealed
            # adjacency (via the deterministic Prim/pointer phases) and
            # (seed, budget) — the driver-side solve is charged above
            # either way, only the recomputation is skipped
            forest_memo = None
            if type(store) is DHTStore:
                try:
                    forest_memo = _FOREST_MEMO.setdefault(store, {})
                except TypeError:
                    forest_memo = None
            memo_key = (seed, budget)
            if forest_memo is not None and memo_key in forest_memo:
                contracted_forest = forest_memo[memo_key]
            else:
                contracted_forest = _kruskal_arrays(*columns)
                if forest_memo is not None:
                    forest_memo[memo_key] = contracted_forest
        else:
            edge_records = [
                (w, u, v, u, v) for u, v, w in graph.edges()
            ]
            contracted = _contract_edges(runtime, edge_records, roots)
            operations = (len(contracted)
                          * max(1, len(contracted).bit_length()))
            runtime.pipeline.run_on_driver(operations)
            contracted_forest = _kruskal_records(contracted)
    runtime.next_round()

    forest = sorted(prim_edges | set(contracted_forest))
    root_ids = {root for _, root in roots.collect()}
    return MSFResult(
        forest=forest,
        metrics=metrics,
        # round 1 is the preparation (possibly cache-served)
        rounds=metrics.rounds - rounds_before + 1,
        contracted_vertices=len(root_ids),
        prim_edges=len(prim_edges),
        max_pointer_depth=jumper.max_depth,
    )


# ---------------------------------------------------------------------------
# The theory pipeline (Algorithms 1 + 2)
# ---------------------------------------------------------------------------


def truncated_prim_round(graph: WeightedGraph, *,
                         runtime: AMPCRuntime,
                         seed: int,
                         budget: int,
                         prepared_records=None,
                         prepared_store: Optional[DHTStore] = None
                         ) -> Tuple[Set[EdgeId], List[EdgeRecord], int]:
    """One application of Algorithm 1 on a (ternarized) graph.

    Returns ``(discovered MSF edges, contracted edge records, contracted
    vertex count)``.  The contraction follows the theory algorithm: F is
    the set of terminal ``(v, u)`` edges (rank strictly decreases along
    them), contracted to roots by pointer jumping.  When a prepared
    sorted adjacency (``prepared_records`` + ``prepared_store``) is
    passed, the SortGraph shuffle and KV-write round are skipped.
    """
    metrics = runtime.metrics
    n = graph.num_vertices
    ranks = vertex_ranks(n, seed)

    if prepared_store is not None:
        # Re-placing cached records is free: the data already lives in D0.
        placed = runtime.pipeline.from_items(
            prepared_records, key_fn=lambda record: record[0]
        )
        store = prepared_store
    else:
        with metrics.phase("SortGraph"):
            nodes = runtime.pipeline.from_items(
                [(v, _sorted_incident(graph, v)) for v in graph.vertices()]
            )
            placed = nodes.repartition(lambda record: record[0],
                                       name="place-sorted-graph")
        with metrics.phase("KV-Write"):
            store = runtime.new_store("tprim-adjacency")
            runtime.write_store(placed, store,
                                key_fn=lambda record: record[0],
                                value_fn=lambda record: record[1])
        runtime.next_round()

    with metrics.phase("PrimSearch"):
        search_output = placed.par_do(
            _PrimSearch(store, ranks, budget, seed=seed),
            name="truncated-prim"
        )
    prim_edges: Set[EdgeId] = set()
    f_pointers: List[Tuple[int, int]] = []
    for tag, a, b in search_output.collect():
        if tag == "msf":
            prim_edges.add(a)
        elif tag == "ptr":
            f_pointers.append((a, b))

    # Proposition 3.2: contract the directed trees of F to their roots.
    with metrics.phase("PointerJump"):
        pointer_pcoll = runtime.pipeline.from_items(f_pointers)
        pointer_pcoll = pointer_pcoll.repartition(lambda pair: pair[0],
                                                  name="place-f-pointers")
        pointer_store = runtime.new_store("tprim-pointers")
        runtime.write_store(pointer_pcoll, pointer_store,
                            key_fn=lambda pair: pair[0],
                            value_fn=lambda pair: pair[1])
        runtime.next_round()
        vertices = runtime.pipeline.from_items(list(graph.vertices()))
        roots = vertices.par_do(_PointerJump(pointer_store),
                                name="f-pointer-jump")
    runtime.next_round()

    with metrics.phase("Contract"):
        edge_records = [
            (w, u, v, u, v) for u, v, w in graph.edges()
        ]
        contracted = _contract_edges(runtime, edge_records, roots)
    runtime.next_round()
    # Surviving vertices of the contracted graph: roots that still carry an
    # edge (isolated contracted vertices are removed, Algorithm 1 line 14).
    surviving = {root for _, root in roots.collect()}
    live = {cu for _, _, _, cu, cv in contracted} | {
        cv for _, _, _, cu, cv in contracted
    }
    return prim_edges, contracted, len(surviving & live)


def _dense_msf(edge_records: List[EdgeRecord], *,
               runtime: AMPCRuntime,
               seed: int,
               epsilon: float,
               in_memory_threshold: int,
               max_rounds: int = 32) -> List[EdgeId]:
    """Substitute for the DenseMSF of Proposition 3.1 ([19]).

    Repeats contraction rounds (each a truncated Prim round on the current
    contracted multigraph) until the instance fits in one machine's memory,
    then finishes with Kruskal — the same geometric shrink schedule as the
    original O(log log) routine.  The substitution is recorded in DESIGN.md.
    """
    forest: List[EdgeId] = []
    records = edge_records
    round_index = 0
    while len(records) > in_memory_threshold:
        round_index += 1
        if round_index > max_rounds:
            break
        graph, id_map = _records_to_graph(records)
        budget = _default_budget(graph.num_vertices, epsilon)
        prim_edges, contracted, _ = truncated_prim_round(
            graph, runtime=runtime, seed=seed + round_index, budget=budget
        )
        forest.extend(id_map[edge] for edge in prim_edges)
        # Contracted records still reference the graph's local vertex ids for
        # (cu, cv), but their (w, ou, ov) are the local original pairs; map
        # them back to the true original edges.
        records = [
            (w,) + id_map[edge_key(ou, ov)] + (("c", round_index, cu),
                                               ("c", round_index, cv))
            for (w, ou, ov, cu, cv) in contracted
        ]
        if not records:
            break
    runtime.pipeline.run_on_driver(
        len(records) * max(1, len(records).bit_length())
    )
    forest.extend(_kruskal_records(records))
    return forest


def _records_to_graph(records: List[EdgeRecord]):
    """Build a dense-id weighted graph from contracted edge records.

    Returns the graph and a map from each local canonical edge to the true
    original canonical edge it represents.  Parallel super-edges keep the
    minimum-order representative (the only MSF candidate).

    Local edge weights are replaced by their *rank index* in the global
    order (weight, original endpoints): relabeling changes the endpoint
    tie-break, so tied weights could otherwise make the relabeled instance
    resolve ties differently from the original graph.  Rank-index weights
    are distinct, keeping the MSF order-identical.
    """
    ids = sorted({cu for _, _, _, cu, cv in records}
                 | {cv for _, _, _, cu, cv in records})
    index = {vid: i for i, vid in enumerate(ids)}
    best: Dict[EdgeId, Tuple[float, int, int]] = {}
    for w, ou, ov, cu, cv in records:
        if cu == cv:
            continue
        local = edge_key(index[cu], index[cv])
        candidate = (w, ou, ov)
        if local not in best or candidate < best[local]:
            best[local] = candidate
    graph = WeightedGraph(len(ids))
    id_map: Dict[EdgeId, EdgeId] = {}
    ordered = sorted(best.items(), key=lambda item: item[1])
    for order_index, ((a, b), (w, ou, ov)) in enumerate(ordered):
        graph.add_edge(a, b, float(order_index))
        id_map[(a, b)] = edge_key(ou, ov)
    return graph, id_map


def _order_normalized(graph: WeightedGraph) -> WeightedGraph:
    """Replace weights by their rank index in the (weight, endpoints) order.

    A monotone transformation of the edge order, so the MSF is unchanged —
    but the resulting weights are distinct, which makes the MSF invariant
    under the vertex relabeling done by ternarization and contraction.
    """
    ordered = sorted(graph.edges(), key=lambda e: (e[2], e[0], e[1]))
    normalized = WeightedGraph(graph.num_vertices)
    for order_index, (u, v, _) in enumerate(ordered):
        normalized.add_edge(u, v, float(order_index))
    return normalized


@dataclass
class PreparedMSFTheory:
    """Algorithm 2 preprocessing: normalization, ternarization, staging.

    ``normalized`` is the rank-index-weighted copy both branches start
    from.  For inputs that are sparse at preparation time
    (``m < n^(1 + eps/2)``) the ternarized graph and its DHT-resident
    sorted adjacency are staged too — the Ternarize and SortGraph
    shuffles plus the KV-write round every query would otherwise repeat.
    Everything here is seed-independent, so one artifact serves all seeds.
    """

    normalized: WeightedGraph
    tern: Optional[object] = None
    #: placed ``(vertex, weight-sorted incident edges)`` records
    records: Optional[List] = None
    store: Optional[DHTStore] = None


def prepare_msf_theory(graph: WeightedGraph, *,
                       runtime: Optional[AMPCRuntime] = None,
                       config: Optional[ClusterConfig] = None,
                       seed: int = 0,
                       epsilon: float = 0.5) -> PreparedMSFTheory:
    """Normalize, ternarize (sparse inputs) and stage the sorted adjacency.

    ``seed`` is accepted for interface uniformity but unused — ranks only
    drive the searches, not the staged graph.  The sparse/dense branch is
    decided here with ``epsilon`` (the registry calls it with the
    default); a run whose epsilon flips the branch re-prepares inline.
    """
    del seed
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    normalized = _order_normalized(graph)
    n, m = graph.num_vertices, graph.num_edges
    if m == 0 or m >= n ** (1.0 + epsilon / 2.0):
        return PreparedMSFTheory(normalized=normalized)

    with metrics.phase("Ternarize"):
        # Normalize to distinct rank-index weights first: ternarization
        # renames vertices, which would otherwise perturb tie-breaking.
        tern = ternarize(normalized)
        # Ternarization itself is a sorting step: one shuffle.
        runtime.cluster.charge_shuffle(8 * tern.graph.num_vertices)
    with metrics.phase("SortGraph"):
        nodes = runtime.pipeline.from_items(
            [(v, _sorted_incident(tern.graph, v))
             for v in tern.graph.vertices()]
        )
        placed = nodes.repartition(lambda record: record[0],
                                   name="place-sorted-graph")
    with metrics.phase("KV-Write"):
        store = runtime.new_store("tprim-adjacency")
        runtime.write_store(placed, store,
                            key_fn=lambda record: record[0],
                            value_fn=lambda record: record[1])
    runtime.next_round()
    return PreparedMSFTheory(normalized=normalized, tern=tern,
                             records=placed.collect(), store=store)


def ampc_msf_theory(graph: WeightedGraph, *,
                    runtime: Optional[AMPCRuntime] = None,
                    config: Optional[ClusterConfig] = None,
                    seed: int = 0,
                    epsilon: float = 0.5,
                    in_memory_threshold: int = 256,
                    prepared: Optional[PreparedMSFTheory] = None) -> MSFResult:
    """Algorithm 2: the O(1)-round theory MSF.

    Sparse graphs (m < n^(1 + eps/2)) are ternarized and fed to Algorithm 1;
    the contracted remainder goes to the dense routine.  Dense graphs go to
    the dense routine directly.  A ``prepared`` artifact (from
    :func:`prepare_msf_theory`) skips the Ternarize/SortGraph shuffles and
    the KV-write round; an artifact staged for the other branch (epsilon
    mismatch) is discarded and preparation reruns inline.
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    n, m = graph.num_vertices, graph.num_edges
    if m == 0:
        return MSFResult(forest=[], metrics=metrics, rounds=0)
    sparse = m < n ** (1.0 + epsilon / 2.0)
    if prepared is None or (prepared.tern is not None) != sparse:
        # No artifact, or one staged for the other branch (a cached
        # default-epsilon preparation handed to a run whose epsilon flips
        # the sparse/dense decision): prepare inline so that the branch —
        # and therefore the metrics — always match a direct call.
        prepared = prepare_msf_theory(graph, runtime=runtime,
                                      epsilon=epsilon)
    rounds_before = metrics.rounds
    # Logical rounds count the staging round (executed or cache-served);
    # the dense branch stages nothing, so it contributes none.
    prep_rounds = 1 if prepared.tern is not None else 0

    if prepared.tern is not None:
        tern = prepared.tern
        t_graph = tern.graph
        budget = _default_budget(t_graph.num_vertices, epsilon)
        prim_edges, contracted, contracted_n = truncated_prim_round(
            t_graph, runtime=runtime, seed=seed, budget=budget,
            prepared_records=prepared.records,
            prepared_store=prepared.store,
        )
        dense_edges = _dense_msf(
            contracted, runtime=runtime, seed=seed + 1, epsilon=epsilon,
            in_memory_threshold=in_memory_threshold,
        )
        ternarized_forest = set(prim_edges) | set(dense_edges)
        forest = sorted(set(tern.project_edges(ternarized_forest)))
        return MSFResult(forest=forest, metrics=metrics,
                         rounds=metrics.rounds - rounds_before + prep_rounds,
                         contracted_vertices=contracted_n,
                         prim_edges=len(prim_edges))

    records = [
        (w, u, v, u, v) for u, v, w in prepared.normalized.edges()
    ]
    forest = sorted(set(_dense_msf(
        records, runtime=runtime, seed=seed, epsilon=epsilon,
        in_memory_threshold=in_memory_threshold,
    )))
    return MSFResult(forest=forest, metrics=metrics,
                     rounds=metrics.rounds - rounds_before + prep_rounds)


# ---------------------------------------------------------------------------
# Registry spec (the Session/CLI entry point)
# ---------------------------------------------------------------------------


def _forest_weight(result: MSFResult, graph: WeightedGraph) -> float:
    return sum(graph.weight(u, v) for u, v in result.forest)


def _summarize(result: MSFResult, graph: WeightedGraph) -> Dict[str, float]:
    return {
        "output_size": len(result.forest),
        "weight": _forest_weight(result, graph),
        "prim_edges": result.prim_edges,
        "contracted_vertices": result.contracted_vertices,
        "max_pointer_depth": result.max_pointer_depth,
        "rounds": result.rounds,
    }


def _describe(result: MSFResult, graph: WeightedGraph, params) -> str:
    return (f"minimum spanning forest: {len(result.forest)} edges, "
            f"weight {_forest_weight(result, graph):g}")


register_algorithm(AlgorithmSpec(
    name="msf",
    summary="minimum spanning forest",
    input_kind="weighted",
    run=ampc_msf,
    prepare=prepare_msf,
    update=update_msf,
    summarize=_summarize,
    describe=_describe,
    params=(
        ParamSpec("epsilon", float, 0.5,
                  "exploration-budget exponent (budget = n^(epsilon/2))"),
        ParamSpec("search_budget", int, None,
                  "explicit per-search exploration budget (overrides "
                  "epsilon)"),
    ),
    prep_seed_sensitive=False,  # weight-sorted adjacency ignores the seed
))


def _describe_theory(result: MSFResult, graph: WeightedGraph, params) -> str:
    return (f"minimum spanning forest (Algorithm 2): "
            f"{len(result.forest)} edges, "
            f"weight {_forest_weight(result, graph):g}")


register_algorithm(AlgorithmSpec(
    name="msf-theory",
    summary="minimum spanning forest, Algorithm 2 theory pipeline",
    input_kind="weighted",
    run=ampc_msf_theory,
    prepare=prepare_msf_theory,
    summarize=_summarize,
    describe=_describe_theory,
    params=(
        ParamSpec("epsilon", float, 0.5,
                  "exploration-budget exponent (budget = n^(epsilon/2))"),
        ParamSpec("in_memory_threshold", int, 256,
                  "edge count below which the dense routine finishes on "
                  "one machine"),
    ),
    prep_seed_sensitive=False,  # normalization/ternarization ignore the seed
))
