"""Regression tests: journal_limit survives copy/subgraph/from_graph.

A copy of a journal-disabled (``journal_limit=0``) graph used to silently
re-enable the default journal and start accruing memory; derived graphs
now inherit the setting.
"""

import pytest

from repro.graph.graph import DEFAULT_JOURNAL_LIMIT, Graph, WeightedGraph


def _triangle():
    graph = Graph(4)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(0, 2)
    return graph


def _weighted_triangle():
    graph = WeightedGraph(4)
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(1, 2, 2.0)
    graph.add_edge(0, 2, 3.0)
    return graph


class TestJournalLimitPropagation:
    def test_graph_copy_preserves_disabled_journal(self):
        graph = _triangle()
        graph.journal_limit = 0
        clone = graph.copy()
        assert clone.journal_limit == 0
        clone.add_edge(2, 3)
        assert clone._journal == []

    def test_graph_copy_preserves_custom_limit(self):
        graph = _triangle()
        graph.journal_limit = 7
        assert graph.copy().journal_limit == 7

    def test_graph_copy_default_limit_unchanged(self):
        assert _triangle().copy().journal_limit == DEFAULT_JOURNAL_LIMIT

    def test_weighted_copy_preserves_disabled_journal(self):
        graph = _weighted_triangle()
        graph.journal_limit = 0
        clone = graph.copy()
        assert clone.journal_limit == 0
        clone.add_edge(2, 3, 4.0)
        assert clone._journal == []

    def test_subgraph_inherits_limit(self):
        graph = _triangle()
        graph.journal_limit = 0
        sub, _relabel = graph.subgraph([0, 1, 2])
        assert sub.journal_limit == 0

    def test_from_graph_inherits_limit(self):
        graph = _triangle()
        graph.journal_limit = 0
        weighted = WeightedGraph.from_graph(graph)
        assert weighted.journal_limit == 0

    def test_unweighted_inherits_limit(self):
        graph = _weighted_triangle()
        graph.journal_limit = 3
        assert graph.unweighted().journal_limit == 3

    def test_subgraph_edges_inherits_limit(self):
        graph = _weighted_triangle()
        graph.journal_limit = 0
        sub = graph.subgraph_edges([(0, 1)])
        assert sub.journal_limit == 0


class TestSubgraphValidation:
    def test_out_of_range_vertex_gets_descriptive_error(self):
        graph = _triangle()
        with pytest.raises(IndexError, match=r"vertex 9 out of range \[0, 4\)"):
            graph.subgraph([0, 9])

    def test_negative_vertex_rejected(self):
        graph = _triangle()
        with pytest.raises(IndexError, match="out of range"):
            graph.subgraph([-1, 1])

    def test_empty_selection_ok(self):
        sub, relabel = _triangle().subgraph([])
        assert sub.num_vertices == 0
        assert relabel == {}

    def test_valid_subgraph_still_works(self):
        sub, relabel = _triangle().subgraph([0, 1, 2])
        assert sub.num_edges == 3
        assert relabel == {0: 0, 1: 1, 2: 2}
