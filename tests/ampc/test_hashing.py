"""Tests for the stable placement hash.

The regression these pin down: ``DHTStore.shard_of`` and
``Cluster.machine_for`` used Python's builtin ``hash``, which is salted
per interpreter process for strings — so string-keyed placements (and the
shard-contention metrics derived from them) differed across runs.
"""

import subprocess
import sys

from repro.ampc.cluster import Cluster, ClusterConfig
from repro.ampc.dht import DHTStore
from repro.ampc.hashing import stable_hash

KEYS = ["alpha", "beta", ("edge", 3, 4), 17, -5, 2 ** 80, 3.25, None,
        b"raw", frozenset({1, 2})]


class TestStableHash:
    def test_deterministic_within_a_run(self):
        assert [stable_hash(k) for k in KEYS] == [stable_hash(k) for k in KEYS]

    def test_distinct_keys_scatter(self):
        values = {stable_hash(k) for k in KEYS}
        assert len(values) == len(KEYS)

    def test_equal_numeric_keys_hash_equally(self):
        # Dict-backed shards treat True == 1 == 1.0 as one key, so the
        # placement hash must agree (the builtin hash contract).
        assert stable_hash(True) == stable_hash(1) == stable_hash(1.0)
        assert stable_hash(0.0) == stable_hash(-0.0) == stable_hash(0)
        assert stable_hash(2.0 ** 70) == stable_hash(2 ** 70)
        assert stable_hash(3.25) != stable_hash(3)

    def test_64_bit_range(self):
        for key in KEYS:
            assert 0 <= stable_hash(key) < 2 ** 64

    def test_stable_across_interpreter_processes(self):
        """The actual regression: values must not depend on PYTHONHASHSEED."""
        script = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro.ampc.hashing import stable_hash; "
            "print([stable_hash(k) for k in "
            "['alpha', 'beta', ('edge', 3, 4), 17, None]])"
        )
        outputs = set()
        for hash_seed in ("1", "2"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, timeout=120,
                cwd=__file__.rsplit("/tests/", 1)[0],
                env={"PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin"},
            )
            assert result.returncode == 0, result.stderr
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1, "placement hash depends on the salt"


class TestPlacementUsesStableHash:
    def test_shard_of(self):
        store = DHTStore("t", num_shards=7)
        for key in KEYS:
            assert store.shard_of(key) == stable_hash(key) % 7

    def test_machine_for(self):
        cluster = Cluster(ClusterConfig(num_machines=5))
        for key in KEYS:
            assert cluster.machine_for(key) == stable_hash(key) % 5
