"""DHTStore-compatible adapters over a real :class:`BackingStore`.

:class:`BackedDHTStore` subclasses the simulated
:class:`~repro.ampc.dht.DHTStore` and keeps **all cost-model accounting
at the adapter boundary**: the same ``shard_of`` placement, the same
write-time :func:`~repro.ampc.cost_model.estimate_bytes` charge, the same
per-shard ``shard_reads`` counters, the same strict-round checks, and the
same partial-commit semantics when a bulk write fails mid-batch.  Only
the physical storage differs — values are pickled into records (see
:mod:`repro.distdht.backing`) and live in shared memory or on DHT nodes
instead of an in-process dict.  A run on a backed store therefore reports
**byte-identical simulated metrics** to the same run on a simulated
store; the golden-metrics suite is parametrized over backends to prove
it.

Each store claims a unique byte-key *namespace* inside its backing store
(pid + counter, so any number of worker processes can share one socket
cluster without key collisions), and registers a finalizer that drops the
namespace when the store object is garbage-collected — cache eviction in
the Session automatically frees the backing-store records it addressed.

The one observable difference from the simulated store: values round-trip
through pickle, so a lookup returns a *copy* of the written object rather
than the object itself.  Sealed-store discipline (write, seal, then read)
makes that invisible to well-behaved specs — the conformance suite
verifies every registered spec is one.
"""

from __future__ import annotations

import itertools
import os
import weakref
from typing import Any, Iterable, List, Optional, Tuple

from repro.ampc.cost_model import estimate_bytes
from repro.ampc.dht import DerivedDHTStore, DHTStore, StoreSealedError
from repro.distdht.backing import (
    TOMBSTONE,
    BackingStore,
    decode_record,
    encode_key,
    encode_record,
)

_NS_COUNTER = itertools.count()


def _fresh_namespace(name: str) -> bytes:
    """A byte-key prefix no other store (in any process) is using.

    The pid + per-process counter pair is unique across every process
    sharing one backing store (the multi-worker socket-cluster case); the
    store name rides along for debuggability of raw scans.
    """
    return f"s{os.getpid():x}.{next(_NS_COUNTER):x}|{name}|".encode("ascii")


def _release_namespace(backing: BackingStore, namespace: bytes) -> None:
    try:
        backing.delete_prefix(namespace)
    except Exception:  # noqa: BLE001 - backing may already be closed/gone
        pass


class BackedDHTStore(DHTStore):
    """A :class:`DHTStore` whose values physically live in a backing store.

    The per-shard ``_sizes`` index (write-time estimated sizes) stays in
    the owning process — it *is* the accounting state and is what the
    simulated store keeps too — while the pickled values go to the
    backing.  Each record also embeds its recorded size, so a record
    fetched by locator in another process carries its own charge.
    """

    def __init__(self, name: str, num_shards: int, *,
                 backing: BackingStore, strict_rounds: bool = False):
        super().__init__(name, num_shards, strict_rounds=strict_rounds)
        self._backing = backing
        self._ns = _fresh_namespace(name)
        # Free the namespace when the store object dies: Session cache
        # eviction then reclaims the backing-store records automatically.
        self._ns_finalizer = weakref.finalize(
            self, _release_namespace, backing, self._ns)

    @property
    def backing(self) -> BackingStore:
        return self._backing

    def _key_bytes(self, key: Any) -> bytes:
        return self._ns + encode_key(key)

    def repair(self):
        """Anti-entropy sweep of this store's namespace.

        Converges the backing replicas for every record this store
        wrote; a no-op (returns None) on single-copy backings (sim /
        mem / shm), a :class:`~repro.distdht.repair.RepairReport` on
        the socket backend.  Pure backing-level traffic — simulated
        metrics are unaffected.
        """
        repair = getattr(self._backing, "repair", None)
        if repair is None:
            return None
        return repair(self._ns)

    # -- writes (accounting identical to DHTStore.write/write_many) ------

    def write(self, key: Any, value: Any) -> int:
        if self.sealed:
            raise StoreSealedError(f"store {self.name!r} is sealed")
        shard_index = self.shard_of(key)
        sizes = self._sizes[shard_index]
        value_bytes = estimate_bytes(value)
        replaced = sizes.get(key)
        if replaced is None:
            self.total_entries += 1
            self.total_value_bytes += value_bytes
        else:
            self.total_value_bytes += value_bytes - replaced
        self._backing.put(self._key_bytes(key),
                          encode_record(value, value_bytes))
        sizes[key] = value_bytes
        return value_bytes

    def write_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        if self.sealed:
            raise StoreSealedError(f"store {self.name!r} is sealed")
        shard_of = self.shard_of
        size_shards = self._sizes
        key_bytes = self._key_bytes
        batch: List[Tuple[bytes, bytes]] = []
        total = 0
        entries_added = 0
        bytes_delta = 0
        try:
            for key, value in items:
                # Size first, as in the simulated store: an inestimable
                # value raises before this item mutates anything, and the
                # finally block commits the completed items — accounting
                # and physical records stay in lockstep.
                value_bytes = estimate_bytes(value)
                shard_index = shard_of(key)
                sizes = size_shards[shard_index]
                replaced = sizes.get(key)
                if replaced is None:
                    entries_added += 1
                    bytes_delta += value_bytes
                else:
                    bytes_delta += value_bytes - replaced
                sizes[key] = value_bytes
                batch.append((key_bytes(key),
                              encode_record(value, value_bytes)))
                total += value_bytes
        finally:
            self.total_entries += entries_added
            self.total_value_bytes += bytes_delta
            if batch:
                self._backing.put_many(batch)
        return total

    write_all = write_many

    # -- reads (charging identical to DHTStore) ---------------------------

    def _fetch_value(self, key: Any) -> Any:
        record = self._backing.get(self._key_bytes(key))
        if record is None:
            raise KeyError(
                f"store {self.name!r}: record for {key!r} vanished from "
                f"the {self._backing.kind} backing store")
        entry = decode_record(record)
        assert entry is not None, "live index entry points at a tombstone"
        return entry[0]

    def lookup(self, key: Any) -> Any:
        if self._strict_rounds and not self.sealed:
            raise StoreSealedError(
                f"store {self.name!r} is still being written this round"
            )
        shard_index = self.shard_of(key)
        self.shard_reads[shard_index] += 1
        if key not in self._sizes[shard_index]:
            return None
        return self._fetch_value(key)

    def lookup_with_size(self, key: Any) -> Tuple[Any, int]:
        if self._strict_rounds and not self.sealed:
            raise StoreSealedError(
                f"store {self.name!r} is still being written this round"
            )
        shard_index = self.shard_of(key)
        self.shard_reads[shard_index] += 1
        size = self._sizes[shard_index].get(key)
        if size is None:
            return None, 0
        return self._fetch_value(key), size

    def lookup_many(self, keys: Iterable[Any]) -> Tuple[List[Any], int]:
        if self._strict_rounds and not self.sealed:
            raise StoreSealedError(
                f"store {self.name!r} is still being written this round"
            )
        shard_of = self.shard_of
        size_shards = self._sizes
        shard_reads = self.shard_reads
        # First pass: routing + read/byte accounting, exactly the
        # simulated store's loop; hits are fetched in one batched round
        # trip afterwards (the accounting never sees the difference).
        order: List[Any] = []
        hits: List[int] = []
        total = 0
        for key in keys:
            shard_index = shard_of(key)
            shard_reads[shard_index] += 1
            size = size_shards[shard_index].get(key)
            if size is None:
                order.append(None)
            else:
                hits.append(len(order))
                order.append(key)
                total += size
        if hits:
            records = self._backing.get_many(
                [self._key_bytes(order[index]) for index in hits])
            for index, record in zip(hits, records):
                if record is None:
                    raise KeyError(
                        f"store {self.name!r}: record for {order[index]!r} "
                        f"vanished from the {self._backing.kind} backing "
                        "store")
                order[index] = decode_record(record)[0]
        return order, total

    def contains(self, key: Any) -> bool:
        if self._strict_rounds and not self.sealed:
            raise StoreSealedError(
                f"store {self.name!r} is still being written this round"
            )
        shard_index = self.shard_of(key)
        self.shard_reads[shard_index] += 1
        return key in self._sizes[shard_index]

    # -- derivation / folding ---------------------------------------------

    def _entry(self, key: Any, shard_index: int) -> Optional[Tuple[Any, int]]:
        size = self._sizes[shard_index].get(key)
        if size is None:
            return None
        return self._fetch_value(key), size

    def _spawn_sibling(self, name: str) -> "BackedDHTStore":
        return BackedDHTStore(name, self.num_shards, backing=self._backing,
                              strict_rounds=self._strict_rounds)

    def _install(self, key: Any, value: Any, size: int) -> None:
        shard_index = self.shard_of(key)
        self._backing.put(self._key_bytes(key), encode_record(value, size))
        self._sizes[shard_index][key] = size
        self.total_entries += 1
        self.total_value_bytes += size

    # -- introspection ----------------------------------------------------

    def keys(self) -> List[Any]:
        result: List[Any] = []
        for sizes in self._sizes:
            result.extend(sizes.keys())
        return result

    def cache_resident_bytes(self) -> int:
        # Remote backings hold the payload elsewhere — only the local
        # size index occupies this process; shm payload is host RAM and
        # counts in full, like the simulated store.
        if self._backing.remote:
            return 16 * self.total_entries
        return self.total_value_bytes + 8 * self.total_entries

    def release(self) -> None:
        """Drop this store's records from the backing store now."""
        self._ns_finalizer()

    def __repr__(self) -> str:
        return (
            f"BackedDHTStore({self.name!r}, backing={self._backing.kind}, "
            f"entries={self.total_entries}, sealed={self.sealed})"
        )


class BackedDerivedDHTStore(DerivedDHTStore):
    """Copy-on-write overlay over a sealed backed parent.

    Accounting mirrors :class:`~repro.ampc.dht.DerivedDHTStore` exactly
    (overlay deltas against the parent's memoized sizes); the overlay's
    values — and explicit tombstone records for shadow-deletes, keeping
    the backing's raw view self-describing — live under this store's own
    namespace in the same backing store as the parent.
    """

    def __init__(self, name: str, parent: DHTStore):
        backing = getattr(parent, "_backing", None)
        if backing is None:
            raise TypeError(
                "BackedDerivedDHTStore needs a backed parent, got "
                f"{type(parent).__name__}")
        super().__init__(name, parent)
        self._backing: BackingStore = backing
        self._ns = _fresh_namespace(name)
        self._ns_finalizer = weakref.finalize(
            self, _release_namespace, backing, self._ns)

    backing = BackedDHTStore.backing
    _key_bytes = BackedDHTStore._key_bytes
    _fetch_value = BackedDHTStore._fetch_value
    _spawn_sibling = BackedDHTStore._spawn_sibling
    _install = BackedDHTStore._install
    cache_resident_bytes = BackedDHTStore.cache_resident_bytes
    release = BackedDHTStore.release
    repair = BackedDHTStore.repair

    # -- resolution (reads are inherited: they go through _entry) ---------

    def _entry(self, key: Any, shard_index: int) -> Optional[Tuple[Any, int]]:
        if key in self._deleted[shard_index]:
            return None
        size = self._sizes[shard_index].get(key)
        if size is not None:
            return self._fetch_value(key), size
        return self.parent._entry(key, shard_index)

    # -- writes (accounting identical to DerivedDHTStore) -----------------

    def write(self, key: Any, value: Any) -> int:
        if self.sealed:
            raise StoreSealedError(f"store {self.name!r} is sealed")
        shard_index = self.shard_of(key)
        value_bytes = estimate_bytes(value)
        sizes = self._sizes[shard_index]
        replaced = sizes.get(key)
        if replaced is not None:
            self.total_value_bytes += value_bytes - replaced
        else:
            deleted = self._deleted[shard_index]
            if key in deleted:
                deleted.discard(key)
                self.total_entries += 1
                self.total_value_bytes += value_bytes
            else:
                shadowed = self.parent._entry(key, shard_index)
                if shadowed is None:
                    self.total_entries += 1
                    self.total_value_bytes += value_bytes
                else:
                    self.total_value_bytes += value_bytes - shadowed[1]
        self._backing.put(self._key_bytes(key),
                          encode_record(value, value_bytes))
        sizes[key] = value_bytes
        return value_bytes

    def write_many(self, items: Iterable[Tuple[Any, Any]]) -> int:
        if self.sealed:
            raise StoreSealedError(f"store {self.name!r} is sealed")
        write = self.write
        return sum(write(key, value) for key, value in items)

    write_all = write_many

    def delete(self, key: Any) -> bool:
        if self.sealed:
            raise StoreSealedError(f"store {self.name!r} is sealed")
        shard_index = self.shard_of(key)
        removed = self._sizes[shard_index].pop(key, None)
        if removed is not None:
            self.total_entries -= 1
            self.total_value_bytes -= removed
            if self.parent._entry(key, shard_index) is not None:
                self._deleted[shard_index].add(key)
                self._backing.put(self._key_bytes(key), TOMBSTONE)
            else:
                self._backing.delete(self._key_bytes(key))
            return True
        if key in self._deleted[shard_index]:
            return False
        shadowed = self.parent._entry(key, shard_index)
        if shadowed is None:
            return False
        self._deleted[shard_index].add(key)
        self._backing.put(self._key_bytes(key), TOMBSTONE)
        self.total_entries -= 1
        self.total_value_bytes -= shadowed[1]
        return True

    # -- introspection ----------------------------------------------------

    def keys(self) -> List[Any]:
        result: List[Any] = []
        for sizes in self._sizes:
            result.extend(sizes.keys())
        for key in self.parent.keys():
            shard_index = self.shard_of(key)
            if (key not in self._sizes[shard_index]
                    and key not in self._deleted[shard_index]):
                result.append(key)
        return result

    def __repr__(self) -> str:
        return (
            f"BackedDerivedDHTStore({self.name!r}, "
            f"backing={self._backing.kind}, entries={self.total_entries}, "
            f"parent={self.parent.name!r}, sealed={self.sealed})"
        )


# derive() on a backed store yields a backed child (same backing store)
BackedDHTStore._derived_class = BackedDerivedDHTStore
BackedDerivedDHTStore._derived_class = BackedDerivedDHTStore
