"""Figure 7 — running-time breakdown, AMPC vs MPC Minimum Spanning Forest.

Per dataset: the AMPC MSF time broken into SortGraph / KV-Write /
PrimSearch / PointerJump / Contract, next to Boruvka.  Headline shapes:
AMPC always faster (paper: 2.6-7.19x; the MPC run on HL did not finish in
4 hours); *contraction dominates* the AMPC time (unlike MIS/MM); pointer
jumping takes ~10% and its chains are shallow (paper max 33).

Paper wall-clock annotations (seconds): OK 316.8/831, TW 519.9/3444,
FS 688.9/4959, CW 4617/13860, HL 9724/DNF.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_DATASETS, run_once
from repro.analysis.experiment import run_ampc_msf, run_mpc_boruvka
from repro.analysis.reporting import Table

PAPER_TIMES = {
    "OK-S": (316.8, 831.0),
    "TW-S": (519.9, 3444.0),
    "FS-S": (688.9, 4959.0),
    "CW-S": (4617.0, 13860.0),
    "HL-S": (9724.0, None),  # MPC did not finish within 4 hours
}

AMPC_PHASES = ["SortGraph", "KV-Write", "PrimSearch", "PointerJump",
               "Contract"]


def test_fig7_msf_running_times(benchmark, weighted_datasets):
    def compute():
        rows = {}
        for ds in BENCH_DATASETS:
            graph = weighted_datasets[ds]
            rows[ds] = (run_ampc_msf(graph), run_mpc_boruvka(graph))
        return rows

    rows = run_once(benchmark, compute)

    table = Table(
        "Figure 7: MSF simulated running times (AMPC 5-phase breakdown)",
        ["Dataset"] + AMPC_PHASES
        + ["AMPC total", "MPC total", "Speedup", "paper speedup"],
    )
    for ds in BENCH_DATASETS:
        ampc, mpc = rows[ds]
        phases = ampc["phase_breakdown"]
        speedup = mpc["simulated_time_s"] / ampc["simulated_time_s"]
        paper_ampc, paper_mpc = PAPER_TIMES[ds]
        paper_speedup = (
            f"{paper_mpc / paper_ampc:.2f}x" if paper_mpc else "DNF"
        )
        table.add_row(
            ds,
            *[f"{phases.get(phase, 0):.2f}s" for phase in AMPC_PHASES],
            f"{ampc['simulated_time_s']:.2f}s",
            f"{mpc['simulated_time_s']:.2f}s",
            f"{speedup:.2f}x",
            paper_speedup,
        )
    table.show()

    for ds in BENCH_DATASETS:
        ampc, mpc = rows[ds]
        phases = ampc["phase_breakdown"]
        # AMPC always faster.
        assert ampc["simulated_time_s"] < mpc["simulated_time_s"]
        # Contraction is the largest AMPC phase (Section 5.5).
        contract = phases.get("Contract", 0)
        for phase in ("KV-Write", "PrimSearch", "PointerJump"):
            assert contract > phases.get(phase, 0)
        # Pointer chains stay shallow (the paper observed max 33).
        assert ampc["max_pointer_depth"] <= 40
        # Same forest size.
        assert ampc["output_size"] == mpc["output_size"]
