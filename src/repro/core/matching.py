"""AMPC Maximal Matching (Section 4 / Section 5.4).

Two algorithms, both computing the lexicographically-first maximal matching
for hashed edge ranks (so they agree with each other and with the
sequential greedy reference):

* :func:`ampc_maximal_matching` — Theorem 2 part 2 as the paper implements
  it (Section 5.4): one shuffle builds the *edge-permuted graph* (each
  vertex's incident edges sorted by rank), it is written to the DHT, and a
  per-vertex query process resolves edges adaptively.  The per-machine
  cache stores one entry per **vertex** — either its matched partner or
  the highest-rank incident edge already known unmatched — exactly the
  cache the paper describes.  An optional per-search budget runs the
  multi-round vertex-truncated theory schedule.

* :func:`ampc_matching_phases` — Theorem 2 part 1 (Algorithm 4): peel
  O(log log Delta) levels; at each level run GreedyMM on the rank-sampled
  subgraph ``H_i`` (equivalently, MIS on its line graph — Proposition 4.2)
  and drop matched vertices.  The rank threshold ``Delta^{-0.5^i}`` knocks
  the maximum degree down to ``O(sqrt(Delta_i) log n)`` per Lemma 4.4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.dht import DHTStore
from repro.ampc.metrics import Metrics
from repro.ampc.runtime import AMPCRuntime
from repro.api.incremental import patch_records, touched_vertices
from repro.api.registry import AlgorithmSpec, ParamSpec, register_algorithm
from repro.core.ranks import hash_rank
from repro.dataflow.dofn import DoFn, MachineContext
from repro.graph.graph import Graph, edge_key

EdgeId = Tuple[int, int]

#: vertex cache states (the per-vertex cache of Section 5.4)
_MATCHED = "matched"
_SEARCHED = "searched"

_PARKED = object()


@dataclass
class MatchingResult:
    """Output of an AMPC maximal matching run."""

    matching: Set[EdgeId]
    metrics: Metrics
    rounds: int = 0
    #: Algorithm 4 only: matchings found per peeling level
    level_sizes: List[int] = field(default_factory=list)


def _edge_rank(seed: int, u: int, v: int) -> float:
    a, b = edge_key(u, v)
    return hash_rank(seed, a, b)


def _edge_order(seed: int, u: int, v: int) -> Tuple[float, int, int]:
    """Strict total order on edges: rank, then canonical endpoints."""
    a, b = edge_key(u, v)
    return (hash_rank(seed, a, b), a, b)


def _permuted_incident(vertex: int, neighbors: Sequence[int],
                       seed: int) -> Tuple[Tuple[float, int], ...]:
    """Incident edges of ``vertex`` as (rank, neighbor), rank-ascending."""
    incident = [(_edge_rank(seed, vertex, u), u) for u in neighbors]
    incident.sort(key=lambda pair: (pair[0],) + edge_key(vertex, pair[1]))
    return tuple(incident)


class _IsInMM(DoFn):
    """The vertex query process of Theorem 2 part 2.

    For each vertex, walk its incident edges in rank order; each edge is
    resolved by the recursive edge process (an edge joins the matching iff
    no lower-rank incident edge does).  Stops at the first matched edge.
    """

    def __init__(self, store: DHTStore, seed: int, *,
                 resolved_store: Optional[DHTStore] = None,
                 budget: Optional[int] = None):
        self._store = store
        self._seed = seed
        self._resolved_store = resolved_store
        self._budget = budget
        self._cache: Optional[Dict[int, tuple]] = None

    def start_machine(self, ctx: MachineContext) -> None:
        self._cache = {} if ctx.caching_enabled else None

    def process(self, element, ctx):
        vertex, incident = element
        outcome = self._vertex_search(vertex, incident, ctx)
        if outcome is _PARKED:
            yield ("parked", vertex, incident)
        elif outcome is not None:
            # Each matched edge is reported by both endpoints; the driver's
            # result set deduplicates.
            yield ("matched", vertex, outcome)

    # -- vertex state ------------------------------------------------------

    def _vertex_state(self, vertex: int, ctx: MachineContext):
        if self._cache is not None and vertex in self._cache:
            ctx.note_cache_hit()
            return self._cache[vertex]
        if self._resolved_store is not None:
            state = ctx.lookup(self._resolved_store, vertex)
            if state is not None:
                state = tuple(state)
                if self._cache is not None:
                    self._cache[vertex] = state
                return state
        return None

    def _set_matched(self, u: int, v: int, rank: float) -> None:
        if self._cache is not None:
            self._cache[u] = (_MATCHED, v, rank)
            self._cache[v] = (_MATCHED, u, rank)

    def _raise_searched(self, vertex: int, rank: float) -> None:
        """Record: every edge of ``vertex`` with rank <= ``rank`` is out."""
        if self._cache is None:
            return
        state = self._cache.get(vertex)
        if state is not None and state[0] == _MATCHED:
            return
        if state is None or state[1] < rank:
            self._cache[vertex] = (_SEARCHED, rank)

    def _edge_status_from_states(self, rank: float, a: int, b: int,
                                 ctx: MachineContext) -> Optional[bool]:
        """Resolve edge (a, b) from vertex states alone, if possible."""
        for x, y in ((a, b), (b, a)):
            state = self._vertex_state(x, ctx)
            if state is None:
                continue
            if state[0] == _MATCHED:
                return state[1] == y and state[2] == rank
            if state[0] == _SEARCHED and rank <= state[1]:
                return False
        return None

    # -- the edge query process (iterative recursion) -----------------------

    def _fetch_incident_pair(self, a: int, b: int, ctx: MachineContext,
                             counter):
        """Both endpoints' incident lists in one batched KV read.

        The edge process always needs both lists before it can merge the
        lower-rank edges, so the two keys are known up front — the
        batching seam of Section 5.3.  Charges (reads, bytes, budget
        counter) are identical to two single ``ctx.lookup`` calls.
        """
        counter[0] += 2
        incident_a, incident_b = ctx.lookup_many(self._store, (a, b))
        return incident_a or (), incident_b or ()

    def _lower_incident(self, rank: float, a: int, b: int,
                        incident_a, incident_b) -> List[Tuple[float, int, int]]:
        """Incident edges of a and b with order below edge (a, b), merged
        ascending by the global edge order."""
        me = _edge_order(self._seed, a, b)
        merged = []
        for endpoint, incident in ((a, incident_a), (b, incident_b)):
            for r, u in incident:
                edge = edge_key(endpoint, u)
                order = (r,) + edge
                if order < me:
                    merged.append((order, endpoint, u))
                else:
                    # Incident lists are rank-sorted: everything after is
                    # above this edge.
                    break
        merged.sort()
        seen = set()
        result = []
        for order, x, y in merged:
            edge = edge_key(x, y)
            if edge not in seen:
                seen.add(edge)
                result.append((order[0], x, y))
        return result

    def _resolve_edge(self, rank: float, a: int, b: int,
                      ctx: MachineContext, counter) -> object:
        """True if edge (a, b) is in the matching; _PARKED on budget."""
        known = self._edge_status_from_states(rank, a, b, ctx)
        if known is not None:
            return known
        # Frame: [rank, a, b, lower_edges, index]
        incident_a, incident_b = self._fetch_incident_pair(a, b, ctx, counter)
        frames = [[rank, a, b,
                   self._lower_incident(rank, a, b, incident_a, incident_b), 0]]
        returning: Optional[bool] = None
        while frames:
            if self._budget is not None and counter[0] > self._budget:
                return _PARKED
            frame = frames[-1]
            erank, ea, eb, lower, index = frame
            if returning is not None:
                child_in, returning = returning, None
                if child_in:
                    frames.pop()
                    returning = False
                    continue
                index += 1
                frame[4] = index
            descended = False
            while index < len(lower):
                crank, ca, cb = lower[index]
                known = self._edge_status_from_states(crank, ca, cb, ctx)
                if known is True:
                    frames.pop()
                    returning = False
                    descended = True
                    break
                if known is False:
                    index += 1
                    frame[4] = index
                    continue
                if self._budget is not None and counter[0] > self._budget:
                    return _PARKED
                child_a, child_b = self._fetch_incident_pair(ca, cb, ctx,
                                                             counter)
                frames.append([crank, ca, cb,
                               self._lower_incident(crank, ca, cb,
                                                    child_a, child_b), 0])
                descended = True
                break
            if descended:
                continue
            # No lower-rank incident edge in the matching: this edge joins.
            self._set_matched(ea, eb, erank)
            frames.pop()
            returning = True
        return returning

    # -- the vertex process --------------------------------------------------

    def _vertex_search(self, vertex: int, incident, ctx: MachineContext):
        """Matched edge of ``vertex`` or None; _PARKED on budget."""
        state = self._vertex_state(vertex, ctx)
        if state is not None:
            if state[0] == _MATCHED:
                return edge_key(vertex, state[1])
            if state[0] == _SEARCHED and state[1] >= 1.0:
                return None
        counter = [0]
        for rank, neighbor in incident:
            status = self._resolve_edge(rank, vertex, neighbor, ctx, counter)
            if status is _PARKED:
                return _PARKED
            if status:
                return edge_key(vertex, neighbor)
            self._raise_searched(vertex, rank)
        self._raise_searched(vertex, 1.0)
        return None


@dataclass
class PreparedMatching:
    """The DHT-resident edge-permuted graph (Section 5.4 preprocessing)."""

    seed: int
    #: ``(vertex, rank-sorted incident edges)`` records
    records: List[Tuple[int, Tuple[Tuple[float, int], ...]]]
    store: DHTStore


def prepare_matching(graph: Graph, *,
                     runtime: Optional[AMPCRuntime] = None,
                     config: Optional[ClusterConfig] = None,
                     seed: int = 0) -> PreparedMatching:
    """The matching preprocessing: permute edges by rank, write to the DHT.

    One shuffle plus the KV-write round — cacheable across runs.
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics

    # Round 1: the one shuffle — the edge-permuted (rank-sorted) graph.
    with metrics.phase("PermuteGraph"):
        nodes = runtime.pipeline.from_items(
            [(v, graph.neighbors(v)) for v in graph.vertices()]
        )
        permuted = nodes.map_elements(
            lambda record: (record[0],
                            _permuted_incident(record[0], record[1], seed)),
            name="permute-edges",
        )
        permuted = permuted.repartition(lambda record: record[0],
                                        name="place-permuted-graph")

    with metrics.phase("KV-Write"):
        store = runtime.new_store("mm-permuted-graph")
        runtime.write_store(permuted, store,
                            key_fn=lambda record: record[0],
                            value_fn=lambda record: record[1])
    runtime.next_round()
    return PreparedMatching(seed=seed, records=permuted.collect(),
                            store=store)


def update_matching(prepared: PreparedMatching, graph: Graph, *,
                    runtime: Optional[AMPCRuntime] = None,
                    config: Optional[ClusterConfig] = None,
                    seed: int = 0,
                    insertions=(), deletions=()) -> PreparedMatching:
    """Patch the DHT-resident edge-permuted graph after an edge batch.

    Edge ranks are a pure function of the endpoints and seed, so only the
    batch endpoints' rank-sorted incident lists change; they are rewritten
    into a derived copy-on-write child of the sealed store in O(batch).
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    if prepared.seed != seed:
        raise ValueError(
            f"prepared input was built for seed {prepared.seed}, "
            f"this update uses seed {seed}"
        )
    metrics = runtime.metrics
    touched = touched_vertices(insertions, deletions)
    with metrics.phase("PatchPermutedGraph"):
        patch = runtime.pipeline.from_items(
            [(v, _permuted_incident(v, graph.neighbors(v), seed))
             for v in touched]
        ).repartition(lambda record: record[0], name="place-permuted-patch")
    with metrics.phase("KV-Patch"):
        store = runtime.derive_store(prepared.store)
        runtime.write_store(patch, store,
                            key_fn=lambda record: record[0],
                            value_fn=lambda record: record[1])
    runtime.next_round()
    return PreparedMatching(seed=seed,
                            records=patch_records(prepared.records,
                                                  patch.collect()),
                            store=store)


def ampc_maximal_matching(graph: Graph, *,
                          runtime: Optional[AMPCRuntime] = None,
                          config: Optional[ClusterConfig] = None,
                          seed: int = 0,
                          search_budget: Optional[int] = None,
                          max_rounds: int = 64,
                          prepared: Optional[PreparedMatching] = None
                          ) -> MatchingResult:
    """Theorem 2 part 2: O(1)-round maximal matching via vertex searches.

    Without ``search_budget`` this is the 2-round practical implementation
    of Section 5.4; with it, the n^epsilon-truncated multi-round schedule.
    A ``prepared`` artifact (from :func:`prepare_matching`) skips the
    preprocessing shuffle and KV-write.
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    if prepared is None:
        prepared = prepare_matching(graph, runtime=runtime, seed=seed)
    elif prepared.seed != seed:
        raise ValueError(
            f"prepared input was built for seed {prepared.seed}, "
            f"this run uses seed {seed}"
        )
    store = prepared.store
    rounds_before = metrics.rounds
    permuted = runtime.pipeline.from_items(
        prepared.records, key_fn=lambda record: record[0]
    )

    matching: Set[EdgeId] = set()
    pending = permuted
    resolved_store: Optional[DHTStore] = None
    budget = search_budget
    if budget is not None:
        # A vertex must always be able to re-scan its incident list.
        budget = max(budget, 2 * graph.max_degree() + 2)
    rounds_used = 0
    while True:
        rounds_used += 1
        if rounds_used > max_rounds:
            raise RuntimeError(
                f"matching did not converge within {max_rounds} rounds"
            )
        with metrics.phase("IsInMM"):
            outcome = pending.par_do(
                _IsInMM(store, seed, resolved_store=resolved_store,
                        budget=budget),
                name="is-in-mm",
            )
        parked_records = []
        for tag, vertex, payload in outcome.collect():
            if tag == "matched":
                matching.add(payload)
            else:
                parked_records.append((vertex, payload))
        if budget is None or not parked_records:
            runtime.next_round()
            break
        with metrics.phase("CommitStates"):
            states = _vertex_states(graph, matching,
                                    {v for v, _ in parked_records}, seed)
            states_pcoll = runtime.pipeline.from_items(states)
            next_store = runtime.new_store(f"mm-states-r{rounds_used}")
            runtime.write_store(states_pcoll, next_store,
                                key_fn=lambda kv: kv[0],
                                value_fn=lambda kv: kv[1])
            resolved_store = next_store
        runtime.next_round()
        pending = runtime.pipeline.from_items(parked_records)

    # Round 1 is the preparation (possibly cache-served); the rest queried.
    return MatchingResult(matching=matching, metrics=metrics,
                          rounds=metrics.rounds - rounds_before + 1)


def _vertex_states(graph: Graph, matching: Set[EdgeId],
                   parked: Set[int], seed: int) -> List[Tuple[int, tuple]]:
    """Vertex states known after a truncated round (committed to the DHT)."""
    states: List[Tuple[int, tuple]] = []
    matched_partner: Dict[int, Tuple[int, float]] = {}
    for u, v in matching:
        rank = _edge_rank(seed, u, v)
        matched_partner[u] = (v, rank)
        matched_partner[v] = (u, rank)
    for vertex in graph.vertices():
        if vertex in matched_partner:
            partner, rank = matched_partner[vertex]
            states.append((vertex, (_MATCHED, partner, rank)))
        elif vertex not in parked:
            # Its search completed without finding a matched edge.
            states.append((vertex, (_SEARCHED, 1.0)))
    return states


# ---------------------------------------------------------------------------
# Theorem 2 part 1: Algorithm 4 (degree peeling in O(log log Delta) levels)
# ---------------------------------------------------------------------------


def _level_subgraph(graph: Graph, alive: Set[int], level: int, seed: int,
                    delta: int, log_n: float) -> Optional[Graph]:
    """The rank-sampled subgraph ``H_level`` of Algorithm 4, or None when
    the residual graph has no edges left."""
    residual, degree = _residual(graph, alive)
    if not residual:
        return None
    if degree > 10 * log_n:
        threshold = delta ** -(0.5 ** level)
        subgraph_edges = [
            edge for edge in _residual_edges(residual)
            if _edge_rank(seed, *edge) <= threshold
        ]
    else:
        subgraph_edges = list(_residual_edges(residual))
    level_graph = Graph(graph.num_vertices)
    for u, v in subgraph_edges:
        level_graph.add_edge(u, v)
    return level_graph


@dataclass
class PreparedMatchingPhases:
    """Algorithm 4 preprocessing: the level-1 sampled subgraph, staged.

    Only level 1 is known before any matching completes (later levels
    depend on which vertices matched), so the cacheable artifact is the
    level-1 subgraph plus its DHT-resident edge-permuted form — the
    PermuteGraph shuffle and KV-write every query would otherwise repeat.
    """

    seed: int
    level_graph: Optional[Graph]
    inner: Optional[PreparedMatching]


def prepare_matching_phases(graph: Graph, *,
                            runtime: Optional[AMPCRuntime] = None,
                            config: Optional[ClusterConfig] = None,
                            seed: int = 0) -> PreparedMatchingPhases:
    """Stage the level-1 sampled subgraph of Algorithm 4 into the DHT."""
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    n = graph.num_vertices
    delta = graph.max_degree()
    if delta == 0:
        return PreparedMatchingPhases(seed=seed, level_graph=None, inner=None)
    log_n = math.log(max(n, 2))
    level_graph = _level_subgraph(graph, set(graph.vertices()), 1, seed,
                                  delta, log_n)
    if level_graph is None:
        return PreparedMatchingPhases(seed=seed, level_graph=None, inner=None)
    inner = prepare_matching(level_graph, runtime=runtime, seed=seed)
    return PreparedMatchingPhases(seed=seed, level_graph=level_graph,
                                  inner=inner)


def ampc_matching_phases(graph: Graph, *,
                         runtime: Optional[AMPCRuntime] = None,
                         config: Optional[ClusterConfig] = None,
                         seed: int = 0,
                         prepared: Optional[PreparedMatchingPhases] = None
                         ) -> MatchingResult:
    """Algorithm 4: maximal matching by O(log log Delta) sampled levels.

    Level i keeps only the edges of rank at most ``Delta^{-0.5^i}`` (once
    the residual degree exceeds ``10 log n``), finds their greedy maximal
    matching via the MIS-on-line-graph query process of Proposition 4.2
    (the same query machinery as :func:`ampc_maximal_matching`, restricted
    to the sampled subgraph), and removes matched vertices.  A
    ``prepared`` artifact (from :func:`prepare_matching_phases`) serves
    level 1 from the cached DHT-resident subgraph.
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    n = graph.num_vertices
    delta = graph.max_degree()
    if delta == 0:
        return MatchingResult(matching=set(), metrics=metrics, rounds=0)
    if prepared is None:
        prepared = prepare_matching_phases(graph, runtime=runtime, seed=seed)
    elif prepared.seed != seed:
        raise ValueError(
            f"prepared input was built for seed {prepared.seed}, "
            f"this run uses seed {seed}"
        )
    log_n = math.log(max(n, 2))
    levels = max(1, math.ceil(math.log2(max(2.0, math.log2(max(delta, 2))))) + 1)
    rounds_before = metrics.rounds

    alive = set(graph.vertices())
    matching: Set[EdgeId] = set()
    level_sizes: List[int] = []
    for level in range(1, levels + 1):
        if level == 1 and prepared.level_graph is not None:
            level_graph: Optional[Graph] = prepared.level_graph
            inner = prepared.inner
        else:
            level_graph = _level_subgraph(graph, alive, level, seed,
                                          delta, log_n)
            inner = None
        if level_graph is None:
            break
        with metrics.phase(f"Level{level}"):
            level_result = ampc_maximal_matching(
                level_graph, runtime=runtime, seed=seed, prepared=inner
            )
        matched = level_result.matching
        level_sizes.append(len(matched))
        matching.update(matched)
        for u, v in matched:
            alive.discard(u)
            alive.discard(v)
    # Final sweep: the loop above is maximal w.h.p. (Lemma 4.5); guard
    # against the low-probability leftover deterministically.
    residual, degree = _residual(graph, alive)
    if residual:
        leftover = Graph(n)
        for u, v in _residual_edges(residual):
            leftover.add_edge(u, v)
        with metrics.phase("Cleanup"):
            tail = ampc_maximal_matching(leftover, runtime=runtime, seed=seed)
        matching.update(tail.matching)
        level_sizes.append(len(tail.matching))
    # Logical rounds: the level-1 preparation round (possibly cache-served)
    # plus everything executed after it — stable across cache states.
    return MatchingResult(matching=matching, metrics=metrics,
                          rounds=metrics.rounds - rounds_before + 1,
                          level_sizes=level_sizes)


def _residual(graph: Graph, alive: Set[int]):
    """Adjacency of the graph induced on ``alive`` + its max degree."""
    residual: Dict[int, List[int]] = {}
    degree = 0
    for v in alive:
        neighbors = [u for u in graph.neighbors(v) if u in alive]
        if neighbors:
            residual[v] = neighbors
            degree = max(degree, len(neighbors))
    return residual, degree


def _residual_edges(residual: Dict[int, List[int]]):
    for v, neighbors in residual.items():
        for u in neighbors:
            if v < u:
                yield (v, u)


# ---------------------------------------------------------------------------
# Registry spec (the Session/CLI entry point)
# ---------------------------------------------------------------------------


def _summarize(result: MatchingResult, graph: Graph) -> Dict[str, int]:
    return {"output_size": len(result.matching), "rounds": result.rounds}


def _describe(result: MatchingResult, graph: Graph, params) -> str:
    return (f"maximal matching: {len(result.matching)} edges "
            f"({result.rounds} rounds)")


register_algorithm(AlgorithmSpec(
    name="matching",
    summary="maximal matching",
    input_kind="graph",
    run=ampc_maximal_matching,
    prepare=prepare_matching,
    update=update_matching,
    summarize=_summarize,
    describe=_describe,
    params=(
        ParamSpec("search_budget", int, None,
                  "per-search KV lookup budget (runs the truncated "
                  "multi-round theory schedule)"),
    ),
    prep_seed_sensitive=True,  # edge ranks depend on the seed
))


def _summarize_phases(result: MatchingResult, graph: Graph) -> Dict[str, int]:
    return {"output_size": len(result.matching),
            "levels": len(result.level_sizes),
            "rounds": result.rounds}


def _describe_phases(result: MatchingResult, graph: Graph, params) -> str:
    return (f"maximal matching (Algorithm 4): {len(result.matching)} edges "
            f"over {len(result.level_sizes)} level(s)")


register_algorithm(AlgorithmSpec(
    name="matching-phases",
    summary="maximal matching via O(log log Δ) peeling levels (Algorithm 4)",
    input_kind="graph",
    run=ampc_matching_phases,
    prepare=prepare_matching_phases,
    summarize=_summarize_phases,
    describe=_describe_phases,
    prep_seed_sensitive=True,  # the level-1 sample depends on edge ranks
))
