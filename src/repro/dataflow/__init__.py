"""A miniature Flume/Beam-style dataflow engine.

The paper implements every algorithm (MPC and AMPC alike) in Flume-C++,
whose essential vocabulary is:

* a ``PCollection`` — a distributed multi-set of elements;
* a ``DoFn`` applied with ``ParDo`` — per-element transformation that runs
  where the data lives (no communication);
* a *shuffle* (``GroupByKey`` and friends) — the only way workers exchange
  bulk data, and the operation whose durable writes dominate MPC running
  times (Section 5.3: "most of the computation time in the MPC algorithms
  ... is spent on shuffles").

This package reproduces that model on the simulated cluster.  Every shuffle
is counted and byte-metered; every ParDo charges the critical-path machine
time, including KV-store lookups made from inside DoFns (the one capability
that distinguishes the paper's AMPC programs from its MPC programs).
"""

from repro.dataflow.dofn import DoFn, MachineContext
from repro.dataflow.pcollection import PCollection
from repro.dataflow.pipeline import Pipeline

__all__ = ["DoFn", "MachineContext", "PCollection", "Pipeline"]
