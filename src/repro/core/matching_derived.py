"""Consequences of Theorem 2 (Corollary 4.1).

The paper notes that the maximal matching algorithm immediately yields:

* a (1 + eps)-approximate maximum matching — maximal matching is a
  2-approximation, and short augmenting-path rounds push the ratio toward
  1 + eps (we implement length-3 augmentation rounds, each one a constant
  number of AMPC matchings, giving 3/2 after one round and approaching
  (1 + eps) as rounds grow);
* a (2 + eps)-approximate maximum *weight* matching via the classic
  weight-bucketing reduction: split edges into geometric weight levels and
  run maximal matching from the heaviest level down;
* a 2-approximate minimum vertex cover: the endpoints of any maximal
  matching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.metrics import Metrics
from repro.ampc.runtime import AMPCRuntime
from repro.core.matching import ampc_maximal_matching
from repro.graph.graph import Graph, WeightedGraph, edge_key

EdgeId = Tuple[int, int]


@dataclass
class WeightedMatchingResult:
    """A (2 + eps)-approximate maximum weight matching."""

    matching: Set[EdgeId]
    weight: float
    metrics: Metrics
    #: number of geometric weight levels processed
    levels: int = 0


@dataclass
class VertexCoverResult:
    """A 2-approximate minimum vertex cover (matched endpoints)."""

    cover: Set[int]
    metrics: Metrics


def approximate_vertex_cover(graph: Graph, *,
                             config: Optional[ClusterConfig] = None,
                             seed: int = 0) -> VertexCoverResult:
    """2-approximate minimum vertex cover: V(maximal matching)."""
    result = ampc_maximal_matching(graph, config=config, seed=seed)
    cover = {x for edge in result.matching for x in edge}
    return VertexCoverResult(cover=cover, metrics=result.metrics)


def approximate_max_weight_matching(graph: WeightedGraph, *,
                                    config: Optional[ClusterConfig] = None,
                                    seed: int = 0,
                                    epsilon: float = 0.2
                                    ) -> WeightedMatchingResult:
    """(2 + eps)-approximate maximum weight matching by weight bucketing.

    Edges are split into levels ``[(1+eps)^k, (1+eps)^{k+1})``; levels are
    processed from heaviest to lightest, running the AMPC maximal matching
    on each level's residual subgraph.  Greedy-by-level loses at most a
    factor (1 + eps) on top of maximal matching's factor 2.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    edges = list(graph.edges())
    if not edges:
        return WeightedMatchingResult(matching=set(), weight=0.0,
                                      metrics=metrics)
    if any(w <= 0 for _, _, w in edges):
        raise ValueError("weights must be positive for the bucketing scheme")
    base = 1.0 + epsilon

    def level_of(weight: float) -> int:
        return math.floor(math.log(weight, base))

    by_level: Dict[int, List[EdgeId]] = {}
    for u, v, w in edges:
        by_level.setdefault(level_of(w), []).append(edge_key(u, v))

    matching: Set[EdgeId] = set()
    matched_vertices: Set[int] = set()
    levels_processed = 0
    for level in sorted(by_level, reverse=True):
        candidates = [
            (u, v) for u, v in by_level[level]
            if u not in matched_vertices and v not in matched_vertices
        ]
        if not candidates:
            continue
        levels_processed += 1
        level_graph = Graph(graph.num_vertices)
        for u, v in candidates:
            level_graph.add_edge(u, v)
        result = ampc_maximal_matching(level_graph, runtime=runtime,
                                       seed=seed + level_of_hash(level))
        for u, v in result.matching:
            matching.add((u, v))
            matched_vertices.add(u)
            matched_vertices.add(v)
    weight = sum(graph.weight(u, v) for u, v in matching)
    return WeightedMatchingResult(matching=matching, weight=weight,
                                  metrics=metrics, levels=levels_processed)


def level_of_hash(level: int) -> int:
    """Fold (possibly negative) level indices into non-negative seeds."""
    return abs(level) * 2 + (1 if level < 0 else 0)


def approximate_maximum_matching(graph: Graph, *,
                                 config: Optional[ClusterConfig] = None,
                                 seed: int = 0,
                                 augmentation_rounds: int = 1
                                 ) -> Tuple[Set[EdgeId], Metrics]:
    """Approximate maximum (cardinality) matching (Corollary 4.1).

    Starts from the AMPC maximal matching (a 2-approximation) and applies
    rounds of vertex-disjoint length-3 augmentations: each round finds, for
    matched edges with two distinct free neighbors, a greedy disjoint set
    of augmenting paths and flips them.  One round already guarantees a
    3/2-approximation; more rounds approach the (1 + eps) bound.
    """
    base = ampc_maximal_matching(graph, config=config, seed=seed)
    matching = set(base.matching)
    metrics = base.metrics
    for round_index in range(augmentation_rounds):
        flipped = _augment_once(graph, matching)
        if not flipped:
            break
    return matching, metrics


def _augment_once(graph: Graph, matching: Set[EdgeId]) -> int:
    """One pass of greedy vertex-disjoint length-3 augmentation.

    For each matched edge (u, v), look for free a ~ u and free b ~ v with
    a != b, claiming free vertices greedily; flip u-v out and a-u, v-b in.
    Returns the number of augmentations performed.
    """
    matched_vertices = {x for edge in matching for x in edge}
    claimed: Set[int] = set()
    flips: List[Tuple[EdgeId, EdgeId, EdgeId]] = []
    for u, v in sorted(matching):
        free_u = [a for a in graph.neighbors(u)
                  if a not in matched_vertices and a not in claimed]
        free_v = [b for b in graph.neighbors(v)
                  if b not in matched_vertices and b not in claimed]
        chosen_a = None
        chosen_b = None
        for a in free_u:
            for b in free_v:
                if a != b:
                    chosen_a, chosen_b = a, b
                    break
            if chosen_a is not None:
                break
        if chosen_a is None:
            continue
        claimed.add(chosen_a)
        claimed.add(chosen_b)
        flips.append(((u, v), edge_key(chosen_a, u), edge_key(v, chosen_b)))
    for old, new_a, new_b in flips:
        matching.discard(old)
        matching.add(new_a)
        matching.add(new_b)
    return len(flips)
