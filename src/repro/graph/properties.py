"""Graph property computations used to build Table 2 of the paper.

Includes connected components (BFS), exact diameter (all-pairs BFS, only
sensible for small graphs), and the double-sweep diameter lower bound the
paper falls back to for its largest inputs (Table 2 marks those with ``*``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph


def connected_components(graph: Graph) -> List[int]:
    """Label vertices by component: ``labels[v]`` is the min vertex id in v's
    component.  Runs BFS from each unvisited vertex."""
    n = graph.num_vertices
    labels = [-1] * n
    for source in range(n):
        if labels[source] != -1:
            continue
        labels[source] = source
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if labels[v] == -1:
                    labels[v] = source
                    queue.append(v)
    return labels


def connected_component_sizes(graph: Graph) -> Dict[int, int]:
    """Map component label -> component size."""
    sizes: Dict[int, int] = {}
    for label in connected_components(graph):
        sizes[label] = sizes.get(label, 0) + 1
    return sizes


def is_connected(graph: Graph) -> bool:
    if graph.num_vertices == 0:
        return True
    return len(connected_component_sizes(graph)) == 1


def bfs_eccentricity(graph: Graph, source: int) -> Tuple[int, int]:
    """Return ``(eccentricity, farthest_vertex)`` of ``source`` within its
    component."""
    dist = {source: 0}
    queue = deque([source])
    farthest = source
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
                farthest = v
    return dist[farthest], farthest


def diameter(graph: Graph) -> int:
    """Exact diameter of the largest component via all-pairs BFS.

    Quadratic; intended for test-scale graphs.  Use
    :func:`diameter_lower_bound` for larger inputs, as the paper does.
    """
    best = 0
    labels = connected_components(graph)
    sizes: Dict[int, int] = {}
    for label in labels:
        sizes[label] = sizes.get(label, 0) + 1
    if not sizes:
        return 0
    largest = max(sizes, key=lambda lab: (sizes[lab], -lab))
    for v in range(graph.num_vertices):
        if labels[v] == largest:
            ecc, _ = bfs_eccentricity(graph, v)
            best = max(best, ecc)
    return best


def diameter_lower_bound(graph: Graph, sweeps: int = 4, seed: int = 0) -> int:
    """Double-sweep lower bound on the diameter of the largest component.

    Start from a pseudo-random vertex of the largest component, BFS to the
    farthest vertex, repeat ``sweeps`` times; the largest eccentricity seen
    is a lower bound on the true diameter (this is the standard technique,
    and the one behind the ``*`` entries of the paper's Table 2).
    """
    if graph.num_vertices == 0:
        return 0
    labels = connected_components(graph)
    sizes: Dict[int, int] = {}
    for label in labels:
        sizes[label] = sizes.get(label, 0) + 1
    largest = max(sizes, key=lambda lab: (sizes[lab], -lab))
    start = next(v for v in range(graph.num_vertices) if labels[v] == largest)
    best = 0
    current = start
    for _ in range(sweeps):
        ecc, far = bfs_eccentricity(graph, current)
        best = max(best, ecc)
        if far == current:
            break
        current = far
    return best


@dataclass(frozen=True)
class GraphSummary:
    """One row of Table 2: the dataset statistics the paper reports."""

    name: str
    num_vertices: int
    num_edges: int
    diameter: int
    diameter_is_lower_bound: bool
    num_components: int
    largest_component: int

    def row(self) -> Tuple:
        diam = f"{self.diameter}*" if self.diameter_is_lower_bound else str(self.diameter)
        return (
            self.name,
            self.num_vertices,
            self.num_edges,
            diam,
            self.num_components,
            self.largest_component,
        )


def summarize(name: str, graph: Graph, *, exact_diameter_max_n: int = 4096) -> GraphSummary:
    """Compute the Table 2 statistics for one graph.

    Uses the exact diameter when the graph is small enough, otherwise the
    double-sweep lower bound (flagged, matching the paper's ``*`` rows).
    """
    sizes = connected_component_sizes(graph)
    num_components = len(sizes)
    largest = max(sizes.values()) if sizes else 0
    use_exact = graph.num_vertices <= exact_diameter_max_n
    if use_exact:
        diam = diameter(graph)
    else:
        diam = diameter_lower_bound(graph)
    return GraphSummary(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        diameter=diam,
        diameter_is_lower_bound=not use_exact,
        num_components=num_components,
        largest_component=largest,
    )
