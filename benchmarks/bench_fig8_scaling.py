"""Figure 8 — self-speedup of the AMPC MIS, 1 to 100 machines.

The paper runs the AMPC MIS on 1-100 machines per dataset and reports the
100-machine time to be 1.64-7.76x faster than the 1-machine time for the
smaller graphs, with larger graphs scaling better (more work amortizes the
round/shuffle overheads), and sub-linear overall because the key-value
store's aggregate bandwidth saturates (Section 5.7).
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_DATASETS, run_once
from repro.analysis.experiment import bench_config, run_ampc_mis
from repro.analysis.reporting import Table

MACHINE_COUNTS = [1, 2, 4, 8, 16, 32, 64, 100]


def test_fig8_self_speedup(benchmark, datasets):
    def compute():
        rows = {}
        for ds in BENCH_DATASETS:
            graph = datasets[ds]
            times = []
            for machines in MACHINE_COUNTS:
                config = bench_config(machines=machines)
                record = run_ampc_mis(graph, config=config)
                times.append(record["simulated_time_s"])
            rows[ds] = times
        return rows

    rows = run_once(benchmark, compute)

    table = Table(
        "Figure 8: AMPC MIS simulated time by machine count (seconds)",
        ["Dataset"] + [str(m) for m in MACHINE_COUNTS] + ["1-vs-100 speedup"],
    )
    for ds in BENCH_DATASETS:
        times = rows[ds]
        table.add_row(ds, *[f"{t:.2f}" for t in times],
                      f"{times[0] / times[-1]:.2f}x")
    table.show()

    for ds in BENCH_DATASETS:
        times = rows[ds]
        # More machines never slower in the simulated critical path.
        assert times[-1] < times[0]
        speedup = times[0] / times[-1]
        # Sub-linear (the aggregate KV bandwidth ceiling, Section 5.7)
        # but a real speedup, as in the paper's 1.64-7.76x band.
        assert 1.2 < speedup < 100.0
    # Larger graphs scale at least as well as the smallest one (paper:
    # "speedups are better for larger graphs").
    smallest = rows[BENCH_DATASETS[0]]
    largest = rows[BENCH_DATASETS[-1]]
    assert (largest[0] / largest[-1]) >= 0.8 * (smallest[0] / smallest[-1])
