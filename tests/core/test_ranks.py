"""Tests for hash-based priorities."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranks import edge_rank_fn, hash_rank, vertex_ranks


def test_deterministic():
    assert hash_rank(1, 2, 3) == hash_rank(1, 2, 3)


def test_seed_sensitivity():
    assert hash_rank(1, 5) != hash_rank(2, 5)


def test_item_sensitivity():
    assert hash_rank(1, 5) != hash_rank(1, 6)


def test_unit_interval():
    for seed in range(5):
        for item in range(100):
            rank = hash_rank(seed, item)
            assert 0.0 <= rank < 1.0


def test_vertex_ranks_matches_hash():
    ranks = vertex_ranks(10, seed=3)
    assert ranks == [hash_rank(3, v) for v in range(10)]


def test_edge_rank_symmetric():
    rank = edge_rank_fn(seed=7)
    assert rank(3, 9) == rank(9, 3)


def test_roughly_uniform():
    ranks = vertex_ranks(10_000, seed=0)
    mean = sum(ranks) / len(ranks)
    assert 0.45 < mean < 0.55
    below_half = sum(1 for r in ranks if r < 0.5)
    assert 4_500 < below_half < 5_500


@given(st.integers(0, 2**31), st.integers(0, 2**31), st.integers(0, 2**31))
@settings(max_examples=50, deadline=None)
def test_rank_bounds_property(seed, a, b):
    assert 0.0 <= hash_rank(seed, a, b) < 1.0
