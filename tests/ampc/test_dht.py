"""Tests for the distributed hash table."""

import pytest

from repro.ampc import DHTService, DHTStore, StoreSealedError


class TestDHTStore:
    def test_write_and_lookup(self):
        store = DHTStore("t", num_shards=4)
        store.write("a", (1, 2))
        assert store.lookup("a") == (1, 2)
        assert store.lookup("missing") is None

    def test_overwrite_keeps_entry_count(self):
        store = DHTStore("t", num_shards=2)
        store.write("a", 1)
        store.write("a", 2)
        assert len(store) == 1
        assert store.lookup("a") == 2

    def test_sealed_store_rejects_writes(self):
        store = DHTStore("t", num_shards=2)
        store.write("a", 1)
        store.seal()
        with pytest.raises(StoreSealedError):
            store.write("b", 2)
        assert store.lookup("a") == 1

    def test_strict_round_store_rejects_early_reads(self):
        store = DHTStore("t", num_shards=2, strict_rounds=True)
        store.write("a", 1)
        with pytest.raises(StoreSealedError):
            store.lookup("a")
        store.seal()
        assert store.lookup("a") == 1

    def test_shard_load_accounting(self):
        store = DHTStore("t", num_shards=4)
        store.write("hot", 1)
        for _ in range(10):
            store.lookup("hot")
        assert store.max_shard_load() == 10
        assert sum(store.shard_reads) == 10

    def test_write_returns_value_bytes(self):
        store = DHTStore("t", num_shards=1)
        assert store.write("k", (1, 2, 3)) == 24

    def test_write_all_and_keys(self):
        store = DHTStore("t", num_shards=3)
        store.write_all([("a", 1), ("b", 2)])
        assert sorted(store.keys()) == ["a", "b"]

    def test_contains(self):
        store = DHTStore("t", num_shards=2)
        store.write("a", 1)
        assert store.contains("a")
        assert not store.contains("b")

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            DHTStore("t", num_shards=0)


class TestDHTService:
    def test_sequential_names(self):
        service = DHTService(num_shards=2)
        assert service.create().name == "D0"
        assert service.create().name == "D1"

    def test_named_store_and_get(self):
        service = DHTService(num_shards=2)
        store = service.create("graph")
        assert service.get("graph") is store

    def test_duplicate_name_rejected(self):
        service = DHTService(num_shards=2)
        service.create("x")
        with pytest.raises(ValueError):
            service.create("x")

    def test_strict_mode_propagates(self):
        service = DHTService(num_shards=2, strict_rounds=True)
        store = service.create()
        store.write("a", 1)
        with pytest.raises(StoreSealedError):
            store.lookup("a")
