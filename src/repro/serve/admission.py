"""Admission control: price queries up front, shed what cannot be served.

The serving tier accepts work from an uncontrolled source (sockets), and
a burst beyond capacity must not translate into unbounded queues and
wedged connections.  Admission control prices every query *before* it
runs using the same :class:`~repro.ampc.cost_model.CostModel` constants
that price every simulated op, then holds admitted cost against a token
budget:

* total priced cost within the budget → **admit** (run immediately-ish);
* within ``queue_factor`` times the budget → **queue** (accepted, waits);
* beyond that → **shed**: the caller gets a structured
  :class:`OverloadedError` with a retry-after hint instead of a blocked
  socket.

The load signal feeding the shed decision is a **peak-hold estimator**:
it follows rises instantly but decays from the held peak slowly
(exponentially, with a configurable half-life).  Plain instantaneous
load oscillates at the admit/shed boundary — the instant a query
finishes the service re-admits, immediately overloads again, and sheds —
while the held peak keeps the gate closed until pressure has *stayed*
off for a while.

Costs are in the cost model's simulated seconds.  They are priced from
graph size and cached-artifact state: a query whose shared preprocessing
is already DHT-resident skips the shuffle+write price and pays only the
adaptive query phases, which is exactly the asymmetry the serving tier
exists to exploit.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.cost_model import BYTES_PER_ID

__all__ = [
    "OverloadedError",
    "PeakHoldLoadEstimator",
    "AdmissionController",
    "estimate_query_cost",
]


class OverloadedError(RuntimeError):
    """The service shed this query; retry after ``retry_after_s``."""

    def __init__(self, message: str, *, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


def estimate_query_cost(spec: Any, num_vertices: int, num_edges: int, *,
                        cached: bool,
                        config: Optional[ClusterConfig] = None) -> float:
    """Price one query, in simulated seconds, before it runs.

    The estimate mirrors how the runtime charges the real phases:

    * an uncached query pays the shared preprocessing — one shuffle of
      the O(n + m) graph records into the DHT (setup plus bytes over the
      aggregate durable-write bandwidth) plus the KV writes that
      materialize the search structure;
    * every query pays the adaptive phases — about one KV lookup per
      vertex, latency-hidden across machines and threads when the
      multithreading optimization is on, plus linear compute.

    It is an admission price, not a prediction: monotone in graph size,
    cheaper when the artifact is cached, and in the same units as
    ``SessionStats.simulated_time_s`` so budgets can be read off real
    measurements.
    """
    config = config if config is not None else ClusterConfig()
    cost = config.cost_model
    machines = max(1, config.num_machines)
    hidden = machines * (max(1, config.threads_per_machine)
                         if config.multithreading else 1)
    records = max(1, int(num_vertices) + 2 * int(num_edges))
    record_bytes = 3 * BYTES_PER_ID * records
    price = 0.0
    if not cached:
        price += cost.shuffle_setup_s
        price += record_bytes / (machines * cost.disk_bandwidth_bytes_per_s)
        price += records * cost.kv_write_latency_s / hidden
    lookups = max(1, int(num_vertices))
    price += lookups * cost.kv_read_latency_s / hidden
    price += records / (machines * cost.compute_ops_per_s)
    return price


class PeakHoldLoadEstimator:
    """Hold the observed peak of a load signal; decay it slowly.

    ``observe(load)`` returns the held level: the maximum of the current
    observation and the previous peak decayed exponentially with
    half-life ``decay_half_life_s``.  Rises are tracked instantly, falls
    lag — which is the anti-oscillation property admission control needs
    at the shed boundary.  Thread-safe via the owner's lock (callers
    hold :class:`AdmissionController`'s lock; standalone use needs no
    lock for a single writer).
    """

    def __init__(self, decay_half_life_s: float = 5.0, *,
                 clock: Callable[[], float] = time.monotonic):
        if decay_half_life_s <= 0:
            raise ValueError("decay_half_life_s must be positive")
        self.decay_half_life_s = decay_half_life_s
        self._clock = clock
        self._peak = 0.0
        self._stamp = clock()

    def observe(self, load: float) -> float:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._peak *= 0.5 ** (elapsed / self.decay_half_life_s)
        if load > self._peak:
            self._peak = float(load)
        return self._peak

    def level(self) -> float:
        """The current held peak (decayed to now), without a new sample."""
        return self.observe(0.0)


class AdmissionController:
    """A token budget of in-flight priced cost with peak-hold shedding.

    ``budget`` is the cost (simulated seconds) the service is willing to
    run concurrently; up to ``queue_factor`` times that may additionally
    wait in queue.  Beyond the queue ceiling the controller sheds.  The
    shed decision tests the *peak-held* in-flight cost, so a burst that
    just drained does not flap the gate open and shut.
    """

    def __init__(self, budget: float, *, queue_factor: float = 2.0,
                 decay_half_life_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        if budget <= 0:
            raise ValueError("admission budget must be positive")
        if queue_factor < 1.0:
            raise ValueError("queue_factor must be >= 1.0")
        self.budget = float(budget)
        self.queue_factor = float(queue_factor)
        self._lock = threading.Lock()
        self._estimator = PeakHoldLoadEstimator(
            decay_half_life_s, clock=clock)
        self._inflight_cost = 0.0
        self._admitted = 0
        self._queued = 0
        self._shed = 0

    def try_acquire(self, price: float) -> Tuple[str, float]:
        """Admit/queue/shed one query priced at ``price``.

        Returns ``(decision, retry_after_s)``.  For ``"admit"`` and
        ``"queue"`` the price is charged to the in-flight total and the
        caller **must** :meth:`release` it when the query resolves (any
        outcome).  For ``"shed"`` nothing is charged and
        ``retry_after_s`` hints when pressure should have drained.
        """
        price = max(0.0, float(price))
        ceiling = self.budget * self.queue_factor
        with self._lock:
            held = self._estimator.observe(self._inflight_cost)
            load = max(held, self._inflight_cost + price)
            if self._inflight_cost + price > ceiling:
                self._shed += 1
                # Hint: how long the exponential peak decay needs to
                # bring the held load back under the queue ceiling.
                excess = max(load / ceiling, 1.0 + price / ceiling)
                halvings = _log2(excess)
                retry = min(30.0, max(
                    0.05, halvings * self._estimator.decay_half_life_s))
                return "shed", round(retry, 3)
            self._inflight_cost += price
            self._estimator.observe(self._inflight_cost)
            if self._inflight_cost > self.budget:
                self._queued += 1
                return "queue", 0.0
            self._admitted += 1
            return "admit", 0.0

    def release(self, price: float) -> None:
        """Return a previously charged price (query finished, any way)."""
        with self._lock:
            self._inflight_cost = max(0.0, self._inflight_cost
                                      - max(0.0, float(price)))
            self._estimator.observe(self._inflight_cost)

    @property
    def inflight_cost(self) -> float:
        with self._lock:
            return self._inflight_cost

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "budget": self.budget,
                "queue_factor": self.queue_factor,
                "inflight_cost": round(self._inflight_cost, 6),
                "held_peak_cost": round(self._estimator.level(), 6),
                "admitted": self._admitted,
                "queued": self._queued,
                "shed": self._shed,
            }


def _log2(value: float) -> float:
    return math.log2(value) if value > 1.0 else 0.0
