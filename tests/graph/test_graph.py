"""Unit tests for the core graph data structures."""

import pytest

from repro.graph import Graph, WeightedGraph, edge_key


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key(3, 1) == (1, 3)
        assert edge_key(1, 3) == (1, 3)

    def test_identity_pair(self):
        assert edge_key(2, 2) == (2, 2)


class TestGraph:
    def test_empty(self):
        graph = Graph(0)
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_add_edge(self):
        graph = Graph(3)
        assert graph.add_edge(0, 1)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.num_edges == 1

    def test_duplicate_edge_collapses(self):
        graph = Graph(3)
        assert graph.add_edge(0, 1)
        assert not graph.add_edge(1, 0)
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        graph = Graph(3)
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)

    def test_out_of_range_rejected(self):
        graph = Graph(3)
        with pytest.raises(IndexError):
            graph.add_edge(0, 3)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_neighbors_sorted(self):
        graph = Graph(4)
        graph.add_edge(2, 3)
        graph.add_edge(2, 0)
        graph.add_edge(2, 1)
        assert graph.neighbors(2) == (0, 1, 3)

    def test_degree_and_max_degree(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        graph.add_edge(0, 3)
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1
        assert graph.max_degree() == 3

    def test_edges_iterates_once_each(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(2, 1)
        graph.add_edge(3, 2)
        assert sorted(graph.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_remove_edge(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.remove_edge(1, 0)
        assert not graph.has_edge(0, 1)
        assert graph.num_edges == 0

    def test_remove_missing_edge_raises(self):
        graph = Graph(3)
        with pytest.raises(KeyError):
            graph.remove_edge(0, 1)

    def test_add_vertex(self):
        graph = Graph(2)
        new = graph.add_vertex()
        assert new == 2
        graph.add_edge(2, 0)
        assert graph.has_edge(2, 0)

    def test_from_edges(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.num_edges == 3

    def test_subgraph_relabels(self):
        graph = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub, relabel = graph.subgraph([1, 2, 4])
        assert sub.num_vertices == 3
        assert sub.num_edges == 1  # only (1, 2) survives
        assert sub.has_edge(relabel[1], relabel[2])

    def test_copy_is_independent(self):
        graph = Graph.from_edges(3, [(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.num_edges == 1
        assert clone.num_edges == 2


class TestWeightedGraph:
    def test_add_edge_with_weight(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 2.5)
        assert graph.weight(0, 1) == 2.5
        assert graph.weight(1, 0) == 2.5

    def test_duplicate_keeps_min_weight(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 5.0)
        graph.add_edge(1, 0, 2.0)
        assert graph.num_edges == 1
        assert graph.weight(0, 1) == 2.0

    def test_duplicate_ignores_larger_weight(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 0, 5.0)
        assert graph.weight(0, 1) == 2.0

    def test_self_loop_rejected(self):
        graph = WeightedGraph(2)
        with pytest.raises(ValueError):
            graph.add_edge(0, 0, 1.0)

    def test_weight_order_key_breaks_ties(self):
        graph = WeightedGraph(4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(2, 3, 1.0)
        assert graph.weight_order_key(0, 1) < graph.weight_order_key(2, 3)
        assert graph.weight_order_key(1, 0) == graph.weight_order_key(0, 1)

    def test_neighbor_items_sorted_by_edge_order(self):
        graph = WeightedGraph(4)
        graph.add_edge(0, 3, 1.0)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 2, 0.5)
        items = graph.neighbor_items(0)
        assert items == [(2, 0.5), (1, 1.0), (3, 1.0)]

    def test_from_graph_default_weight(self):
        base = Graph.from_edges(3, [(0, 1), (1, 2)])
        weighted = WeightedGraph.from_graph(base)
        assert weighted.weight(0, 1) == 1.0
        assert weighted.num_edges == 2

    def test_total_weight(self):
        graph = WeightedGraph.from_edges(3, [(0, 1, 1.5), (1, 2, 2.5)])
        assert graph.total_weight() == 4.0

    def test_unweighted_projection(self):
        graph = WeightedGraph.from_edges(3, [(0, 1, 1.5), (1, 2, 2.5)])
        plain = graph.unweighted()
        assert sorted(plain.edges()) == [(0, 1), (1, 2)]

    def test_subgraph_edges(self):
        graph = WeightedGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        sub = graph.subgraph_edges([(1, 2)])
        assert sub.num_edges == 1
        assert sub.weight(1, 2) == 2.0
        assert sub.num_vertices == 4

    def test_copy_is_independent(self):
        graph = WeightedGraph.from_edges(3, [(0, 1, 1.0)])
        clone = graph.copy()
        clone.add_edge(1, 2, 9.0)
        assert graph.num_edges == 1
