"""AMPC model substrate: simulated cluster, DHT, cost model and runtime.

The paper's environment is a production data center (100 machines, 72
hyper-threads each, 20 Gbps NICs) running Flume-C++ with an RDMA key-value
store.  This package rebuilds that environment as a deterministic simulator:

* :class:`ClusterConfig` / :class:`Cluster` — machines, threads, partitioning.
* :class:`CostModel` — latency/bandwidth constants for the RDMA and TCP/IP
  transports, shuffle (durable write) costs and serialization sizes.
* :class:`DHTService` / :class:`DHTStore` — the distributed hash tables
  D0, D1, ... of the AMPC model, with per-shard load accounting.
* :class:`Metrics` — every counter the paper reports: shuffles, shuffle
  bytes, KV reads/writes/bytes, rounds, per-phase simulated time.
* :class:`FaultPlan` — preemption injection with re-execution from durable
  inputs (the fault-tolerance contract of Section 2).
* :class:`AMPCRuntime` — ties the above to the dataflow engine.
"""

from repro.ampc.cost_model import (
    BYTES_PER_ID,
    BYTES_PER_WEIGHT,
    CostModel,
    estimate_bytes,
)
from repro.ampc.metrics import Metrics, PhaseBreakdown
from repro.ampc.dht import DHTService, DHTStore, StoreSealedError
from repro.ampc.cluster import Cluster, ClusterConfig
from repro.ampc.faults import FaultPlan

# AMPCRuntime depends on repro.dataflow, which itself builds on the modules
# above; importing it lazily (PEP 562) keeps `import repro.dataflow` free of
# circular imports while `from repro.ampc import AMPCRuntime` still works.
_LAZY = {"AMPCRuntime", "BudgetExceededError"}


def __getattr__(name):
    if name in _LAZY:
        from repro.ampc import runtime

        return getattr(runtime, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BYTES_PER_ID",
    "BYTES_PER_WEIGHT",
    "CostModel",
    "estimate_bytes",
    "Metrics",
    "PhaseBreakdown",
    "DHTService",
    "DHTStore",
    "StoreSealedError",
    "Cluster",
    "ClusterConfig",
    "FaultPlan",
    "AMPCRuntime",
    "BudgetExceededError",
]
