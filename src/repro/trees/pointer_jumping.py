"""Pointer jumping over directed forests.

The AMPC MSF implementation contracts the directed trees induced by the
"visited" relationships by repeatedly querying the parent of a vertex until
it reaches a root (Section 5.5).  These sequential helpers are the in-memory
reference; the distributed version with per-query accounting lives in
:mod:`repro.core.connectivity`.

Parent convention: ``parent[v] == v`` marks a root.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def find_roots(parent: Sequence[int]) -> List[int]:
    """Root of every vertex, with path compression.  O(n alpha)."""
    roots = list(parent)
    for v in range(len(roots)):
        # Find the root of v's chain.
        chain = []
        x = v
        while roots[x] != x:
            chain.append(x)
            x = roots[x]
        for node in chain:
            roots[node] = x
    return roots


def forest_depth(parent: Sequence[int]) -> int:
    """Maximum pointer-chain length (the paper observed max 33 in practice)."""
    depth = [0] * len(parent)
    known = [False] * len(parent)
    best = 0
    for v in range(len(parent)):
        chain = []
        x = v
        while not known[x] and parent[x] != x:
            chain.append(x)
            x = parent[x]
        base = depth[x]
        for offset, node in enumerate(reversed(chain), start=1):
            depth[node] = base + offset
            known[node] = True
        known[v] = True
        best = max(best, depth[v])
    return best


def validate_parent_array(parent: Sequence[int]) -> None:
    """Raise ValueError if the parent array contains a cycle of length > 1."""
    state = [0] * len(parent)  # 0 = unseen, 1 = on stack, 2 = done
    for v in range(len(parent)):
        if state[v]:
            continue
        chain = []
        x = v
        while state[x] == 0 and parent[x] != x:
            state[x] = 1
            chain.append(x)
            x = parent[x]
        if state[x] == 1 and parent[x] != x:
            raise ValueError(f"cycle through vertex {x} in parent array")
        for node in chain:
            state[node] = 2
        state[x] = 2
