"""Hash-based random priorities.

Both the AMPC and MPC implementations in the paper derive per-vertex (and
per-edge) priorities by *hashing* ids (``NodePriority`` in Figures 1 and 2),
so that any machine can evaluate any priority without communication, and so
that the AMPC and MPC algorithms — and the sequential greedy reference —
all see the same permutation and therefore compute the same object.

We use a splitmix64 finalizer: a high-quality, dependency-free integer hash
that is stable across interpreter runs (unlike the builtin ``hash`` of
strings).  Ranks land in [0, 1); ties have probability ~2^-53 and every
consumer breaks them by id.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.ampc.hashing import _MASK, _splitmix64
from repro.graph.graph import edge_key

_INV_2_64 = 1.0 / float(1 << 64)


def hash_rank(seed: int, *items: int) -> float:
    """Deterministic pseudo-random rank in [0, 1) for (seed, items)."""
    state = _splitmix64(seed & _MASK)
    for item in items:
        state = _splitmix64(state ^ (item & _MASK))
    return state * _INV_2_64


def vertex_ranks(num_vertices: int, seed: int) -> List[float]:
    """Precomputed ``hash_rank(seed, v)`` for every vertex (driver-side)."""
    return [hash_rank(seed, v) for v in range(num_vertices)]


def edge_rank_fn(seed: int) -> Callable[[int, int], float]:
    """A rank function on undirected edges, symmetric in the endpoints."""

    def rank(u: int, v: int) -> float:
        a, b = edge_key(u, v)
        return hash_rank(seed, a, b)

    return rank
