"""Approximate maximum weight matching for an ad-assignment workload.

Corollary 4.1 in action: the AMPC maximal matching yields a
(2 + eps)-approximate maximum *weight* matching via geometric weight
bucketing — the subroutine the paper points at for balanced partitioning
and hierarchical clustering applications.

Scenario: advertisers bid for placement slots; each (advertiser, slot)
pair has a bid value; we want a high-value conflict-free assignment.

Run with::

    python examples/ad_assignment.py
"""

import random

from repro.ampc import ClusterConfig
from repro.core import approximate_max_weight_matching, approximate_vertex_cover
from repro.graph import Graph, WeightedGraph


def make_bid_graph(num_advertisers=60, num_slots=60, bids_per_advertiser=6,
                   seed=11):
    """A bipartite bid graph: advertisers 0..a-1, slots a..a+s-1."""
    rng = random.Random(seed)
    n = num_advertisers + num_slots
    graph = WeightedGraph(n)
    for advertiser in range(num_advertisers):
        slots = rng.sample(range(num_slots), bids_per_advertiser)
        for slot in slots:
            bid = round(rng.uniform(1.0, 100.0), 2)
            graph.add_edge(advertiser, num_advertisers + slot, bid)
    return graph, num_advertisers


def greedy_upper_bound(graph: WeightedGraph) -> float:
    """A cheap LP-ish upper bound: half the sum of the two heaviest
    incident bids per vertex."""
    total = 0.0
    for v in graph.vertices():
        weights = sorted(
            (w for _, w in graph.neighbor_items(v)), reverse=True
        )
        total += sum(weights[:1])
    return total / 2.0


def main():
    graph, num_advertisers = make_bid_graph()
    config = ClusterConfig(num_machines=8)
    print(f"bid graph: {graph.num_vertices} parties, "
          f"{graph.num_edges} bids")

    result = approximate_max_weight_matching(graph, config=config,
                                             seed=3, epsilon=0.1)
    print(f"assigned {len(result.matching)} advertiser-slot pairs "
          f"across {result.levels} weight levels")
    print(f"total value = {result.weight:,.2f}")
    upper = greedy_upper_bound(graph)
    print(f"upper bound (per-vertex heaviest/2): {upper:,.2f} "
          f"-> at least {result.weight / upper:.1%} of it captured")
    # Corollary 4.1 guarantees 1/(2 + eps) of the optimum.
    assert result.weight >= upper / (2 * 1.1) * 0.5

    # Bonus: the 2-approximate vertex cover of the conflict structure —
    # the parties an auditor must review to touch every bid.
    cover = approximate_vertex_cover(graph.unweighted(), config=config,
                                     seed=3)
    advertisers = sum(1 for v in cover.cover if v < num_advertisers)
    print(f"audit cover: {len(cover.cover)} parties "
          f"({advertisers} advertisers, "
          f"{len(cover.cover) - advertisers} slots)")


if __name__ == "__main__":
    main()
