"""Single-host shared-memory backend (manager-free).

Records live in ``multiprocessing.shared_memory`` segments: one writer
process appends into a geometrically growing segment list and keeps the
key index locally; reader processes attach a segment **by name** and read
a record straight out of it via a ``("shm", segment, offset, length)``
locator — no manager process, no proxy round trips, no per-reader copy of
the payload in the page cache (the segment is mapped, not duplicated).

The concurrency contract is deliberately narrow and matches how the
serving stack uses it: *one writer, many readers, records immutable once
shared*.  A shared record is never rewritten in place — overwrites append
a new record and move the index, so a reader holding an old locator still
sees consistent bytes.  This is exactly the sealed-store discipline the
AMPC model already imposes.

Segment lifetime: the creating store unlinks its segments on
:meth:`close` (or at garbage collection, via ``weakref.finalize``).
Readers attach *untracked* (see :func:`_attach_untracked`): only the
creator's resource tracker knows the segment, so a reader process
exiting — cleanly or by signal — never unlinks or double-accounts a
segment it merely mapped, while a hard-killed creator's segments are
still reclaimed by its own tracker.
"""

from __future__ import annotations

import threading
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.distdht.backing import BackingStore, register_fetcher

#: first segment size; each further segment doubles (bounded below by the
#: record that triggered it)
DEFAULT_SEGMENT_BYTES = 1 << 20


def _unlink_segments(segments: List[shared_memory.SharedMemory]) -> None:
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except Exception:  # noqa: BLE001 - interpreter-shutdown tolerant
            pass
    segments.clear()


#: segments created by stores in *this* process, by name — a locator
#: resolved where it was minted reads the creator's own mapping instead
#: of re-attaching (which would also confuse the resource tracker)
_LOCAL_SEGMENTS: "weakref.WeakValueDictionary[str, shared_memory.SharedMemory]" = (
    weakref.WeakValueDictionary())

#: this process's attached foreign segments, by name (attach once, reuse)
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}
_ATTACH_LOCK = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without a resource-tracker entry.

    Unlink responsibility stays with the creating store alone.  Python
    3.13 grew ``SharedMemory(..., track=False)`` for exactly this; on
    older interpreters the attach-side registration is suppressed by
    patching ``resource_tracker.register`` for the duration of the call
    (callers hold ``_ATTACH_LOCK``, so the patch cannot race another
    attach).  Without this, a reader whose lazily started tracker is not
    shared with the creator would unlink the creator's live segment when
    the reader exits.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _attached_segment(name: str) -> shared_memory.SharedMemory:
    local = _LOCAL_SEGMENTS.get(name)
    if local is not None:
        return local
    with _ATTACH_LOCK:
        segment = _ATTACHED.get(name)
        if segment is None:
            segment = _attach_untracked(name)
            _ATTACHED[name] = segment
    return segment


def _fetch_shm(locator: Tuple[str, str, int, int]) -> bytes:
    _tag, name, offset, length = locator
    segment = _attached_segment(name)
    return bytes(segment.buf[offset:offset + length])


register_fetcher("shm", _fetch_shm)


class SharedMemoryBackingStore(BackingStore):
    """Append-only shared-memory KV store (one writer, many readers)."""

    kind = "shm"

    def __init__(self, *, segment_bytes: int = DEFAULT_SEGMENT_BYTES):
        if segment_bytes < 1024:
            raise ValueError("segment_bytes must be at least 1 KiB")
        self._segment_bytes = segment_bytes
        self._segments: List[shared_memory.SharedMemory] = []
        #: key -> (segment index, offset, length)
        self._index: Dict[bytes, Tuple[int, int, int]] = {}
        self._tail = 0          # free offset in the last segment
        self._live_bytes = 0    # bytes addressed by the index
        self._dead_bytes = 0    # bytes orphaned by overwrites/deletes
        self._closed = False
        self._lock = threading.Lock()
        # unlink at GC even if close() is never called
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._segments)

    # -- segment management ----------------------------------------------

    def _reserve(self, length: int) -> Tuple[int, int]:
        """-> (segment index, offset) of a fresh ``length``-byte span."""
        if self._segments:
            capacity = self._segments[-1].size
            if self._tail + length <= capacity:
                offset = self._tail
                self._tail += length
                return len(self._segments) - 1, offset
        size = max(self._segment_bytes << len(self._segments), length)
        segment = shared_memory.SharedMemory(create=True, size=size)
        _LOCAL_SEGMENTS[segment.name] = segment
        self._segments.append(segment)
        self._tail = length
        return len(self._segments) - 1, 0

    # -- BackingStore -----------------------------------------------------

    def put(self, key: bytes, record: bytes) -> None:
        with self._lock:
            if self._closed:
                raise ValueError("shared-memory store is closed")
            seg_index, offset = self._reserve(len(record))
            self._segments[seg_index].buf[offset:offset + len(record)] = record
            replaced = self._index.get(key)
            if replaced is not None:
                self._dead_bytes += replaced[2]
                self._live_bytes -= replaced[2]
            self._index[key] = (seg_index, offset, len(record))
            self._live_bytes += len(record)

    def put_many(self, items: Sequence[Tuple[bytes, bytes]]) -> None:
        for key, record in items:
            self.put(key, record)

    def get(self, key: bytes) -> Optional[bytes]:
        with self._lock:
            location = self._index.get(key)
            if location is None:
                return None
            seg_index, offset, length = location
            return bytes(self._segments[seg_index].buf[offset:offset + length])

    def contains(self, key: bytes) -> bool:
        with self._lock:
            return key in self._index

    def delete(self, key: bytes) -> bool:
        with self._lock:
            location = self._index.pop(key, None)
            if location is None:
                return False
            self._live_bytes -= location[2]
            self._dead_bytes += location[2]
            return True

    def scan(self, prefix: bytes) -> List[bytes]:
        with self._lock:
            return [key for key in self._index if key.startswith(prefix)]

    def share(self, key: bytes) -> Tuple[str, str, int, int]:
        """-> ``("shm", segment name, offset, length)`` — picklable, tiny.

        Valid until this store is closed; the addressed bytes are never
        rewritten (overwrites append), so a stale locator reads the old
        record rather than garbage.
        """
        with self._lock:
            location = self._index.get(key)
            if location is None:
                raise KeyError(f"no record under {key!r}")
            seg_index, offset, length = location
            return ("shm", self._segments[seg_index].name, offset, length)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._index.clear()
        self._finalizer()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "kind": self.kind,
                "remote": self.remote,
                "entries": len(self._index),
                "payload_bytes": self._live_bytes,
                "dead_bytes": self._dead_bytes,
                "segments": len(self._segments),
                "segment_bytes": sum(s.size for s in self._segments),
            }
