"""Cross-cutting integration tests.

These exercise full pipelines across module boundaries: AMPC vs MPC vs
sequential agreement on the scaled datasets, fault injection end to end,
communication-budget enforcement on a real algorithm, and the strict AMPC
round semantics.
"""

import pytest

from repro.ampc import AMPCRuntime, ClusterConfig, FaultPlan
from repro.ampc.runtime import BudgetExceededError
from repro.analysis.datasets import load_dataset, load_weighted_dataset
from repro.baselines import (
    mpc_boruvka_msf,
    mpc_local_contraction_cc,
    mpc_rootset_matching,
    mpc_rootset_mis,
)
from repro.core import (
    ampc_connected_components,
    ampc_maximal_matching,
    ampc_mis,
    ampc_msf,
    vertex_ranks,
)
from repro.graph.properties import connected_components
from repro.sequential import greedy_mis, kruskal_msf
from repro.sequential.validate import components_equal

CONFIG = ClusterConfig(num_machines=6)
SCALE = 0.125  # tiny copies of the benchmark datasets


@pytest.mark.parametrize("name", ["OK-S", "TW-S", "CW-S"])
def test_three_way_mis_agreement(name):
    """AMPC, MPC and sequential greedy agree on scaled real-ish inputs."""
    graph = load_dataset(name, scale=SCALE)
    expected = greedy_mis(graph, vertex_ranks(graph.num_vertices, seed=3))
    ampc = ampc_mis(graph, config=CONFIG, seed=3)
    mpc = mpc_rootset_mis(graph, config=CONFIG, seed=3,
                          in_memory_threshold=max(64, graph.num_edges // 20))
    assert ampc.independent_set == expected
    assert mpc.independent_set == expected


@pytest.mark.parametrize("name", ["OK-S", "CW-S"])
def test_msf_agreement_on_datasets(name):
    graph = load_weighted_dataset(name, scale=SCALE)
    expected = sorted(kruskal_msf(graph))
    ampc = ampc_msf(graph, config=CONFIG, seed=3)
    mpc = mpc_boruvka_msf(graph, config=CONFIG, seed=3,
                          in_memory_threshold=max(64, graph.num_edges // 20))
    assert ampc.forest == expected
    assert sorted(mpc.forest) == expected


@pytest.mark.parametrize("name", ["TW-S", "HL-S"])
def test_connectivity_agreement_on_datasets(name):
    graph = load_dataset(name, scale=SCALE)
    expected = connected_components(graph)
    ampc = ampc_connected_components(graph, config=CONFIG, seed=3)
    mpc = mpc_local_contraction_cc(
        graph, config=CONFIG, seed=3,
        in_memory_threshold=max(64, graph.num_edges // 20))
    assert components_equal(ampc.labels, expected)
    assert components_equal(mpc.labels, expected)


def test_matching_agreement_on_dataset():
    graph = load_dataset("FS-S", scale=SCALE)
    ampc = ampc_maximal_matching(graph, config=CONFIG, seed=3)
    mpc = mpc_rootset_matching(graph, config=CONFIG, seed=3,
                               in_memory_threshold=max(64, graph.num_edges // 20))
    assert ampc.matching == mpc.matching


class TestFaultInjectionEndToEnd:
    def test_outputs_unchanged_under_preemptions(self):
        graph = load_dataset("OK-S", scale=SCALE)
        clean = ampc_mis(graph, config=CONFIG, seed=5)
        for probability in (0.2, 0.5):
            plan = FaultPlan(preempt_probability=probability, seed=7)
            runtime = AMPCRuntime(config=CONFIG, fault_plan=plan)
            faulty = ampc_mis(graph, runtime=runtime, seed=5)
            assert faulty.independent_set == clean.independent_set
            assert faulty.metrics.preemptions > 0
            assert (faulty.metrics.simulated_time_s
                    >= clean.metrics.simulated_time_s)

    def test_mpc_baseline_also_fault_tolerant(self):
        graph = load_dataset("OK-S", scale=SCALE)
        clean = mpc_rootset_mis(graph, config=CONFIG, seed=5,
                                in_memory_threshold=64)
        plan = FaultPlan(preempt_probability=0.3, seed=9)
        faulty = mpc_rootset_mis(graph, config=CONFIG, fault_plan=plan,
                                 seed=5, in_memory_threshold=64)
        assert faulty.independent_set == clean.independent_set
        assert faulty.metrics.preemptions > 0


class TestBudgetEnforcement:
    def test_unbudgeted_search_can_blow_the_limit(self):
        """A machine-level O(S) budget trips the untruncated algorithm on a
        big enough instance — the reason the theory algorithms truncate."""
        graph = load_dataset("OK-S", scale=0.25)
        config = CONFIG.with_overrides(query_budget_per_machine=50)
        with pytest.raises(BudgetExceededError):
            ampc_mis(graph, config=config, seed=1)

    def test_generous_budget_passes(self):
        graph = load_dataset("OK-S", scale=SCALE)
        config = CONFIG.with_overrides(
            query_budget_per_machine=10 * graph.num_edges
        )
        result = ampc_mis(graph, config=config, seed=1)
        assert result.independent_set

    def test_budget_tracking_in_metrics(self):
        graph = load_dataset("OK-S", scale=SCALE)
        result = ampc_mis(graph, config=CONFIG, seed=1)
        assert result.metrics.max_machine_queries_per_stage > 0


class TestDeterminism:
    def test_full_pipeline_deterministic(self):
        graph = load_weighted_dataset("TW-S", scale=SCALE)
        a = ampc_msf(graph, config=CONFIG, seed=4)
        b = ampc_msf(graph, config=CONFIG, seed=4)
        assert a.forest == b.forest
        assert a.metrics.kv_reads == b.metrics.kv_reads
        assert a.metrics.simulated_time_s == b.metrics.simulated_time_s

    def test_different_seeds_same_answer_size_class(self):
        graph = load_weighted_dataset("TW-S", scale=SCALE)
        a = ampc_msf(graph, config=CONFIG, seed=4)
        b = ampc_msf(graph, config=CONFIG, seed=5)
        # The MSF is weight-unique, hence seed-independent.
        assert a.forest == b.forest
