"""Core graph data structures.

Vertices are dense integers ``0..n-1``.  Both classes store an adjacency map
per vertex; :class:`WeightedGraph` maps each neighbor to the edge weight.
Insertion order is deterministic, and all algorithms in the repository that
depend on ordering sort explicitly, so results are reproducible across runs.

Both classes keep an **edge-delta journal**: every edge mutation appends an
``(op, u, v[, w])`` record keyed by the ``content_version`` it produced, so
a consumer holding an older version (a Session cache entry, a serving
worker) can recover the exact mutation batch between two versions with
:meth:`Graph.delta_since` — in O(batch), without an O(m) edge-set diff.
The journal is bounded (:attr:`Graph.journal_limit`); once trimmed past the
requested version, ``delta_since`` returns None and consumers fall back to
a full diff-by-fingerprint (i.e. a from-scratch re-prepare).  Mutations the
journal does not model (``add_vertex``) invalidate it entirely.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

EdgeTuple = Tuple[int, int]
WeightedEdgeTuple = Tuple[int, int, float]

#: default cap on retained journal records (see :attr:`Graph.journal_limit`)
DEFAULT_JOURNAL_LIMIT = 4096


def edge_key(u: int, v: int) -> EdgeTuple:
    """Canonical undirected edge identifier ``(min(u, v), max(u, v))``."""
    if u <= v:
        return (u, v)
    return (v, u)


class _JournalMixin:
    """The bounded edge-delta journal shared by both graph classes.

    ``_journal`` holds ``(content_version, op_record)`` pairs in version
    order; ``_journal_floor`` is the oldest version the journal can still
    replay *from*.  The invariant: every content_version bump greater than
    the floor has exactly one journal record.
    """

    def _init_journal(self) -> None:
        self._journal: List[Tuple[int, Tuple]] = []
        self._journal_floor = 0
        self._journal_limit = DEFAULT_JOURNAL_LIMIT

    @property
    def journal_limit(self) -> int:
        """Max retained journal records; 0 disables journaling entirely."""
        return self._journal_limit

    @journal_limit.setter
    def journal_limit(self, limit: int) -> None:
        self._journal_limit = max(0, int(limit))
        if self._journal_limit == 0:
            self._invalidate_journal()
        elif len(self._journal) > self._journal_limit:
            self._trim_journal(len(self._journal) - self._journal_limit)

    @property
    def journal_floor(self) -> int:
        """The oldest ``content_version`` :meth:`delta_since` can serve."""
        return self._journal_floor

    def _record(self, op: Tuple) -> None:
        """Journal one mutation; call *after* bumping content_version."""
        limit = self._journal_limit
        if limit <= 0:
            self._journal_floor = self.content_version
            return
        self._journal.append((self.content_version, op))
        # Trim in blocks so graph construction stays amortized O(1) per
        # edge (a per-append del of one element would be O(limit) each).
        if len(self._journal) >= 2 * limit:
            self._trim_journal(len(self._journal) - limit)

    def _trim_journal(self, drop: int) -> None:
        self._journal_floor = self._journal[drop - 1][0]
        del self._journal[:drop]

    def _invalidate_journal(self) -> None:
        """Forget all history (a mutation the journal does not model)."""
        self._journal.clear()
        self._journal_floor = self.content_version

    def delta_since(self, version: Optional[int]) -> Optional[List[Tuple]]:
        """Edge mutations after ``version``, oldest first; None if lost.

        Records are ``("add", u, v)`` / ``("remove", u, v)`` (plus the
        weight on weighted adds and ``("weight", u, v, w)`` for in-place
        weight changes), endpoints in canonical ``u < v`` order.  Returns
        ``[]`` when ``version`` is current, and None when the journal was
        truncated past ``version`` (or ``version`` is unknown) — the
        caller must fall back to a full rebuild.
        """
        if version is None or not isinstance(version, int):
            return None
        if version == self.content_version:
            return []
        if version < self._journal_floor or version > self.content_version:
            return None
        # the journal is version-sorted: O(log journal + batch)
        start = bisect_right(self._journal, version,
                             key=lambda entry: entry[0])
        return [op for _v, op in self._journal[start:]]


class Graph(_JournalMixin):
    """An undirected, unweighted graph over vertices ``0..n-1``.

    The representation is an adjacency set per vertex.  Self loops are
    rejected; parallel edges collapse.  ``num_vertices`` counts the vertex-id
    space, including isolated vertices.
    """

    def __init__(self, num_vertices: int = 0):
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._adj: List[set] = [set() for _ in range(num_vertices)]
        self._num_edges = 0
        #: bumped by every mutator; a cheap staleness signal that lets
        #: consumers (e.g. the Session fingerprint memo) skip re-walking
        #: an unchanged graph
        self.content_version = 0
        self._init_journal()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(cls, num_vertices: int, edges: Iterable[EdgeTuple]) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs."""
        graph = cls(num_vertices)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def add_vertex(self) -> int:
        """Append a fresh vertex and return its id."""
        self.content_version += 1
        self._adj.append(set())
        # Vertex-space growth is outside the edge-delta model: artifacts
        # keyed per vertex (ranks, records) change shape, so consumers
        # must rebuild from scratch.
        self._invalidate_journal()
        return len(self._adj) - 1

    def add_edge(self, u: int, v: int) -> bool:
        """Add undirected edge ``{u, v}``; returns False if it already existed."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self loop on vertex {u} is not allowed")
        if v in self._adj[u]:
            return False
        self.content_version += 1
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        self._record(("add",) + edge_key(u, v))
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove undirected edge ``{u, v}``; raises KeyError if absent."""
        self._adj[u].remove(v)
        self._adj[v].remove(u)
        self._num_edges -= 1
        self.content_version += 1
        self._record(("remove",) + edge_key(u, v))

    # -- queries -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def has_edge(self, u: int, v: int) -> bool:
        if not (0 <= u < len(self._adj)):
            return False
        return v in self._adj[u]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        if not self._adj:
            return 0
        return max(len(neighbors) for neighbors in self._adj)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Neighbors of ``v`` in sorted order (deterministic)."""
        return tuple(sorted(self._adj[v]))

    def vertices(self) -> range:
        return range(len(self._adj))

    def edges(self) -> Iterator[EdgeTuple]:
        """Iterate undirected edges once each, as ``(u, v)`` with ``u < v``."""
        for u, neighbors in enumerate(self._adj):
            for v in sorted(neighbors):
                if u < v:
                    yield (u, v)

    def subgraph(self, vertices: Sequence[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph on ``vertices``; returns (graph, old->new id map)."""
        ordered = sorted(set(vertices))
        if ordered:
            # ordered is sorted, so the extremes bound every id (and catch
            # negative ids before Python's reverse indexing would).
            self._check_vertex(ordered[0])
            self._check_vertex(ordered[-1])
        relabel = {old: new for new, old in enumerate(ordered)}
        sub = Graph(len(ordered))
        sub._journal_limit = self._journal_limit
        for old in ordered:
            for neighbor in self._adj[old]:
                if neighbor in relabel and old < neighbor:
                    sub.add_edge(relabel[old], relabel[neighbor])
        return sub, relabel

    def copy(self) -> "Graph":
        clone = Graph(self.num_vertices)
        clone._adj = [set(neighbors) for neighbors in self._adj]
        clone._num_edges = self._num_edges
        clone._journal_limit = self._journal_limit
        return clone

    def csr(self):
        """Flat CSR snapshot of the adjacency, cached per content_version.

        The columnar fast paths (vectorized prepare stages, buffer-based
        fingerprints) all start from this snapshot; repeat calls on an
        unmutated graph are free.
        """
        from repro.graph.csr import CSRAdjacency
        cache = getattr(self, "_csr_cache", None)
        if cache is not None and cache[0] == self.content_version:
            return cache[1]
        snapshot = CSRAdjacency.from_adjacency(self._adj)
        self._csr_cache = (self.content_version, snapshot)
        return snapshot

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < len(self._adj)):
            raise IndexError(f"vertex {v} out of range [0, {len(self._adj)})")


class WeightedGraph(_JournalMixin):
    """An undirected graph with one float weight per edge.

    Edge weights need not be distinct: every ordering-sensitive consumer uses
    :meth:`weight_order_key`, a strict total order that breaks ties by the
    canonical endpoint pair.  Under this order the minimum spanning forest is
    unique, which Section 3 of the paper assumes throughout.
    """

    def __init__(self, num_vertices: int = 0):
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._adj: List[Dict[int, float]] = [dict() for _ in range(num_vertices)]
        self._num_edges = 0
        #: see :attr:`Graph.content_version`
        self.content_version = 0
        self._init_journal()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[WeightedEdgeTuple]
    ) -> "WeightedGraph":
        graph = cls(num_vertices)
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        return graph

    @classmethod
    def from_graph(cls, graph: Graph, weight_fn=None) -> "WeightedGraph":
        """Lift an unweighted graph; ``weight_fn(u, v) -> float`` (default 1)."""
        weighted = cls(graph.num_vertices)
        weighted._journal_limit = graph.journal_limit
        for u, v in graph.edges():
            weight = 1.0 if weight_fn is None else weight_fn(u, v)
            weighted.add_edge(u, v, weight)
        return weighted

    def add_vertex(self) -> int:
        self.content_version += 1
        self._adj.append(dict())
        self._invalidate_journal()  # see Graph.add_vertex
        return len(self._adj) - 1

    def add_edge(self, u: int, v: int, weight: float) -> bool:
        """Add edge ``{u, v}``; on a duplicate, keeps the smaller weight."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self loop on vertex {u} is not allowed")
        existing = self._adj[u].get(v)
        if existing is not None:
            if weight < existing:
                self.content_version += 1
                self._adj[u][v] = weight
                self._adj[v][u] = weight
                self._record(("weight",) + edge_key(u, v) + (weight,))
            return False
        self.content_version += 1
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._num_edges += 1
        self._record(("add",) + edge_key(u, v) + (weight,))
        return True

    def remove_edge(self, u: int, v: int) -> float:
        """Remove edge ``{u, v}``; returns its weight, KeyError if absent."""
        weight = self._adj[u].pop(v)
        del self._adj[v][u]
        self._num_edges -= 1
        self.content_version += 1
        self._record(("remove",) + edge_key(u, v))
        return weight

    # -- queries -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def has_edge(self, u: int, v: int) -> bool:
        if not (0 <= u < len(self._adj)):
            return False
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        return self._adj[u][v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        if not self._adj:
            return 0
        return max(len(neighbors) for neighbors in self._adj)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        return tuple(sorted(self._adj[v]))

    def neighbor_items(self, v: int) -> List[Tuple[int, float]]:
        """``(neighbor, weight)`` pairs sorted by the edge total order."""
        items = [(w, u) for u, w in self._adj[v].items()]
        items.sort(key=lambda pair: (pair[0],) + edge_key(v, pair[1]))
        return [(u, w) for w, u in items]

    def vertices(self) -> range:
        return range(len(self._adj))

    def edges(self) -> Iterator[WeightedEdgeTuple]:
        for u, neighbors in enumerate(self._adj):
            for v in sorted(neighbors):
                if u < v:
                    yield (u, v, neighbors[v])

    def weight_order_key(self, u: int, v: int) -> Tuple[float, int, int]:
        """Strict total order on edges: weight, then canonical endpoints."""
        return (self._adj[u][v],) + edge_key(u, v)

    def total_weight(self) -> float:
        return sum(w for _, _, w in self.edges())

    def unweighted(self) -> Graph:
        """Forget the weights."""
        graph = Graph(self.num_vertices)
        graph._journal_limit = self._journal_limit
        for u, v, _ in self.edges():
            graph.add_edge(u, v)
        return graph

    def subgraph_edges(
        self, edges: Iterable[EdgeTuple]
    ) -> "WeightedGraph":
        """Same vertex set, keeping only the given edges (weights copied)."""
        sub = WeightedGraph(self.num_vertices)
        sub._journal_limit = self._journal_limit
        for u, v in edges:
            sub.add_edge(u, v, self._adj[u][v])
        return sub

    def copy(self) -> "WeightedGraph":
        clone = WeightedGraph(self.num_vertices)
        clone._adj = [dict(neighbors) for neighbors in self._adj]
        clone._num_edges = self._num_edges
        clone._journal_limit = self._journal_limit
        return clone

    def csr(self):
        """Weighted CSR snapshot (weights aligned), cached per version."""
        from repro.graph.csr import CSRAdjacency
        cache = getattr(self, "_csr_cache", None)
        if cache is not None and cache[0] == self.content_version:
            return cache[1]
        snapshot = CSRAdjacency.from_adjacency(self._adj)
        self._csr_cache = (self.content_version, snapshot)
        return snapshot

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.num_vertices}, m={self.num_edges})"

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < len(self._adj)):
            raise IndexError(f"vertex {v} out of range [0, {len(self._adj)})")
