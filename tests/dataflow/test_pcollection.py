"""Tests for the dataflow engine."""

import pytest

from repro.ampc import ClusterConfig, DHTStore
from repro.dataflow import DoFn, Pipeline
from repro.dataflow.pcollection import BudgetExceededError


def make_pipeline(machines=4, **overrides):
    return Pipeline(config=ClusterConfig(num_machines=machines, **overrides))


class TestBasics:
    def test_from_items_and_collect(self):
        pipeline = make_pipeline()
        pcoll = pipeline.from_items([1, 2, 3])
        assert sorted(pcoll.collect()) == [1, 2, 3]
        assert pcoll.count() == 3
        assert not pcoll.is_empty()

    def test_from_items_no_charge(self):
        pipeline = make_pipeline()
        pipeline.from_items(range(100))
        assert pipeline.metrics.shuffles == 0
        assert pipeline.metrics.simulated_time_s == 0.0

    def test_keyed_placement(self):
        pipeline = make_pipeline()
        pcoll = pipeline.from_items(range(50), key_fn=lambda x: x)
        cluster = pipeline.cluster
        for machine_id, part in enumerate(pcoll._partitions):
            assert all(cluster.machine_for(x) == machine_id for x in part)

    def test_empty(self):
        pipeline = make_pipeline()
        assert pipeline.empty().is_empty()


class TestParDo:
    def test_map(self):
        pipeline = make_pipeline()
        out = pipeline.from_items([1, 2, 3]).map_elements(lambda x: x * 2)
        assert sorted(out.collect()) == [2, 4, 6]

    def test_flat_map(self):
        pipeline = make_pipeline()
        out = pipeline.from_items([2, 3]).flat_map(range)
        assert sorted(out.collect()) == [0, 0, 1, 1, 2]

    def test_filter(self):
        pipeline = make_pipeline()
        out = pipeline.from_items(range(10)).filter_elements(lambda x: x % 2 == 0)
        assert sorted(out.collect()) == [0, 2, 4, 6, 8]

    def test_par_do_stays_on_machine(self):
        pipeline = make_pipeline()
        pcoll = pipeline.from_items(range(20), key_fn=lambda x: x)
        before = pcoll.partition_sizes()
        after = pcoll.map_elements(lambda x: x).partition_sizes()
        assert before == after

    def test_par_do_charges_time_not_shuffles(self):
        pipeline = make_pipeline()
        pipeline.from_items(range(10)).map_elements(lambda x: x)
        assert pipeline.metrics.shuffles == 0
        assert pipeline.metrics.simulated_time_s > 0

    def test_start_machine_called_once_per_machine(self):
        calls = []

        class Tracking(DoFn):
            def start_machine(self, ctx):
                calls.append(ctx.machine_id)

            def process(self, element, ctx):
                return ()

        pipeline = make_pipeline(machines=3)
        pipeline.from_items(range(9)).par_do(Tracking())
        assert sorted(calls) == [0, 1, 2]


class TestShuffles:
    def test_group_by_key(self):
        pipeline = make_pipeline()
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        grouped = dict(pipeline.from_items(pairs).group_by_key().collect())
        assert sorted(grouped["a"]) == [1, 3]
        assert grouped["b"] == [2]
        assert pipeline.metrics.shuffles == 1
        assert pipeline.metrics.shuffle_bytes > 0

    def test_group_places_by_key_hash(self):
        pipeline = make_pipeline()
        grouped = pipeline.from_items([(i, i) for i in range(40)]).group_by_key()
        cluster = pipeline.cluster
        for machine_id, part in enumerate(grouped._partitions):
            assert all(cluster.machine_for(k) == machine_id for k, _ in part)

    def test_repartition(self):
        pipeline = make_pipeline()
        pcoll = pipeline.from_items(range(40)).repartition(lambda x: x // 10)
        assert pipeline.metrics.shuffles == 1
        assert sorted(pcoll.collect()) == list(range(40))

    def test_to_single_machine(self):
        pipeline = make_pipeline()
        gathered = pipeline.from_items(range(10)).to_single_machine()
        assert gathered.partition_sizes()[0] == 10
        assert sum(gathered.partition_sizes()[1:]) == 0
        assert pipeline.metrics.shuffles == 1

    def test_flatten_is_free(self):
        pipeline = make_pipeline()
        a = pipeline.from_items([1, 2])
        b = pipeline.from_items([3])
        shuffles_before = pipeline.metrics.shuffles
        merged = a.flatten_with(b)
        assert sorted(merged.collect()) == [1, 2, 3]
        assert pipeline.metrics.shuffles == shuffles_before


class TestKVAccess:
    def test_lookup_and_write_metered(self):
        pipeline = make_pipeline()
        store = DHTStore("s", num_shards=4)
        store.write_all([(i, i * 10) for i in range(10)])
        store.seal()

        class Reader(DoFn):
            def process(self, element, ctx):
                yield ctx.lookup(store, element)

        out = pipeline.from_items(range(10)).par_do(Reader())
        assert sorted(out.collect()) == [i * 10 for i in range(10)]
        assert pipeline.metrics.kv_reads == 10
        assert pipeline.metrics.kv_read_bytes > 0

    def test_budget_enforced(self):
        pipeline = make_pipeline(machines=1, query_budget_per_machine=5)
        store = DHTStore("s", num_shards=1)
        store.write("k", 1)
        store.seal()

        class Chatty(DoFn):
            def process(self, element, ctx):
                for _ in range(10):
                    ctx.lookup(store, "k")
                return ()

        with pytest.raises(BudgetExceededError):
            pipeline.from_items([0]).par_do(Chatty())

    def test_cache_hit_accounting(self):
        pipeline = make_pipeline()

        class Cachey(DoFn):
            def process(self, element, ctx):
                ctx.note_cache_hit()
                return ()

        pipeline.from_items(range(8)).par_do(Cachey())
        assert pipeline.metrics.cache_hits == 8


class TestDriverFallback:
    def test_run_on_driver_charges_time(self):
        pipeline = make_pipeline()
        before = pipeline.metrics.simulated_time_s
        pipeline.run_on_driver(10**8)
        assert pipeline.metrics.simulated_time_s > before
