"""Quickstart: the core AMPC algorithms through the unified Session API.

Run with::

    python examples/quickstart.py

Builds a small social-network-like graph, opens a :class:`repro.Session`
(one simulated cluster serving many queries), and runs maximal independent
set, maximal matching, minimum spanning forest and connected components —
each in a constant number of adaptive rounds — printing the outputs and
the execution metrics (shuffles, KV traffic, simulated time) the paper's
evaluation revolves around.  The final section shows the point of the
session: a repeated query on the same graph reuses the DHT-resident
preprocessing and skips its shuffle entirely.
"""

from repro import ClusterConfig, Session
from repro.graph import barabasi_albert_graph, degree_weighted
from repro.sequential import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_spanning_forest,
)


def main():
    # A 500-vertex preferential-attachment graph: hubs and a heavy tail,
    # like the social networks in the paper's Table 2.
    graph = barabasi_albert_graph(500, attach=3, seed=7)
    print(f"input graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges, max degree {graph.max_degree()}")

    # One session = one simulated cluster (10 machines x 72 hyper-threads,
    # RDMA-backed DHT, caching + multithreading on) serving every query.
    session = Session(ClusterConfig(num_machines=10,
                                    threads_per_machine=72))
    print(f"registered algorithms: {', '.join(session.algorithms())}")

    print("\n--- Maximal Independent Set (Section 5.3) ---")
    mis = session.run("mis", graph, seed=1)
    assert is_maximal_independent_set(graph, mis.output.independent_set)
    print(mis.description)
    print(f"shuffles = {mis.metrics['shuffles']}  "
          f"KV reads = {mis.metrics['kv_reads']:,}  "
          f"simulated time = {mis.metrics['simulated_time_s']:.3f}s")

    print("\n--- Maximal Matching (Theorem 2) ---")
    matching = session.run("matching", graph, seed=1)
    assert is_maximal_matching(graph, matching.output.matching)
    print(matching.description)
    print(f"shuffles = {matching.metrics['shuffles']}")

    print("\n--- Minimum Spanning Forest (Theorem 1) ---")
    weighted = degree_weighted(graph)  # the paper's deg(u)+deg(v) weights
    msf = session.run("msf", weighted, seed=1)
    assert is_spanning_forest(graph, msf.output.forest)
    print(msf.description)
    print(f"shuffles = {msf.metrics['shuffles']} (Table 3 says 5); "
          f"Prim-discovered edges = {msf.output.prim_edges}, "
          f"contracted graph had {msf.output.contracted_vertices} vertices")

    print("\n--- Connected Components (Theorem 1) ---")
    components = session.run("components", graph, seed=1)
    print(components.description)

    print("\n--- Cross-run reuse: the session's preprocessing cache ---")
    again = session.run("mis", graph, seed=1)
    assert again.preprocessing_reused
    assert again.output.independent_set == mis.output.independent_set
    assert again.metrics["shuffles"] < mis.metrics["shuffles"]
    print(f"second MIS run: shuffles = {again.metrics['shuffles']} "
          f"(saved {again.shuffles_saved}), same output — the directed "
          f"graph already lives in the DHT")
    stats = session.stats
    print(f"session totals: {stats.runs} runs, "
          f"{stats.preprocessing_hits} cache hit(s), "
          f"{stats.shuffles_saved} shuffle(s) and "
          f"{stats.kv_writes_saved:,} KV write(s) saved")


if __name__ == "__main__":
    main()
