"""Theory checks for Section 3: Lemma 3.3 / 3.4 and the KKT reduction.

These reproduce the paper's analytical claims empirically:

* **Lemma 3.3** — one TruncatedPrim round on a ternarized graph shrinks the
  vertex count by a factor Omega(n^{eps/2}).
* **Lemma 3.4** — Algorithm 1 makes O(n log n) queries; via Lemma A.2 the
  per-vertex query cost is bounded by the ternary treap subtree size, whose
  height is O(log n) w.h.p. (Lemma A.1).
* **Lemma 3.10** — the KKT reduction's query count beats the direct
  O(m log n) bound on dense graphs.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.ampc.runtime import AMPCRuntime
from repro.analysis.experiment import bench_config
from repro.analysis.reporting import Table
from repro.core.kkt import kkt_msf
from repro.core.msf import _default_budget, truncated_prim_round
from repro.core.ranks import vertex_ranks
from repro.graph.generators import erdos_renyi_gnm, random_weighted
from repro.graph.ternarize import ternarize
from repro.trees.treap import build_ternary_treap
from repro.sequential.mst import kruskal_msf


def test_lemma33_contraction_shrink(benchmark):
    """One TruncatedPrim round shrinks vertices by ~n^(eps/2)."""

    def compute():
        rows = []
        for n in (1024, 4096, 16384):
            graph = random_weighted(erdos_renyi_gnm(n, 2 * n, seed=n), seed=n)
            tern = ternarize(graph)
            t_graph = tern.graph
            budget = _default_budget(t_graph.num_vertices, 0.5)
            runtime = AMPCRuntime(config=bench_config())
            _, __, contracted_n = truncated_prim_round(
                t_graph, runtime=runtime, seed=1, budget=budget
            )
            queries = runtime.metrics.kv_reads
            rows.append((n, t_graph.num_vertices, budget, contracted_n,
                         queries))
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        "Lemma 3.3 / 3.4: TruncatedPrim shrink factor and query count",
        ["n", "ternarized n", "budget n^(eps/2)", "contracted n",
         "shrink factor", "KV queries", "queries / (n log n)"],
    )
    for n, tn, budget, contracted, queries in rows:
        shrink = tn / max(1, contracted)
        ratio = queries / (tn * math.log2(max(2, tn)))
        table.add_row(n, tn, budget, contracted, f"{shrink:.1f}x", queries,
                      f"{ratio:.3f}")
    table.show()

    for n, tn, budget, contracted, queries in rows:
        # Lemma 3.3: shrink by a constant fraction of the budget.
        assert tn / max(1, contracted) > budget / 4
        # Lemma 3.4: O(n log n) queries with a small constant.
        assert queries <= 2 * tn * math.log2(max(2, tn))


def test_lemma_a1_treap_height(benchmark):
    """Treap depth structure on the trees the algorithm actually explores.

    **Reproduction finding** (recorded in EXPERIMENTS.md): Lemma A.1's
    O(log n) *height* bound does not hold for arbitrary degree<=3 trees —
    on a complete binary tree the expected depth is Sum_j 1/(dist+1), which
    is super-logarithmic when balls grow exponentially; we measure ~n/log n
    heights there.  On *path-like* trees (the cycle-connectivity setting of
    [19] the lemma generalizes from) the height is the classic random-BST
    O(log n).  The bound that matters for Theorem 1 is the *total query*
    bound of Lemma 3.4 (checked above at ~0.35 n log2 n), and the
    algorithm's explicit n^{eps/2} truncation caps the worst case
    regardless.
    """

    def compute():
        rows = []
        # Path-like trees: classic logarithmic treap heights.
        for n in (4096, 32768):
            edges = [(i, i + 1) for i in range(n - 1)]
            treap = build_ternary_treap(n, edges, vertex_ranks(n, seed=n))
            rows.append(("path", n, treap.height()))
        # Balanced ternary trees: the adversarial case where the stated
        # height bound degenerates.
        for depth in (9, 12):
            n = 2 ** depth - 1
            edges = [((i - 1) // 2, i) for i in range(1, n)]
            treap = build_ternary_treap(n, edges, vertex_ranks(n, seed=n))
            rows.append(("complete-binary", n, treap.height()))
        # Ternarized MSF trees (the algorithm's instances): intermediate.
        for n in (1024, 8192):
            graph = random_weighted(erdos_renyi_gnm(n, 2 * n, seed=n), seed=n)
            tern = ternarize(graph.subgraph_edges(kruskal_msf(graph)))
            forest_t = kruskal_msf(tern.graph)
            t_n = tern.graph.num_vertices
            treap = build_ternary_treap(t_n, forest_t,
                                        vertex_ranks(t_n, seed=n))
            rows.append(("ternarized-msf", t_n, treap.height()))
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        "Lemma A.1: treap heights by tree family",
        ["Family", "n", "Height", "Height / log2 n"],
    )
    for family, n, height in rows:
        table.add_row(family, n, height, f"{height / math.log2(n):.2f}")
    table.show()

    for family, n, height in rows:
        if family == "path":
            # Random-BST regime: the lemma's bound holds.
            assert height <= 8 * math.log2(n)
        else:
            # Sub-linear in all cases (the truncation keeps the algorithm
            # safe), but super-logarithmic on balanced trees.
            assert height < n / 4
    binary = [(n, h) for family, n, h in rows if family == "complete-binary"]
    assert binary[-1][1] > 8 * math.log2(binary[-1][0])


def test_lemma310_kkt_query_reduction(benchmark):
    """Algorithm 3 beats the direct O(m log n) query bound when m >> n."""

    def compute():
        rows = []
        for n, m in ((256, 8192), (512, 32768)):
            graph = random_weighted(erdos_renyi_gnm(n, m, seed=n), seed=n)
            result = kkt_msf(graph, config=bench_config(), seed=1)
            direct = m * math.log2(n)
            rows.append((n, m, result.total_queries, direct,
                         result.light_edges))
            assert result.forest == sorted(kruskal_msf(graph))
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        "Lemma 3.10: KKT query complexity vs direct m log n",
        ["n", "m", "KKT queries", "direct m log n", "F-light edges"],
    )
    for n, m, queries, direct, light in rows:
        table.add_row(n, m, queries, f"{direct:.0f}", light)
    table.show()
    for n, m, queries, direct, light in rows:
        assert queries < direct
        # The sampling lemma: O(n / p) = O(n log n) light edges.
        assert light <= 3 * n * math.log2(n)
