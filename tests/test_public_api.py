"""The top-level public API surface resolves and works end to end."""

import pytest

import repro


def test_version():
    assert repro.__version__


def test_every_export_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_unknown_attribute():
    with pytest.raises(AttributeError):
        repro.definitely_not_a_symbol


def test_dir_lists_exports():
    listing = dir(repro)
    assert "ampc_mis" in listing
    assert "ClusterConfig" in listing


def test_end_to_end_through_top_level():
    graph = repro.barabasi_albert_graph(60, attach=2, seed=1)
    config = repro.ClusterConfig(num_machines=4)
    mis = repro.ampc_mis(graph, config=config, seed=1)
    matching = repro.ampc_maximal_matching(graph, config=config, seed=1)
    forest = repro.ampc_msf(repro.degree_weighted(graph), config=config,
                            seed=1)
    assert mis.independent_set
    assert matching.matching
    assert len(forest.forest) == graph.num_vertices - 1
