"""AMPC Maximal Independent Set (Section 5.3).

The algorithm is the O(1)-round AMPC MIS of Behnezhad et al. (2019), which
the paper implements and evaluates as its first case study:

1. **DirectGraph** (the single shuffle): assign every vertex a hashed
   priority, sort each neighborhood, and keep only edges to *lower-rank*
   (higher-priority) neighbors.
2. **KV-Write**: write the directed graph to a DHT store.
3. **IsInMIS**: for every vertex, run the recursive query process of
   Yoshida et al.: ``v`` is in the MIS iff none of its lower-rank neighbors
   is in the MIS.  The recursion performs adaptive KV lookups — the AMPC
   capability — and is memoized by the per-machine *caching* optimization
   when enabled (Section 5.3).

Setting ``search_budget`` runs the theory variant instead: each round every
unresolved vertex is given a lookup budget of n^epsilon; searches that
exceed it park, resolved states are written to the next DHT, and the next
round resumes against them.  This is the O(1/epsilon)-round schedule of
[19] that the practical implementation collapses to 2 rounds.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.columnar import ColumnarRecords
from repro.ampc.dht import DHTStore
from repro.ampc.metrics import Metrics
from repro.ampc.runtime import AMPCRuntime
from repro.ampc.vector import (HAVE_NUMPY, np, placement_ids,
                               vertex_ranks_u64)
from repro.api.incremental import patch_records, touched_vertices
from repro.api.registry import AlgorithmSpec, ParamSpec, register_algorithm
from repro.core.ranks import vertex_ranks
from repro.dataflow.columnar import (charge_map_stage, partition_boxed,
                                     roundrobin_counts, write_columnar_store)
from repro.dataflow.dofn import DoFn, MachineContext
from repro.graph.graph import Graph

#: sentinel meaning "this search exceeded its budget this round"
_PARKED = object()

#: per-store memo of whole query-process outcomes.  Against a sealed
#: plain sim store, machine ``m``'s element sequence — and with it the
#: per-machine cache's evolution — is a deterministic function of (store
#: content, budget, machine count), so element ``i``'s outcome and its
#: exact charge profile (cache hits, KV reads/bytes, per-shard
#: contention bumps) replay verbatim on any later run against the same
#: store; see the identical construction in :mod:`repro.core.matching`.
_RESOLVE_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


@dataclass
class MISResult:
    """Output of an AMPC MIS run."""

    independent_set: Set[int]
    metrics: Metrics
    #: number of AMPC rounds the run used (2 for the practical variant)
    rounds: int = 0
    #: vertex ranks used (shared with baselines for cross-checking)
    ranks: List[float] = field(default_factory=list)


def _direct_neighbors(vertex: int, neighbors: Sequence[int],
                      ranks: Sequence[float]) -> Tuple[int, ...]:
    """Lower-rank neighbors of ``vertex``, sorted by ascending rank."""
    me = (ranks[vertex], vertex)
    lower = [u for u in neighbors if (ranks[u], u) < me]
    lower.sort(key=lambda u: (ranks[u], u))
    return tuple(lower)


class _IsInMIS(DoFn):
    """The recursive query process, implemented with an explicit stack.

    ``resolved_store`` (theory variant only) holds states committed in
    earlier rounds; consulting it costs a KV read like any other lookup.
    """

    def __init__(self, store: DHTStore, *,
                 resolved_store: Optional[DHTStore] = None,
                 budget: Optional[int] = None):
        self._store = store
        self._resolved_store = resolved_store
        self._budget = budget
        self._cache: Optional[Dict[int, bool]] = None
        self._resolve_memo = None
        if resolved_store is None and type(store) is DHTStore:
            try:
                per_store = _RESOLVE_MEMO.setdefault(store, {})
            except TypeError:  # a store that cannot be weakly referenced
                per_store = None
            if per_store is not None:
                self._resolve_memo = per_store.setdefault(budget, {})
        self._elem_index = 0

    def start_machine(self, ctx: MachineContext) -> None:
        self._cache = {} if ctx.caching_enabled else None
        self._elem_index = 0

    def process(self, element, ctx):
        vertex, directed_neighbors = element
        # whole-element replay only holds with the per-machine cache on
        # (its evolution is part of the recorded charge profile)
        memo = self._resolve_memo if self._cache is not None else None
        if memo is None:
            state = self._resolve(vertex, directed_neighbors, ctx)
        else:
            index = self._elem_index
            self._elem_index = index + 1
            key = (ctx.cluster.config.num_machines, ctx.machine_id, index,
                   vertex)
            entry = memo.get(key)
            shard_reads = self._store.shard_reads
            if entry is not None:
                state, hits, reads, read_bytes, shard_deltas = entry
                work = ctx.work
                work.cache_hits += hits
                work.kv_reads += reads
                work.kv_read_bytes += read_bytes
                for shard, delta in shard_deltas:
                    shard_reads[shard] += delta
            else:
                work = ctx.work
                hits0 = work.cache_hits
                reads0 = work.kv_reads
                bytes0 = work.kv_read_bytes
                shards0 = list(shard_reads)
                state = self._resolve(vertex, directed_neighbors, ctx)
                memo[key] = (
                    state,
                    work.cache_hits - hits0,
                    work.kv_reads - reads0,
                    work.kv_read_bytes - bytes0,
                    tuple((shard, after - before) for shard, (after, before)
                          in enumerate(zip(shard_reads, shards0))
                          if after != before),
                )
        if state is _PARKED:
            yield ("parked", vertex, directed_neighbors)
        elif state:
            yield ("in", vertex, ())

    # -- the query process -------------------------------------------------

    def _known_state(self, vertex: int, ctx: MachineContext):
        """Cache, then the resolved-states DHT; None when unknown."""
        if self._cache is not None and vertex in self._cache:
            ctx.note_cache_hit()
            return self._cache[vertex]
        if self._resolved_store is not None:
            state = ctx.lookup(self._resolved_store, vertex)
            if state is not None:
                if self._cache is not None:
                    self._cache[vertex] = state
                return state
        return None

    def _remember(self, vertex: int, state: bool) -> None:
        if self._cache is not None:
            self._cache[vertex] = state

    def _resolve(self, root: int, root_neighbors: Sequence[int],
                 ctx: MachineContext):
        known_state = self._known_state
        remember = self._remember
        known = known_state(root, ctx)
        if known is not None:
            return known
        store = self._store
        lookup = ctx.lookup
        budget = self._budget
        lookups = 0
        # Each frame is [vertex, directed neighbors, next neighbor index].
        frames: List[List] = [[root, root_neighbors, 0]]
        returning: Optional[bool] = None
        while frames:
            frame = frames[-1]
            vertex, neighbors, index = frame
            if returning is not None:
                # A child finished: IN kicks the parent out of the MIS.
                child_in, returning = returning, None
                if child_in:
                    remember(vertex, False)
                    frames.pop()
                    returning = False
                    continue
                index += 1
                frame[2] = index
            descended = False
            while index < len(neighbors):
                neighbor = neighbors[index]
                known = known_state(neighbor, ctx)
                if known is True:
                    remember(vertex, False)
                    frames.pop()
                    returning = False
                    descended = True
                    break
                if known is False:
                    index += 1
                    frame[2] = index
                    continue
                if budget is not None and lookups >= budget:
                    return _PARKED
                fetched = lookup(store, neighbor)
                lookups += 1
                frames.append([neighbor, fetched or (), 0])
                descended = True
                break
            if descended:
                continue
            # Every lower-rank neighbor is out: vertex joins the MIS.
            remember(vertex, True)
            frames.pop()
            returning = True
        return returning


@dataclass
class PreparedMIS:
    """The DHT-resident rank-directed graph (Figure 1, steps 1-2).

    A :class:`~repro.api.session.Session` caches this across runs: the
    store is sealed (read-only), so later runs on other runtimes may read
    it freely.
    """

    seed: int
    ranks: List[float]
    #: ``(vertex, lower-rank neighbors)`` records, for free re-placement
    records: List[Tuple[int, Tuple[int, ...]]]
    store: DHTStore
    #: ``(num_machines, per-record machine ids)`` precomputed by the
    #: columnar prepare (None on the boxed path) — lets runs on the same
    #: cluster shape re-place records without re-hashing every key
    machines: Optional[Tuple[int, object]] = None


def _prepare_mis_columnar(graph, runtime: AMPCRuntime,
                          seed: int) -> PreparedMIS:
    """Columnar twin of :func:`prepare_mis`: same charges, flat arrays.

    The rank-directed graph is built by one vectorized mask + lexsort
    over the CSR edge columns instead of a per-vertex filter/sort, and
    the stage charges are replayed from per-machine counts
    (:mod:`repro.dataflow.columnar`).  Record order — and therefore the
    store's per-shard insertion order and every downstream metric — is
    the boxed pipeline's machine-major scan order, reproduced by sorting
    vertices by ``(machine, source partition, position)``.
    """
    metrics = runtime.metrics
    cluster = runtime.cluster
    num_machines = cluster.config.num_machines
    csr = graph.csr()
    n = csr.num_vertices
    rank_column = vertex_ranks_u64(n, seed)

    with metrics.phase("DirectGraph"):
        indptr = np.asarray(csr.indptr)
        dst = np.asarray(csr.indices)
        degrees = np.diff(indptr)
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        # keep u -> v iff (rank_v, v) < (rank_u, u), the lower-rank filter
        rank_src = rank_column[src]
        rank_dst = rank_column[dst]
        keep = (rank_dst < rank_src) | ((rank_dst == rank_src) & (dst < src))
        kept_src = src[keep]
        kept_dst = dst[keep]
        kept_rank = rank_dst[keep]
        # Scan order of the boxed repartition: the round-robin source
        # partition of vertex v is v % M, so machine m receives its
        # records sorted by (v % M, v); payload rows sort by (rank, id).
        keys = np.arange(n, dtype=np.int64)
        machines = placement_ids(keys, num_machines)
        record_order = np.lexsort((keys, keys % num_machines, machines))
        vertex_pos = np.empty(n, dtype=np.int64)
        vertex_pos[record_order] = np.arange(n, dtype=np.int64)
        edge_order = np.lexsort((kept_dst, kept_rank, vertex_pos[kept_src]))
        counts = np.bincount(kept_src, minlength=n)
        out_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts[record_order], out=out_indptr[1:])
        records = ColumnarRecords.ragged(
            keys[record_order], out_indptr, kept_dst[edge_order])
        record_machines = machines[record_order]
        # from_items is free; the map stage charges inputs + outputs, the
        # repartition charges one shuffle of the directed records' bytes.
        charge_map_stage(cluster, roundrobin_counts(n, num_machines))
        cluster.charge_shuffle(records.total_element_bytes())

    with metrics.phase("KV-Write"):
        store = runtime.new_store("mis-directed-graph")
        write_columnar_store(cluster, store, records, record_machines)
    runtime.next_round()
    return PreparedMIS(seed=seed, ranks=rank_column.tolist(),
                       records=records.items(), store=store,
                       machines=(num_machines, record_machines))


def prepare_mis(graph: Graph, *,
                runtime: Optional[AMPCRuntime] = None,
                config: Optional[ClusterConfig] = None,
                seed: int = 0) -> PreparedMIS:
    """Figure 1, steps 1-2: direct the graph by rank and write it to the DHT.

    This is the MIS preprocessing every query shares — one shuffle plus
    the KV-write round.
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    if HAVE_NUMPY and hasattr(graph, "csr"):
        return _prepare_mis_columnar(graph, runtime, seed)
    metrics = runtime.metrics
    ranks = vertex_ranks(graph.num_vertices, seed)

    # Round 1: build + shuffle the rank-directed graph (Figure 1, step 1).
    with metrics.phase("DirectGraph"):
        nodes = runtime.pipeline.from_items(
            [(v, graph.neighbors(v)) for v in graph.vertices()]
        )
        directed = nodes.map_elements(
            lambda record: (record[0], _direct_neighbors(record[0], record[1], ranks)),
            name="direct-edges",
        )
        directed = directed.repartition(lambda record: record[0],
                                        name="place-directed-graph")

    # Figure 1, step 2: write the directed graph to the key-value store.
    with metrics.phase("KV-Write"):
        store = runtime.new_store("mis-directed-graph")
        runtime.write_store(directed, store,
                            key_fn=lambda record: record[0],
                            value_fn=lambda record: record[1])
    runtime.next_round()
    return PreparedMIS(seed=seed, ranks=ranks, records=directed.collect(),
                       store=store)


def update_mis(prepared: PreparedMIS, graph: Graph, *,
               runtime: Optional[AMPCRuntime] = None,
               config: Optional[ClusterConfig] = None,
               seed: int = 0,
               insertions=(), deletions=()) -> PreparedMIS:
    """Patch the DHT-resident rank-directed graph after an edge batch.

    Only the batch's endpoints change their lower-rank neighbor lists (the
    ranks are a pure function of vertex id and seed), so their records are
    recomputed from the mutated graph and written into a derived
    copy-on-write child of the sealed store — O(batch) work, and the old
    artifact keeps serving its own cache entry untouched.
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    if prepared.seed != seed:
        raise ValueError(
            f"prepared input was built for seed {prepared.seed}, "
            f"this update uses seed {seed}"
        )
    metrics = runtime.metrics
    ranks = prepared.ranks
    touched = touched_vertices(insertions, deletions)
    with metrics.phase("PatchDirectedGraph"):
        patch = runtime.pipeline.from_items(
            [(v, _direct_neighbors(v, graph.neighbors(v), ranks))
             for v in touched]
        ).repartition(lambda record: record[0], name="place-directed-patch")
    with metrics.phase("KV-Patch"):
        store = runtime.derive_store(prepared.store)
        runtime.write_store(patch, store,
                            key_fn=lambda record: record[0],
                            value_fn=lambda record: record[1])
    runtime.next_round()
    return PreparedMIS(seed=seed, ranks=ranks,
                       records=patch_records(prepared.records,
                                             patch.collect()),
                       store=store)


def ampc_mis(graph: Graph, *,
             runtime: Optional[AMPCRuntime] = None,
             config: Optional[ClusterConfig] = None,
             seed: int = 0,
             search_budget: Optional[int] = None,
             max_rounds: int = 64,
             prepared: Optional[PreparedMIS] = None) -> MISResult:
    """Compute the lexicographically-first MIS of ``graph`` in AMPC.

    Without ``search_budget`` this is the practical 2-round implementation
    of Figure 1.  With it, the multi-round truncated theory schedule runs:
    budgets are enforced per search and unresolved vertices retry next
    round against the states committed so far.  Passing a ``prepared``
    artifact (from :func:`prepare_mis`) skips the preprocessing shuffle
    and KV-write entirely — the cross-run reuse the Session API builds on.
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    if prepared is None:
        prepared = prepare_mis(graph, runtime=runtime, seed=seed)
    elif prepared.seed != seed:
        raise ValueError(
            f"prepared input was built for seed {prepared.seed}, "
            f"this run uses seed {seed}"
        )
    ranks = prepared.ranks
    store = prepared.store
    rounds_before = metrics.rounds
    # Re-placing cached records is free: the data already lives in D0.
    if (prepared.machines is not None and prepared.machines[0]
            == runtime.cluster.config.num_machines):
        directed = partition_boxed(runtime.pipeline, prepared.records,
                                   prepared.machines[1])
    else:
        directed = runtime.pipeline.from_items(
            prepared.records, key_fn=lambda record: record[0]
        )

    # Figure 1, step 3 (+ theory retries when a budget is set).
    in_mis: Set[int] = set()
    pending = directed
    resolved_store: Optional[DHTStore] = None
    budget = search_budget
    if budget is not None:
        # Progress guarantee: the lowest-rank unresolved vertex must be able
        # to scan all of its (resolved) neighbors within one budget.
        budget = max(budget, graph.max_degree() + 1)
    rounds_used = 0
    while True:
        rounds_used += 1
        if rounds_used > max_rounds:
            raise RuntimeError(
                f"MIS did not converge within {max_rounds} rounds"
            )
        with metrics.phase("IsInMIS"):
            outcome = pending.par_do(
                _IsInMIS(store, resolved_store=resolved_store, budget=budget),
                name="is-in-mis",
            )
        parked = outcome.filter_elements(lambda r: r[0] == "parked",
                                         name="collect-parked")
        for tag, vertex, _neighbors in outcome.collect():
            if tag == "in":
                in_mis.add(vertex)
        if budget is None or parked.is_empty():
            runtime.next_round()
            break
        # Commit everything resolved so far to the next DHT and retry the
        # parked searches next round.
        with metrics.phase("CommitStates"):
            resolved_states = _resolved_states(graph, in_mis, parked)
            states = runtime.pipeline.from_items(resolved_states)
            next_store = runtime.new_store(f"mis-states-r{rounds_used}")
            runtime.write_store(states, next_store,
                                key_fn=lambda kv: kv[0],
                                value_fn=lambda kv: kv[1])
            resolved_store = next_store
        runtime.next_round()
        pending = parked.map_elements(lambda r: (r[1], r[2]),
                                      name="retry-parked")

    # The algorithm's round count: the preparation round (round 1, whether
    # executed here or served from a session cache) plus the query rounds.
    return MISResult(independent_set=in_mis, metrics=metrics,
                     rounds=metrics.rounds - rounds_before + 1, ranks=ranks)


def _resolved_states(graph: Graph, in_mis: Set[int], parked) -> List[Tuple[int, bool]]:
    """States known after a truncated round.

    A vertex is resolved OUT only once a neighbor is known IN; vertices
    neither IN nor adjacent to an IN vertex may still be undetermined, so
    only certain knowledge is committed.
    """
    parked_vertices = {record[1] for record in parked.collect()}
    states: List[Tuple[int, bool]] = []
    dominated: Set[int] = set()
    for vertex in in_mis:
        dominated.update(graph.neighbors(vertex))
    for vertex in graph.vertices():
        if vertex in in_mis:
            states.append((vertex, True))
        elif vertex in dominated:
            states.append((vertex, False))
        elif vertex not in parked_vertices:
            # Completed its search without joining: it is out.
            states.append((vertex, False))
    return states


def mpc_simulated_mis_shuffles(graph: Graph, seed: int = 0,
                               shuffle_cap: int = 100_000) -> int:
    """Shuffle count of simulating the AMPC MIS query process in plain MPC.

    Section 5.3 reports that mapping each KV lookup onto a shuffle needs
    over 1000 shuffles even on the smaller graphs, which is why the rootset
    algorithm is the MPC baseline.  Each *adaptive* lookup depends on the
    previous one, so the number of shuffles is the length of the longest
    chain of dependent lookups across all per-vertex searches — computed
    here by running the search sequentially per vertex and taking the max.
    """
    ranks = vertex_ranks(graph.num_vertices, seed)
    directed = {
        v: _direct_neighbors(v, graph.neighbors(v), ranks)
        for v in graph.vertices()
    }
    longest = 0
    for root in graph.vertices():
        lookups = 0
        frames: List[List] = [[root, directed[root], 0]]
        returning: Optional[bool] = None
        while frames:
            frame = frames[-1]
            vertex, neighbors, index = frame
            if returning is not None:
                child_in, returning = returning, None
                if child_in:
                    frames.pop()
                    returning = False
                    continue
                index += 1
                frame[2] = index
            if index < len(neighbors):
                lookups += 1
                if lookups >= shuffle_cap:
                    return shuffle_cap
                frames.append([neighbors[index], directed[neighbors[index]], 0])
            else:
                frames.pop()
                returning = True
        longest = max(longest, lookups)
    return longest


# ---------------------------------------------------------------------------
# Registry spec (the Session/CLI entry point)
# ---------------------------------------------------------------------------


def _summarize(result: MISResult, graph: Graph) -> Dict[str, int]:
    return {"output_size": len(result.independent_set),
            "rounds": result.rounds}


def _describe(result: MISResult, graph: Graph, params) -> str:
    return (f"maximal independent set: {len(result.independent_set)} "
            f"of {graph.num_vertices} vertices ({result.rounds} rounds)")


register_algorithm(AlgorithmSpec(
    name="mis",
    summary="maximal independent set",
    input_kind="graph",
    run=ampc_mis,
    prepare=prepare_mis,
    update=update_mis,
    summarize=_summarize,
    describe=_describe,
    params=(
        ParamSpec("search_budget", int, None,
                  "per-search KV lookup budget (runs the truncated "
                  "multi-round theory schedule)"),
    ),
    prep_seed_sensitive=True,  # the directed graph depends on the ranks
))
