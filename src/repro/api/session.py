"""Sessions: one simulated cluster serving many algorithm runs.

The point of the AMPC model (and of the paper's production setting) is that
the DHT-resident graph outlives a single query: every algorithm in Section
5 starts with the same "write the directed graph to the key-value store"
stage, and a serving system amortizes that stage across queries.

:class:`Session` is that amortization boundary.  It owns one
:class:`~repro.ampc.cluster.ClusterConfig` and a preprocessing cache keyed
by **graph content** (see :mod:`repro.api.fingerprint`): the first
``session.run("mis", graph)`` pays the preprocessing shuffle and KV
writes, a second run on an equal graph (and, where the artifact is
seed-independent, a run of a sibling algorithm sharing the same
preparation, e.g. ``pagerank`` and ``random-walks``) skips them and
reports the saving in its :class:`~repro.api.result.RunResult`.

Graphs can also be registered explicitly — ``session.load("web", graph)``
returns a :class:`GraphHandle` with the fingerprint computed once, and
later runs may refer to the graph by handle or by name.  Handles hold only
a weak reference, and cache entries store no graph at all, so dropping the
last caller reference actually releases the graph's memory.

The cache is optionally bounded: ``max_cache_bytes`` enforces an LRU
policy sized by the estimated bytes of each prepared artifact, with hits,
misses and evictions counted in :class:`SessionStats`.

Sessions are **thread-safe** and are what :class:`repro.serve.GraphService`
serves concurrent queries through.  Each run gets a **fresh** runtime
(:class:`~repro.ampc.runtime.AMPCRuntime`, or
:class:`~repro.mpc.runtime.MPCRuntime` for specs declaring
``model="mpc"``), so metrics are per-run; only sealed DHT stores and
driver-side artifacts are shared, which is exactly what the model allows
(sealed stores are read-only).  Concurrent cache misses on the same key
are deduplicated: one thread prepares, the others wait and take the hit.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.cost_model import estimate_bytes
from repro.ampc.dht import DerivedDHTStore, DHTStore
from repro.ampc.faults import FaultPlan
from repro.ampc.runtime import AMPCRuntime
from repro.distdht.backend import create_backend
from repro.api import registry
from repro.api.fingerprint import (FingerprintMemo, advance_lineage,
                                   graph_fingerprint)
from repro.api.result import RunResult
from repro.graph.graph import Graph, WeightedGraph
from repro.mpc.runtime import MPCRuntime


@dataclass
class SessionStats:
    """Cross-run accounting of one Session.

    The ``*_executed`` fields accumulate each run's own metrics, so under
    concurrency they must equal the sum of the per-run numbers — the
    invariant the serving stress tests assert.
    """

    runs: int = 0
    preprocessing_hits: int = 0
    preprocessing_misses: int = 0
    #: cache entries dropped by the LRU byte budget
    preprocessing_evictions: int = 0
    #: misses served by patching a cached ancestor artifact (the
    #: batch-dynamic path) instead of re-preparing from scratch
    incremental_updates: int = 0
    #: misses that ran the full from-scratch preparation
    full_prepares: int = 0
    #: shuffles skipped thanks to the preprocessing cache
    shuffles_saved: int = 0
    #: KV writes skipped thanks to the preprocessing cache
    kv_writes_saved: int = 0
    #: executed totals summed over every run's own metrics
    shuffles_executed: int = 0
    kv_reads_executed: int = 0
    kv_writes_executed: int = 0
    simulated_time_s: float = 0.0

    def merge(self, other: "SessionStats") -> "SessionStats":
        """Accumulate ``other`` into this object, field-wise; returns self.

        Every field is additive (counts and summed simulated seconds), so
        stats from independent sessions — e.g. the per-process Sessions of
        a :class:`~repro.serve.procpool.ProcessGraphService` — merge into
        the same coherent view a single shared Session would have kept.
        """
        for field_ in fields(self):
            setattr(self, field_.name,
                    getattr(self, field_.name) + getattr(other, field_.name))
        return self

    @classmethod
    def sum(cls, parts: Iterable["SessionStats"]) -> "SessionStats":
        """A new SessionStats equal to the field-wise sum of ``parts``."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data view (JSON-safe), one key per stats field."""
        return {field_.name: getattr(self, field_.name)
                for field_ in fields(self)}


def _validate_batch(graph: Any, insertions: List[Tuple],
                    deletions: List[Tuple]) -> None:
    """Reject a malformed edge batch before any mutation happens.

    Checked per row: deletions must name distinct, present edges;
    insertions must have the right arity for the graph class (weighted
    graphs take ``(u, v, w)``) with in-range, distinct endpoints.
    """
    num_vertices = graph.num_vertices
    weighted = isinstance(graph, WeightedGraph)
    seen = set()
    for edge in deletions:
        if len(edge) < 2:
            raise ValueError(f"deletion row {edge!r} needs two endpoints")
        key = (min(edge[0], edge[1]), max(edge[0], edge[1]))
        if key in seen:
            raise ValueError(f"duplicate deletion of edge {key}")
        seen.add(key)
        if not graph.has_edge(edge[0], edge[1]):
            raise KeyError(f"cannot delete absent edge {key}")
    arity = 3 if weighted else 2
    for edge in insertions:
        if len(edge) != arity:
            raise ValueError(
                f"insertion row {edge!r} must have {arity} fields for a "
                f"{type(graph).__name__}")
        u, v = edge[0], edge[1]
        if u == v:
            raise ValueError(f"self loop on vertex {u} is not allowed")
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise IndexError(
                f"edge ({u}, {v}) out of range [0, {num_vertices})")


def _compact_batch(graph: Any, insertions: List[Tuple],
                   deletions: List[Tuple]) -> Tuple[List[Tuple], List[Tuple]]:
    """Collapse matching delete+re-insert pairs out of a validated batch.

    A churny stream often deletes an edge and re-inserts it (at the same
    weight) in one batch — a logical no-op that would still grow the edge
    journal, lengthen every chained fingerprint, and make each cached
    artifact's ``update`` hook touch the edge twice.  Such pairs are
    dropped *before* any mutation or journaling.  A re-insert at a
    **different** weight is kept (it is a real weight change), as is any
    edge deleted or inserted more than once (order could matter; only the
    unambiguous 1:1 pairs compact).  Deterministic, so every replica of a
    graph compacts a shipped batch identically and chained fingerprints
    stay in agreement across processes.
    """
    if not insertions or not deletions:
        return insertions, deletions
    weighted = isinstance(graph, WeightedGraph)
    inserted_at: Dict[Tuple, List[int]] = {}
    for index, edge in enumerate(insertions):
        key = (min(edge[0], edge[1]), max(edge[0], edge[1]))
        inserted_at.setdefault(key, []).append(index)
    drop_insertions: set = set()
    kept_deletions: List[Tuple] = []
    for edge in deletions:
        key = (min(edge[0], edge[1]), max(edge[0], edge[1]))
        matches = inserted_at.get(key)
        if matches is not None and len(matches) == 1:
            index = matches[0]
            if not weighted or insertions[index][2] == graph.weight(
                    edge[0], edge[1]):
                drop_insertions.add(index)
                del inserted_at[key]
                continue
        kept_deletions.append(edge)
    if not drop_insertions:
        return insertions, deletions
    kept_insertions = [edge for index, edge in enumerate(insertions)
                       if index not in drop_insertions]
    return kept_insertions, kept_deletions


class GraphHandle:
    """An explicitly registered graph: a name plus a content fingerprint.

    The fingerprint is computed at registration; it is the cache key.
    For the repository graph classes, in-place mutations are detected
    automatically at the next run (every mutator bumps the graph's
    ``content_version``) and the handle re-fingerprints itself; for
    foreign graph-like objects only vertex/edge count changes are
    detected, so re-register (``session.load(name, graph)`` again) or
    call :meth:`refresh` after a count-preserving mutation.  Only a weak
    reference to the graph is held: a handle never keeps a dropped graph
    alive.
    """

    __slots__ = ("name", "fingerprint", "num_vertices", "num_edges",
                 "content_version", "ancestors", "_ref", "__weakref__")

    def __init__(self, name: str, graph: Any):
        self.name = name
        self._ref = weakref.ref(graph)
        #: cache lineage: up to MAX_LINEAGE past (content_version,
        #: fingerprint) pairs this handle moved through — what the
        #: Session's incremental preprocessing walks on a cache miss
        self.ancestors: Tuple = ()
        self.refresh()

    @property
    def graph(self) -> Optional[Any]:
        """The registered graph, or None once it has been collected."""
        return self._ref()

    def refresh(self) -> "GraphHandle":
        """Recompute the fingerprint from the graph's current content."""
        graph = self._ref()
        if graph is None:
            raise ReferenceError(
                f"graph {self.name!r} has been garbage-collected; "
                "load it again"
            )
        self.fingerprint = graph_fingerprint(graph)
        self.num_vertices = getattr(graph, "num_vertices", None)
        self.num_edges = getattr(graph, "num_edges", None)
        self.content_version = getattr(graph, "content_version", None)
        return self

    def resolve(self) -> Tuple[Any, str]:
        """-> (live graph object, current fingerprint), never stale.

        The staleness guard every dispatcher shares: any mutator bumps
        ``content_version`` (repository graph classes), and count changes
        catch graph-like objects without one; either triggers a
        re-fingerprint, so even count-preserving mutations never serve a
        stale artifact through a handle.
        """
        graph = self._ref()
        if graph is None:
            raise ReferenceError(
                f"graph {self.name!r} has been garbage-collected; "
                "load it again"
            )
        if (getattr(graph, "content_version", None) != self.content_version
                or getattr(graph, "num_vertices", None) != self.num_vertices
                or getattr(graph, "num_edges", None) != self.num_edges):
            self._advance(graph)
        return graph, self.fingerprint

    def _advance(self, graph: Any) -> None:
        """Bring the fingerprint up to the graph's current content.

        When the graph's edge-delta journal still covers this handle's
        version, the new fingerprint is chained from the old one in
        O(batch) (:func:`~repro.api.fingerprint.chain_fingerprint`);
        otherwise the edges are re-walked.  Either way the superseded
        (version, fingerprint) joins :attr:`ancestors`.
        """
        self.fingerprint, self.ancestors = advance_lineage(
            graph, self.content_version, self.fingerprint, self.ancestors)
        self.num_vertices = graph.num_vertices
        self.num_edges = graph.num_edges
        self.content_version = graph.content_version

    def apply_batch(self, insertions: Iterable = (),
                    deletions: Iterable = ()) -> "GraphHandle":
        """Apply an edge batch to the underlying graph, deletions first.

        ``insertions`` are ``(u, v)`` pairs (``(u, v, w)`` triples for a
        weighted graph); ``deletions`` are ``(u, v)`` pairs.  The handle's
        fingerprint chain-updates in O(batch), and the next ``Session.run``
        on this handle patches cached DHT-resident artifacts through the
        registered ``update`` hooks instead of re-preparing from scratch.

        The batch is validated before anything mutates, so a malformed
        row (a missing or duplicate deletion, a bad insertion arity, an
        out-of-range vertex) raises with the graph — and this handle —
        untouched, never half-applied.  Returns the handle.
        """
        graph = self._ref()
        if graph is None:
            raise ReferenceError(
                f"graph {self.name!r} has been garbage-collected; "
                "load it again"
            )
        insertions = [tuple(edge) for edge in insertions]
        deletions = [tuple(edge) for edge in deletions]
        _validate_batch(graph, insertions, deletions)
        insertions, deletions = _compact_batch(graph, insertions, deletions)
        for edge in deletions:
            graph.remove_edge(edge[0], edge[1])
        for edge in insertions:
            graph.add_edge(*edge)
        if graph.content_version != self.content_version:
            self._advance(graph)
        return self

    def __repr__(self) -> str:
        return (f"GraphHandle({self.name!r}, n={self.num_vertices}, "
                f"m={self.num_edges}, fingerprint={self.fingerprint[:8]}...)")


@dataclass
class _CacheEntry:
    prepared: Any
    #: what the preparation cost when it ran (i.e. what a hit saves)
    prep_shuffles: int
    prep_kv_writes: int
    #: estimated resident size, the unit of the LRU byte budget
    nbytes: int
    #: how many derivation generations deep this artifact's stores are
    #: (0 for a full prepare; each incremental patch adds one until the
    #: session's max_chain_generations folds the chain flat)
    generations: int = 0


def _prepared_bytes(obj: Any) -> int:
    """Estimated resident bytes of a prepared artifact.

    DHT stores report their written payload; graphs are sized from their
    counts; dataclass artifacts sum their fields; plain containers fall
    through to the cost model's serialized-size estimate.
    """
    if obj is None:
        return 0
    kind = type(obj)
    if kind is int or kind is float:
        return 8  # what estimate_bytes charges, without the dispatch walk
    if isinstance(obj, DHTStore):
        # backed stores answer for themselves: a remote backing holds
        # the payload elsewhere, so only the local index counts here
        return obj.cache_resident_bytes()
    if isinstance(obj, WeightedGraph):
        return 24 * obj.num_edges + 8 * obj.num_vertices
    if isinstance(obj, Graph):
        return 16 * obj.num_edges + 8 * obj.num_vertices
    if is_dataclass(obj) and not isinstance(obj, type):
        return sum(_prepared_bytes(getattr(obj, f.name))
                   for f in fields(obj))
    if isinstance(obj, dict):
        return sum(_prepared_bytes(k) + _prepared_bytes(v)
                   for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        # Plain-data containers (record lists) size through the cost
        # model's flat dispatch; containers holding richer objects (a
        # TypeError from the dispatch) fall back to the per-item walk.
        try:
            return estimate_bytes(obj)
        except TypeError:
            return sum(_prepared_bytes(item) for item in obj)
    try:
        return estimate_bytes(obj)
    except TypeError:
        return 64


def _shallow_bytes(obj: Any) -> int:
    """The store/graph-resident part of an artifact's size, O(fields).

    Incremental updates replace a handful of records in otherwise
    same-shaped artifacts, so a patched entry is sized as the ancestor's
    measured bytes plus the delta of this cheap store-level component —
    never re-walking the O(n + m) record lists per batch.  Full prepares
    still measure exactly.
    """
    if isinstance(obj, DHTStore):
        return obj.cache_resident_bytes()
    if isinstance(obj, WeightedGraph):
        return 24 * obj.num_edges + 8 * obj.num_vertices
    if isinstance(obj, Graph):
        return 16 * obj.num_edges + 8 * obj.num_vertices
    if is_dataclass(obj) and not isinstance(obj, type):
        return sum(_shallow_bytes(getattr(obj, field_.name))
                   for field_ in fields(obj))
    return 0


def _fold_stores(obj: Any, memo: Dict[int, Any]) -> Any:
    """Replace every derived-store chain in an artifact with a flat store.

    Walks the artifact shapes prepared artifacts actually take
    (dataclasses, dicts, lists/tuples) with an identity memo, so a store
    shared between two fields folds once and stays shared.  Non-container
    leaves pass through untouched.
    """
    marker = id(obj)
    if marker in memo:
        return memo[marker]
    if isinstance(obj, DerivedDHTStore):
        folded = obj.folded()
        memo[marker] = folded
        return folded
    if is_dataclass(obj) and not isinstance(obj, type):
        changes = {}
        for field_ in fields(obj):
            value = getattr(obj, field_.name)
            replacement = _fold_stores(value, memo)
            if replacement is not value:
                changes[field_.name] = replacement
        result = replace(obj, **changes) if changes else obj
        memo[marker] = result
        return result
    if isinstance(obj, dict):
        result = {key: _fold_stores(value, memo)
                  for key, value in obj.items()}
        if all(result[key] is obj[key] for key in result):
            result = obj
        memo[marker] = result
        return result
    if isinstance(obj, (list, tuple)):
        items = [_fold_stores(item, memo) for item in obj]
        if all(new is old for new, old in zip(items, obj)):
            result = obj
        elif hasattr(obj, "_fields"):  # namedtuple
            result = type(obj)(*items)
        else:
            result = type(obj)(items)
        memo[marker] = result
        return result
    return obj


def _split_batch(ops: Iterable[Tuple]) -> Tuple[List[Tuple], List[Tuple]]:
    """Journal ops -> (insertions, deletions) for an ``update`` hook.

    Weight changes count as insertions (the record is recomputed from the
    mutated graph either way).  The lists may overlap on an edge that was
    removed and re-added — hooks treat them as touched sets.
    """
    insertions: List[Tuple] = []
    deletions: List[Tuple] = []
    for op in ops:
        if op[0] == "remove":
            deletions.append(tuple(op[1:3]))
        else:  # "add" / "weight"
            insertions.append(tuple(op[1:]))
    return insertions, deletions


class Session:
    """One entry point for every registered AMPC/MPC algorithm.

    ::

        session = Session(ClusterConfig(num_machines=10))
        mis = session.run("mis", graph, seed=1)
        matching = session.run("matching", graph, seed=1)
        again = session.run("mis", graph, seed=1)   # preprocessing cached
        assert again.preprocessing_reused
        assert again.metrics["shuffles"] < mis.metrics["shuffles"]

        web = session.load("web", graph)            # explicit registration
        session.run("pagerank", "web", walks_per_vertex=8)

    The cache key is ``(preprocessing stage, graph fingerprint, seed)`` —
    seed only where the artifact is rank-dependent.  The fingerprint is
    content-stable, so equal graphs share preprocessing regardless of
    object identity, and in-place mutations never serve stale artifacts
    (raw-graph runs re-fingerprint; handles re-fingerprint on re-load).
    """

    def __init__(self, config: Optional[ClusterConfig] = None, *,
                 fault_plan: Optional[FaultPlan] = None,
                 strict_rounds: bool = False,
                 max_cache_bytes: Optional[int] = None,
                 backend: Any = "sim",
                 dht_nodes: Optional[List[Any]] = None,
                 replication: int = 1,
                 max_chain_generations: Optional[int] = None):
        self.config = config or ClusterConfig()
        self.fault_plan = fault_plan
        self.strict_rounds = strict_rounds
        #: LRU byte budget for prepared artifacts; None means unbounded
        self.max_cache_bytes = max_cache_bytes
        #: where DHT-store values physically live: "sim" (in-process
        #: dicts, the default), "mem"/"shm"/"socket" specs, or an
        #: already constructed BackingStore (see repro.distdht)
        self._backing = create_backend(backend, nodes=dht_nodes,
                                       replication=replication)
        self.backend = self._backing.kind if self._backing else "sim"
        #: fold an incrementally patched artifact flat once its
        #: derivation chain exceeds this many generations (None: only
        #: fingerprint-lineage limits apply)
        self.max_chain_generations = max_chain_generations
        self.stats = SessionStats()
        self._cache: "OrderedDict[Tuple, _CacheEntry]" = OrderedDict()
        self._cache_bytes = 0
        self._graphs: Dict[str, GraphHandle] = {}
        self._lock = threading.RLock()
        #: cache keys currently being prepared (miss deduplication)
        self._inflight: Dict[Tuple, threading.Event] = {}
        #: version-checked fingerprint memo for raw (un-registered)
        #: graphs — count-preserving mutations invalidate it without the
        #: per-run edge re-walk
        self._fingerprints = FingerprintMemo()

    # -- graph registration ------------------------------------------------

    def load(self, name: str, graph: Any) -> GraphHandle:
        """Register ``graph`` under ``name`` and return its handle.

        Re-loading a name re-fingerprints, so this is also how callers
        declare "I mutated this graph" — stale cache entries are isolated
        by the changed fingerprint.  (For journaled batches prefer
        ``handle.apply_batch``, which names the new content in O(batch)
        and lets cached artifacts be patched instead of rebuilt.)

        ``graph`` may also be an existing :class:`GraphHandle`: it is
        re-registered under ``name`` as-is, keeping its chain-updated
        fingerprint and cache lineage — no O(m) re-walk.
        """
        if isinstance(graph, GraphHandle):
            handle = graph
            previous = handle.name
            handle.name = name
        else:
            handle = GraphHandle(name, graph)
            previous = None
        with self._lock:
            # a re-registered handle moves: its old name must not linger
            # pointing at a handle that now reports a different name
            if previous is not None and previous != name \
                    and self._graphs.get(previous) is handle:
                del self._graphs[previous]
            self._graphs[name] = handle
        return handle

    def unload(self, name: str) -> None:
        """Forget a registered graph name (cache entries stay until LRU)."""
        with self._lock:
            self._graphs.pop(name, None)

    def handle(self, name: str) -> GraphHandle:
        """The handle registered under ``name``; KeyError when unknown."""
        with self._lock:
            try:
                return self._graphs[name]
            except KeyError:
                known = ", ".join(sorted(self._graphs)) or "(none)"
                raise KeyError(
                    f"no graph loaded as {name!r}; loaded: {known}"
                ) from None

    def graphs(self) -> List[str]:
        """Names of the registered graphs, sorted."""
        with self._lock:
            return sorted(self._graphs)

    # -- introspection -----------------------------------------------------

    def algorithms(self):
        """Names this session can run (the registry's, in order)."""
        return registry.names()

    @property
    def cached_preprocessings(self) -> int:
        with self._lock:
            return len(self._cache)

    @property
    def cache_bytes(self) -> int:
        """Estimated resident bytes of every cached prepared artifact."""
        with self._lock:
            return self._cache_bytes

    def is_prepared(self, algorithm: str, graph: Any, *,
                    seed: int = 0) -> bool:
        """Whether ``(algorithm, graph, seed)``'s shared preprocessing is
        cache-resident right now — without running or building anything.

        The admission layer prices queries differently when the prepared
        artifact is already DHT-resident; this is its probe.  Advisory by
        nature: the LRU may evict between the probe and the run.
        """
        spec = registry.get(algorithm)
        _graph, fingerprint, _name, _ancestors = self._resolve_graph(graph)
        key = self._cache_key(spec, fingerprint, seed)
        with self._lock:
            return key in self._cache

    def stats_snapshot(self) -> SessionStats:
        """A consistent copy of :attr:`stats`, taken under the lock.

        Safe to ship across a process boundary (it shares no state with
        the live session) — the worker side of the process-parallel
        serving layer reports through this.
        """
        with self._lock:
            return replace(self.stats)

    def clear_preprocessing(self) -> None:
        """Drop every cached preprocessing artifact."""
        with self._lock:
            self._cache.clear()
            self._cache_bytes = 0

    def close(self) -> None:
        """Release the backing store (and the cache addressing it).

        Needed for the real backends — shm segments and DHT connections
        are OS resources — and a harmless no-op on ``"sim"``.  Idempotent.
        """
        self.clear_preprocessing()
        if self._backing is not None:
            self._backing.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- execution ---------------------------------------------------------

    def run(self, algorithm: str, graph: Any, *, seed: int = 0,
            reuse_preprocessing: bool = True, **params: Any) -> RunResult:
        """Run ``algorithm`` on ``graph`` and return its RunResult envelope.

        ``graph`` may be a graph object, a :class:`GraphHandle`, or the
        name of a graph registered with :meth:`load`.  ``params`` must be
        parameters the algorithm's spec declares; unknown names raise
        ``TypeError`` (mirroring a keyword-argument mismatch).
        ``reuse_preprocessing=False`` forces a cold run and leaves the
        cache untouched.
        """
        spec = registry.get(algorithm)
        merged = self._merge_params(spec, params)
        graph, fingerprint, graph_name, ancestors = self._resolve_graph(graph)
        runtime = self._make_runtime(spec)
        entry, reused, incremental = self._prepare(
            spec, graph, fingerprint, seed, runtime, reuse_preprocessing,
            ancestors)
        result = spec.run(graph, runtime=runtime, seed=seed,
                          prepared=entry.prepared,
                          **spec.algorithm_params(merged))
        metrics = runtime.metrics
        with self._lock:
            stats = self.stats
            stats.runs += 1
            stats.shuffles_executed += metrics.shuffles
            stats.kv_reads_executed += metrics.kv_reads
            stats.kv_writes_executed += metrics.kv_writes
            stats.simulated_time_s += metrics.simulated_time_s
            if reused:
                stats.preprocessing_hits += 1
                stats.shuffles_saved += entry.prep_shuffles
                stats.kv_writes_saved += entry.prep_kv_writes
            else:
                stats.preprocessing_misses += 1
                if incremental:
                    stats.incremental_updates += 1
                else:
                    stats.full_prepares += 1
        return RunResult(
            algorithm=spec.name,
            seed=seed,
            params=merged,
            output=result,
            summary=spec.summarize(result, graph),
            metrics=metrics.summary(),
            phases=dict(metrics.phases.items()),
            # The algorithm's logical round count (a cache-served
            # preparation round still counts); the rounds this runtime
            # actually executed are metrics["rounds"].
            rounds=getattr(result, "rounds", metrics.rounds),
            preprocessing_reused=reused,
            shuffles_saved=entry.prep_shuffles if reused else 0,
            description=spec.describe(result, graph, merged),
            graph_name=graph_name,
        )

    def prepare(self, algorithm: str, graph: Any, *, seed: int = 0) -> bool:
        """Warm the preprocessing cache for ``(algorithm, graph, seed)``.

        Runs (or incrementally patches) the algorithm's shared
        preprocessing without executing a query — the explicit pre-warm a
        serving system issues after loading or mutating a graph.  Returns
        True when the artifact was already cached.  Stats account exactly
        like a run's preprocessing would (hits/misses, the incremental
        vs. full split, executed totals), but ``runs`` does not move.
        """
        spec = registry.get(algorithm)
        graph, fingerprint, _name, ancestors = self._resolve_graph(graph)
        runtime = self._make_runtime(spec)
        entry, reused, incremental = self._prepare(
            spec, graph, fingerprint, seed, runtime, True, ancestors)
        metrics = runtime.metrics
        with self._lock:
            stats = self.stats
            stats.shuffles_executed += metrics.shuffles
            stats.kv_reads_executed += metrics.kv_reads
            stats.kv_writes_executed += metrics.kv_writes
            stats.simulated_time_s += metrics.simulated_time_s
            if reused:
                stats.preprocessing_hits += 1
                stats.shuffles_saved += entry.prep_shuffles
                stats.kv_writes_saved += entry.prep_kv_writes
            else:
                stats.preprocessing_misses += 1
                if incremental:
                    stats.incremental_updates += 1
                else:
                    stats.full_prepares += 1
        return reused

    # -- internals ---------------------------------------------------------

    def _resolve_graph(self, graph: Any
                       ) -> Tuple[Any, str, Optional[str], Tuple]:
        """-> (graph object, fingerprint, registered name or None, lineage).

        The lineage is the graph's past (content_version, fingerprint)
        pairs, oldest first — the ancestors a cache miss may patch from.
        """
        if isinstance(graph, str):
            graph = self.handle(graph)
        if isinstance(graph, GraphHandle):
            obj, fingerprint = graph.resolve()
            return obj, fingerprint, graph.name, graph.ancestors
        fingerprint, ancestors = self._fingerprints.resolve(graph)
        return graph, fingerprint, None, ancestors

    def _make_runtime(self, spec):
        if spec.model == "mpc":
            return MPCRuntime(config=self.config, fault_plan=self.fault_plan)
        return AMPCRuntime(config=self.config,
                           fault_plan=self.fault_plan,
                           strict_rounds=self.strict_rounds,
                           backing=self._backing)

    @staticmethod
    def _merge_params(spec, params: Dict[str, Any]) -> Dict[str, Any]:
        known = {p.name: p for p in spec.params}
        unknown = set(params) - set(known)
        if unknown:
            raise TypeError(
                f"{spec.name!r} got unexpected parameter(s): "
                f"{', '.join(sorted(unknown))}; "
                f"declared: {', '.join(known) or '(none)'}"
            )
        return {name: params.get(name, p.default)
                for name, p in known.items()}

    def _cache_key(self, spec, fingerprint: str, seed: int) -> Tuple:
        return (
            spec.prepare,
            fingerprint,
            seed if spec.prep_seed_sensitive else None,
        )

    def _prepare(self, spec, graph: Any, fingerprint: str, seed: int,
                 runtime, reuse: bool, ancestors: Tuple = ()):
        """-> (entry, served-from-cache, built-incrementally)."""
        if not reuse:
            return self._build_entry(spec, graph, seed, runtime), False, False
        key = self._cache_key(spec, fingerprint, seed)
        while True:
            with self._lock:
                entry = self._cache.get(key)
                if entry is not None:
                    self._cache.move_to_end(key)
                    return entry, True, False
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    break
            # Another thread is preparing this key: wait for it, then
            # re-check the cache (taking the hit, or becoming the builder
            # if the other thread failed).
            event.wait()
        try:
            entry = self._update_entry(spec, graph, seed, runtime, ancestors)
            incremental = entry is not None
            if entry is None:
                entry = self._build_entry(spec, graph, seed, runtime)
            with self._lock:
                self._insert(key, entry)
            return entry, False, incremental
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            event.set()

    def _update_entry(self, spec, graph: Any, seed: int, runtime,
                      ancestors: Tuple) -> Optional[_CacheEntry]:
        """Patch a cached ancestor artifact to this content, or None.

        Walks the graph's lineage newest-first for an ancestor fingerprint
        still in the cache whose delta the graph's journal can replay,
        then hands (old artifact, mutated graph, batch) to the spec's
        ``update`` hook.  The hook writes into a derived copy-on-write
        store, so the ancestor entry is never perturbed.
        """
        if spec.update is None or not ancestors:
            return None
        delta_since = getattr(graph, "delta_since", None)
        if delta_since is None:
            return None
        for version, ancestor_fp in reversed(ancestors):
            ops = delta_since(version)
            if ops is None:
                # The journal no longer reaches this version; older
                # ancestors are further back still.
                break
            if not ops:
                continue
            old_key = self._cache_key(spec, ancestor_fp, seed)
            with self._lock:
                old_entry = self._cache.get(old_key)
            if old_entry is None:
                continue
            insertions, deletions = _split_batch(ops)
            metrics = runtime.metrics
            shuffles_before = metrics.shuffles
            kv_writes_before = metrics.kv_writes
            prepared = spec.update(old_entry.prepared, graph,
                                   runtime=runtime, seed=seed,
                                   insertions=insertions,
                                   deletions=deletions)
            generations = old_entry.generations + 1
            if (self.max_chain_generations is not None
                    and generations > self.max_chain_generations):
                # TTL on derivation chains: fold the whole lineage into
                # flat sealed stores.  The chain's parent stores (and any
                # evicted ancestors they kept alive) become collectable,
                # and future lookups stop paying per-generation
                # fall-through.  Logical content and recorded sizes are
                # preserved exactly, so results are unchanged.
                prepared = _fold_stores(prepared, {})
                return _CacheEntry(
                    prepared=prepared,
                    prep_shuffles=metrics.shuffles - shuffles_before,
                    prep_kv_writes=metrics.kv_writes - kv_writes_before,
                    nbytes=_prepared_bytes(prepared),
                    generations=0,
                )
            return _CacheEntry(
                prepared=prepared,
                prep_shuffles=metrics.shuffles - shuffles_before,
                prep_kv_writes=metrics.kv_writes - kv_writes_before,
                # ancestor's measured size, moved by the store-level
                # delta: O(batch) accounting for an O(batch) patch
                nbytes=max(0, old_entry.nbytes
                           - _shallow_bytes(old_entry.prepared)
                           + _shallow_bytes(prepared)),
                generations=generations,
            )
        return None

    def _build_entry(self, spec, graph: Any, seed: int,
                     runtime) -> _CacheEntry:
        metrics = runtime.metrics
        shuffles_before = metrics.shuffles
        kv_writes_before = metrics.kv_writes
        prepared = spec.prepare(graph, runtime=runtime, seed=seed)
        return _CacheEntry(
            prepared=prepared,
            prep_shuffles=metrics.shuffles - shuffles_before,
            prep_kv_writes=metrics.kv_writes - kv_writes_before,
            nbytes=_prepared_bytes(prepared),
        )

    def _insert(self, key: Tuple, entry: _CacheEntry) -> None:
        """Insert under the LRU byte budget.  Caller holds the lock."""
        old = self._cache.pop(key, None)
        if old is not None:
            self._cache_bytes -= old.nbytes
        self._cache[key] = entry
        self._cache_bytes += entry.nbytes
        if self.max_cache_bytes is None:
            return
        # Evict least-recently-used entries; a single over-budget entry is
        # kept (evicting it would just thrash every run cold).
        while (self._cache_bytes > self.max_cache_bytes
               and len(self._cache) > 1):
            _, evicted = self._cache.popitem(last=False)
            self._cache_bytes -= evicted.nbytes
            self.stats.preprocessing_evictions += 1
