"""Tests for sequential pointer jumping."""

import pytest

from repro.trees import find_roots, forest_depth
from repro.trees.pointer_jumping import validate_parent_array


def test_all_roots():
    parent = [0, 1, 2]
    assert find_roots(parent) == [0, 1, 2]
    assert forest_depth(parent) == 0


def test_chain():
    parent = [0, 0, 1, 2]
    assert find_roots(parent) == [0, 0, 0, 0]
    assert forest_depth(parent) == 3


def test_two_trees():
    parent = [0, 0, 2, 2, 3]
    assert find_roots(parent) == [0, 0, 2, 2, 2]
    assert forest_depth(parent) == 2


def test_validate_accepts_forest():
    validate_parent_array([0, 0, 1, 1])


def test_validate_rejects_cycle():
    with pytest.raises(ValueError):
        validate_parent_array([1, 2, 0])


def test_large_chain_no_recursion_error():
    n = 50_000
    parent = [max(0, i - 1) for i in range(n)]
    roots = find_roots(parent)
    assert roots == [0] * n
    assert forest_depth(parent) == n - 1
