"""Validation predicates used throughout the test suite.

These are intentionally brute force: every distributed result is checked
against first-principles definitions rather than against another clever
algorithm.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.graph.graph import Graph, WeightedGraph, edge_key
from repro.sequential.union_find import UnionFind

EdgeId = Tuple[int, int]


def is_independent_set(graph: Graph, vertices: Set[int]) -> bool:
    """No two selected vertices are adjacent."""
    for v in vertices:
        for u in graph.neighbors(v):
            if u in vertices:
                return False
    return True


def is_maximal_independent_set(graph: Graph, vertices: Set[int]) -> bool:
    """Independent, and every unselected vertex has a selected neighbor."""
    if not is_independent_set(graph, vertices):
        return False
    for v in graph.vertices():
        if v in vertices:
            continue
        if not any(u in vertices for u in graph.neighbors(v)):
            return False
    return True


def is_matching(graph: Graph, edges: Iterable[EdgeId]) -> bool:
    """Edges exist in the graph and are pairwise vertex-disjoint."""
    seen: Set[int] = set()
    for u, v in edges:
        if not graph.has_edge(u, v):
            return False
        if u in seen or v in seen:
            return False
        seen.add(u)
        seen.add(v)
    return True


def is_maximal_matching(graph: Graph, edges: Iterable[EdgeId]) -> bool:
    """A matching that no graph edge can extend."""
    edges = list(edges)
    if not is_matching(graph, edges):
        return False
    matched: Set[int] = set()
    for u, v in edges:
        matched.add(u)
        matched.add(v)
    for u, v in graph.edges():
        if u not in matched and v not in matched:
            return False
    return True


def is_forest(num_vertices: int, edges: Iterable[EdgeId]) -> bool:
    """The edge set is acyclic."""
    uf = UnionFind(num_vertices)
    for u, v in edges:
        if not uf.union(u, v):
            return False
    return True


def is_spanning_forest(graph: Graph, edges: Iterable[EdgeId]) -> bool:
    """Acyclic, subgraph of ``graph``, and spans every component."""
    edges = list(edges)
    uf = UnionFind(graph.num_vertices)
    for u, v in edges:
        if not graph.has_edge(u, v):
            return False
        if not uf.union(u, v):
            return False
    # Spanning: the forest must connect everything the graph connects.
    graph_uf = UnionFind(graph.num_vertices)
    for u, v in graph.edges():
        graph_uf.union(u, v)
    return graph_uf.num_sets == uf.num_sets


def matching_weight(graph: WeightedGraph, edges: Iterable[EdgeId]) -> float:
    return sum(graph.weight(u, v) for u, v in edges)


def components_equal(labels_a: List[int], labels_b: List[int]) -> bool:
    """Two component labelings induce the same partition."""
    if len(labels_a) != len(labels_b):
        return False
    map_ab: Dict[int, int] = {}
    map_ba: Dict[int, int] = {}
    for a, b in zip(labels_a, labels_b):
        if map_ab.setdefault(a, b) != b:
            return False
        if map_ba.setdefault(b, a) != a:
            return False
    return True
