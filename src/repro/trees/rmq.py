"""Sparse-table range minimum / maximum queries.

This is the RMQ data structure described in Appendix B of the paper
(attributed there to Andoni et al.): an O(k log k)-space table ``b[x][y]``
holding the argmin of ``a[x .. x + 2^y - 1]``, answering queries with two
overlapping power-of-two windows in O(1).
"""

from __future__ import annotations

from typing import List, Sequence


class RangeMin:
    """O(1) range-minimum queries over a static array after O(k log k) build."""

    def __init__(self, values: Sequence[float]):
        self._values = list(values)
        k = len(self._values)
        self._log = [0] * (k + 1)
        for i in range(2, k + 1):
            self._log[i] = self._log[i // 2] + 1
        # _table[y][x] = index of the min of values[x .. x + 2^y - 1]
        self._table: List[List[int]] = [list(range(k))]
        y = 1
        while (1 << y) <= k:
            prev = self._table[y - 1]
            half = 1 << (y - 1)
            row = []
            for x in range(k - (1 << y) + 1):
                left, right = prev[x], prev[x + half]
                row.append(left if self._pick(left, right) else right)
            self._table.append(row)
            y += 1

    def _pick(self, left: int, right: int) -> bool:
        """True if index ``left`` wins the comparison (ties go left)."""
        return self._values[left] <= self._values[right]

    def argquery(self, i: int, j: int) -> int:
        """Index of the extreme value on the inclusive range [i, j]."""
        if i > j:
            i, j = j, i
        if not (0 <= i and j < len(self._values)):
            raise IndexError(f"range [{i}, {j}] out of bounds")
        span = self._log[j - i + 1]
        left = self._table[span][i]
        right = self._table[span][j - (1 << span) + 1]
        return left if self._pick(left, right) else right

    def query(self, i: int, j: int) -> float:
        """Extreme value on the inclusive range [i, j]."""
        return self._values[self.argquery(i, j)]

    def __len__(self) -> int:
        return len(self._values)


class RangeMax(RangeMin):
    """Range-maximum variant; shares the table construction with RangeMin."""

    def _pick(self, left: int, right: int) -> bool:
        return self._values[left] >= self._values[right]
