"""Ternary treaps (Appendix A of the paper).

Given a tree ``T`` with maximum degree <= 3 and a rank permutation ``pi``,
the *ternary treap* is the unique recursive structure whose root is the
minimum-rank vertex of ``T``; removing it splits ``T`` into at most three
subtrees, each of which recursively forms a child subtree.

The paper uses two facts about this object, both of which the test suite
checks empirically:

* Lemma A.1 — the treap height is O(log n) w.h.p.
* Lemma A.2 — the number of queries made by a TruncatedPrim search from
  ``v`` is at most O(|R_v|), the size of ``v``'s treap subtree, which yields
  the O(n log n) total query bound (Lemma 3.4).

Construction is the standard DSU sweep: process vertices in decreasing rank
order; when ``v`` is processed, the roots of the already-processed clusters
adjacent to ``v`` become its treap children.  O(n alpha(n)) time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.graph.graph import Graph
from repro.sequential.union_find import UnionFind

EdgeId = Tuple[int, int]


@dataclass
class TernaryTreap:
    """Parent/children arrays of the treap, plus derived statistics."""

    parent: List[int]
    children: List[List[int]]
    roots: List[int]

    def subtree_sizes(self) -> List[int]:
        """|R_v| for every vertex (the quantity in Lemma A.2)."""
        n = len(self.parent)
        size = [1] * n
        order = self._topological_leaves_first()
        for v in order:
            if self.parent[v] != -1:
                size[self.parent[v]] += size[v]
        return size

    def depths(self) -> List[int]:
        """Depth of every vertex (root = 0)."""
        n = len(self.parent)
        depth = [0] * n
        for v in self._topological_roots_first():
            if self.parent[v] != -1:
                depth[v] = depth[self.parent[v]] + 1
        return depth

    def height(self) -> int:
        """Height = 1 + max depth (0 for an empty treap)."""
        depths = self.depths()
        return 1 + max(depths) if depths else 0

    def _topological_roots_first(self) -> List[int]:
        order: List[int] = []
        stack = list(self.roots)
        while stack:
            v = stack.pop()
            order.append(v)
            stack.extend(self.children[v])
        return order

    def _topological_leaves_first(self) -> List[int]:
        return list(reversed(self._topological_roots_first()))


def build_ternary_treap(
    num_vertices: int,
    edges: Iterable[EdgeId],
    ranks: Sequence[float],
) -> TernaryTreap:
    """Build the ternary treap of a forest under the given vertex ranks.

    Works on any forest (the degree <= 3 restriction only matters for the
    paper's probabilistic analysis, not for well-definedness: the root of
    each cluster is always the unique minimum-rank vertex processed so far).
    """
    adjacency: List[List[int]] = [[] for _ in range(num_vertices)]
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)

    order = sorted(range(num_vertices), key=lambda v: (-ranks[v], -v))
    processed = [False] * num_vertices
    uf = UnionFind(num_vertices)
    # cluster_root[find(x)] = treap root (min-rank vertex) of x's cluster
    cluster_root: Dict[int, int] = {}
    parent = [-1] * num_vertices
    children: List[List[int]] = [[] for _ in range(num_vertices)]

    for v in order:
        processed[v] = True
        cluster_root[uf.find(v)] = v
        for u in adjacency[v]:
            if not processed[u]:
                continue
            root_u = cluster_root[uf.find(u)]
            if root_u == v:
                continue  # already merged through another neighbor
            parent[root_u] = v
            children[v].append(root_u)
            uf.union(u, v)
            cluster_root[uf.find(v)] = v

    roots = [v for v in range(num_vertices) if parent[v] == -1]
    return TernaryTreap(parent=parent, children=children, roots=roots)
