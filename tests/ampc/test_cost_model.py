"""Tests for the cost model and byte estimation."""

import pytest

from repro.ampc import CostModel, estimate_bytes


class TestCostModel:
    def test_rdma_default(self):
        model = CostModel.rdma()
        assert model.transport == "rdma"

    def test_tcp_is_slower(self):
        rdma, tcp = CostModel.rdma(), CostModel.tcp()
        assert tcp.kv_read_latency_s >= 3 * rdma.kv_read_latency_s
        assert tcp.transport == "tcp"

    def test_rdma_latency_above_dram(self):
        # Section 5.3: RDMA lookups are ~an order of magnitude above DRAM.
        model = CostModel.rdma()
        assert model.kv_read_latency_s >= 5 * model.dram_latency_s

    def test_with_overrides(self):
        model = CostModel.rdma().with_overrides(shuffle_setup_s=9.0)
        assert model.shuffle_setup_s == 9.0
        assert model.kv_read_latency_s == CostModel.rdma().kv_read_latency_s

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel.rdma().transport = "x"


class TestEstimateBytes:
    def test_scalars(self):
        assert estimate_bytes(7) == 8
        assert estimate_bytes(3.14) == 8
        assert estimate_bytes(True) == 1
        assert estimate_bytes(None) == 0

    def test_strings_and_bytes(self):
        assert estimate_bytes("abcd") == 4
        assert estimate_bytes(b"xyz") == 3

    def test_containers(self):
        assert estimate_bytes((1, 2)) == 16
        assert estimate_bytes([1, 2, 3]) == 24
        assert estimate_bytes({1: (2, 3)}) == 24
        assert estimate_bytes((1, (2, [3, 4.5]))) == 32

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            estimate_bytes(object())
