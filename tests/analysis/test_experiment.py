"""Tests for the experiment runners (on tiny inputs for speed)."""

from repro.analysis.experiment import (
    bench_config,
    run_ampc_matching,
    run_ampc_mis,
    run_ampc_msf,
    run_ampc_two_cycle,
    run_mpc_boruvka,
    run_mpc_local_contraction,
    run_mpc_matching,
    run_mpc_mis,
)
from repro.graph.generators import (
    cycle_graph,
    erdos_renyi_gnm,
    random_weighted,
    two_cycles,
)

GRAPH = erdos_renyi_gnm(60, 180, seed=4)
WEIGHTED = random_weighted(GRAPH, seed=4)


class TestBenchConfig:
    def test_default_rdma(self):
        config = bench_config()
        assert config.cost_model.transport == "rdma"
        assert config.num_machines == 10

    def test_tcp_transport(self):
        config = bench_config(transport="tcp")
        assert config.cost_model.transport == "tcp"

    def test_ablation_flags(self):
        config = bench_config(caching=False, multithreading=False)
        assert not config.caching
        assert not config.multithreading


class TestRunners:
    def test_mis_records(self):
        ampc = run_ampc_mis(GRAPH, seed=1)
        mpc = run_mpc_mis(GRAPH, seed=1, in_memory_threshold=16)
        assert ampc["output_size"] == mpc["output_size"]
        assert ampc["shuffles"] == 1
        assert "phase_breakdown" in ampc
        assert ampc["simulated_time_s"] > 0

    def test_matching_records(self):
        ampc = run_ampc_matching(GRAPH, seed=1)
        mpc = run_mpc_matching(GRAPH, seed=1, in_memory_threshold=16)
        assert ampc["output_size"] == mpc["output_size"]
        assert ampc["shuffles"] == 1

    def test_msf_records(self):
        ampc = run_ampc_msf(WEIGHTED, seed=1)
        mpc = run_mpc_boruvka(WEIGHTED, seed=1, in_memory_threshold=16)
        assert ampc["output_size"] == mpc["output_size"]
        assert ampc["shuffles"] == 5
        assert "contracted_vertices" in ampc

    def test_two_cycle_records(self):
        one = run_ampc_two_cycle(cycle_graph(80, shuffle_ids=True, seed=2),
                                 seed=2)
        two = run_ampc_two_cycle(two_cycles(40, shuffle_ids=True, seed=2),
                                 seed=2)
        assert one["output_size"] == 1
        assert two["output_size"] == 2

    def test_local_contraction_records(self):
        record = run_mpc_local_contraction(
            cycle_graph(128, shuffle_ids=True, seed=3), seed=3,
            in_memory_threshold=8)
        assert record["output_size"] == 1
        assert record["phases"] >= 1
        assert len(record["vertices_per_phase"]) == record["phases"]
