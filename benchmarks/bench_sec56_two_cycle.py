"""Section 5.6 — 1-vs-2-Cycle: AMPC vs CC-LocalContraction.

Paper results on the 2 x k family:

* AMPC-1-vs-2-Cycle achieves 3.40-9.87x speedup over the MPC baseline;
* the AMPC algorithm uses a single shuffle;
* the MPC algorithm shortens the cycle ~2.59-3x per iteration (average
  2.69x), needing 4-9 iterations (12-27 shuffles).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.datasets import cycle_instance
from repro.analysis.experiment import (
    run_ampc_two_cycle,
    run_mpc_local_contraction,
)
from repro.analysis.reporting import Table

CYCLE_SIZES = [1_000, 10_000, 100_000]


def test_sec56_one_vs_two_cycle(benchmark):
    def compute():
        rows = {}
        for k in CYCLE_SIZES:
            for two in (False, True):
                graph = cycle_instance(k, two=two, seed=21)
                ampc = run_ampc_two_cycle(graph, seed=21)
                mpc = run_mpc_local_contraction(graph, seed=21)
                rows[(k, two)] = (ampc, mpc)
        return rows

    rows = run_once(benchmark, compute)

    table = Table(
        "Section 5.6: 1-vs-2-Cycle, AMPC vs CC-LocalContraction",
        ["Instance", "Truth", "AMPC ans", "MPC ans", "AMPC time",
         "MPC time", "Speedup", "AMPC shuffles", "MPC phases",
         "MPC shrink/iter"],
    )
    for (k, two), (ampc, mpc) in sorted(rows.items()):
        truth = 2 if two else 1
        counts = [2 * k] + mpc["vertices_per_phase"]
        shrinks = [
            before / after
            for before, after in zip(counts, counts[1:]) if after > 0
        ]
        mean_shrink = (
            sum(shrinks[:-1]) / max(1, len(shrinks) - 1)
            if len(shrinks) > 1 else (shrinks[0] if shrinks else 0.0)
        )
        table.add_row(
            f"{'2x' + str(k) if two else '1x' + str(2 * k)}",
            truth, ampc["output_size"], mpc["output_size"],
            f"{ampc['simulated_time_s']:.2f}s",
            f"{mpc['simulated_time_s']:.2f}s",
            f"{mpc['simulated_time_s'] / ampc['simulated_time_s']:.2f}x",
            ampc["shuffles"], mpc["phases"], f"{mean_shrink:.2f}x",
        )
    table.show()

    for (k, two), (ampc, mpc) in rows.items():
        truth = 2 if two else 1
        # Both algorithms answer correctly.
        assert ampc["output_size"] == truth
        assert mpc["output_size"] == truth
        # The AMPC algorithm uses a single shuffle and wins on time.
        assert ampc["shuffles"] == 1
        assert ampc["simulated_time_s"] < mpc["simulated_time_s"]
        # Speedups in (or above) the paper's 3.40-9.87x band at the top end.
        speedup = mpc["simulated_time_s"] / ampc["simulated_time_s"]
        assert speedup > 2.0
        # The MPC cycle shrinks geometrically per iteration.
        counts = [2 * k] + mpc["vertices_per_phase"]
        for before, after in zip(counts, counts[1:]):
            if before > 64:
                assert after < 0.7 * before
