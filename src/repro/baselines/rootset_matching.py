"""MPC rootset-based Maximal Matching (Section 5.4's MPC baseline).

The edge analogue of the rootset MIS: each phase adds every edge whose
hashed rank beats all adjacent edges (a *local minimum* in the line graph),
removes matched vertices and their incident edges, and repeats — 2 shuffles
per phase, O(log n) phases w.h.p.  Below ``in_memory_threshold`` edges the
residual graph is finished on one machine, exactly as the paper describes
(they tuned s = 5 * 10^7 on the production testbed).

Shares the edge-rank function with :func:`repro.core.ampc_maximal_matching`
so both compute the identical lexicographically-first matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.faults import FaultPlan
from repro.ampc.metrics import Metrics
from repro.api.incremental import patch_records, touched_vertices
from repro.api.registry import AlgorithmSpec, ParamSpec, register_algorithm
from repro.core.ranks import hash_rank
from repro.graph.graph import Graph, edge_key
from repro.mpc.runtime import MPCRuntime
from repro.sequential.greedy import greedy_matching

EdgeId = Tuple[int, int]


@dataclass
class RootsetMatchingResult:
    """Output of the MPC rootset maximal matching baseline."""

    matching: Set[EdgeId]
    metrics: Metrics
    phases: int = 0


def _edge_order(seed: int, u: int, v: int) -> Tuple[float, int, int]:
    a, b = edge_key(u, v)
    return (hash_rank(seed, a, b), a, b)


@dataclass
class PreparedRootsetMatching:
    """Vertex adjacency records staged onto their home machines.

    The placement shuffle is the only cross-query artifact MPC offers
    (there is no DHT to stage into).  Seed-independent.
    """

    records: List[Tuple[int, Tuple[int, ...]]]


def prepare_rootset_matching(graph: Graph, *,
                             runtime: Optional[MPCRuntime] = None,
                             config: Optional[ClusterConfig] = None,
                             seed: int = 0) -> PreparedRootsetMatching:
    """Stage ``(vertex, neighbors)`` records (one placement shuffle)."""
    del seed
    if runtime is None:
        runtime = MPCRuntime(config=config)
    placed = runtime.pipeline.from_items(
        [(v, graph.neighbors(v)) for v in graph.vertices()
         if graph.degree(v) > 0]
    ).repartition(lambda record: record[0], name="place-vertex-records")
    runtime.next_round()
    return PreparedRootsetMatching(records=placed.collect())


def update_rootset_matching(prepared: PreparedRootsetMatching, graph: Graph,
                            *, runtime: Optional[MPCRuntime] = None,
                            config: Optional[ClusterConfig] = None,
                            seed: int = 0,
                            insertions=(), deletions=()
                            ) -> PreparedRootsetMatching:
    """Patch the staged vertex records after an edge batch (O(batch)).

    The staging excludes isolated vertices, so a touched vertex whose
    degree dropped to zero leaves the record list entirely.
    """
    del seed
    if runtime is None:
        runtime = MPCRuntime(config=config)
    touched = touched_vertices(insertions, deletions)
    live = [v for v in touched if graph.degree(v) > 0]
    removed = [v for v in touched if graph.degree(v) == 0]
    patch = runtime.pipeline.from_items(
        [(v, graph.neighbors(v)) for v in live]
    ).repartition(lambda record: record[0], name="place-vertex-patch")
    runtime.next_round()
    return PreparedRootsetMatching(
        records=patch_records(prepared.records, patch.collect(), removed))


def mpc_rootset_matching(graph: Graph, *,
                         runtime: Optional[MPCRuntime] = None,
                         config: Optional[ClusterConfig] = None,
                         fault_plan: Optional[FaultPlan] = None,
                         seed: int = 0,
                         in_memory_threshold: int = 512,
                         max_phases: int = 10_000,
                         prepared: Optional[PreparedRootsetMatching] = None
                         ) -> RootsetMatchingResult:
    """Lexicographically-first maximal matching via rootset peeling."""
    if runtime is None:
        runtime = MPCRuntime(config=config, fault_plan=fault_plan)
    metrics = runtime.metrics

    matching: Set[EdgeId] = set()
    # Vertex records carry the incident edge set; an edge is a line-graph
    # local minimum iff it wins at both endpoints.
    if prepared is not None:
        current = runtime.pipeline.from_items(
            prepared.records, key_fn=lambda record: record[0]
        )
    else:
        current = runtime.pipeline.from_items(
            [(v, graph.neighbors(v)) for v in graph.vertices()
             if graph.degree(v) > 0],
            key_fn=lambda record: record[0],
        )
    phases = 0
    while not current.is_empty():
        edge_count = sum(len(nbrs) for _, nbrs in current.collect()) // 2
        if edge_count <= in_memory_threshold:
            records = runtime.run_in_memory(current, solver=list)
            matching.update(_solve_in_memory(records, seed))
            break
        phases += 1
        if phases > max_phases:
            raise RuntimeError("rootset matching did not converge")
        runtime.next_round()

        # (1) Every vertex nominates its minimum-rank incident edge; an edge
        # joins the matching iff nominated by both endpoints (no shuffle:
        # edge ranks are hash-computable from the endpoint ids).
        def _nomination(record):
            vertex, neighbors = record
            best = min(neighbors,
                       key=lambda u: _edge_order(seed, vertex, u))
            return (vertex, best)

        nominations = dict(
            current.map_elements(_nomination, name="nominate").collect()
        )
        new_edges = {
            edge_key(v, u)
            for v, u in nominations.items()
            if nominations.get(u) == v
        }
        matching.update(new_edges)

        # (2) Remove matched vertices: mark (1 shuffle).
        matched_vertices = {x for edge in new_edges for x in edge}
        removals = runtime.pipeline.from_items(
            [(x, ("remove", None)) for x in matched_vertices]
        )
        tagged = current.map_elements(
            lambda record: (record[0], ("node", record[1])),
            name="tag-graph",
        )
        marked = tagged.flatten_with(removals).group_by_key(name="mark-matched")

        # (3) Survivors drop edges to removed vertices (1 shuffle).
        def _survivor_updates(record):
            vertex, tags = record
            neighbors = None
            removed = False
            for kind, payload in tags:
                if kind == "node":
                    neighbors = payload
                else:
                    removed = True
            if neighbors is None:
                return []
            if removed:
                return [(y, ("deledge", vertex)) for y in neighbors]
            return [(vertex, ("survivor", neighbors))]

        updated = marked.flat_map(
            _survivor_updates, name="emit-deletions"
        ).group_by_key(name="apply-deletions")

        def _rebuild(record):
            vertex, tags = record
            neighbors = None
            deleted = set()
            for kind, payload in tags:
                if kind == "survivor":
                    neighbors = payload
                else:
                    deleted.add(payload)
            if neighbors is None:
                return []
            kept = tuple(u for u in neighbors if u not in deleted)
            if not kept:
                return []
            return [(vertex, kept)]

        current = updated.flat_map(_rebuild, name="rebuild-graph")

    return RootsetMatchingResult(matching=matching, metrics=metrics,
                                 phases=phases)


def _solve_in_memory(records, seed: int) -> Set[EdgeId]:
    """Greedy matching on the residual graph under the global edge order."""
    records = sorted(records)
    vertices = [vertex for vertex, _ in records]
    index = {vertex: i for i, vertex in enumerate(vertices)}
    local = Graph(len(vertices))
    for vertex, neighbors in records:
        for u in neighbors:
            if u in index and vertex < u:
                local.add_edge(index[vertex], index[u])
    ranks = {
        edge_key(a, b): hash_rank(seed, *edge_key(vertices[a], vertices[b]))
        for a, b in local.edges()
    }
    chosen = greedy_matching(local, ranks)
    return {edge_key(vertices[a], vertices[b]) for a, b in chosen}


# ---------------------------------------------------------------------------
# Registry spec (the Session/CLI entry point)
# ---------------------------------------------------------------------------


def _summarize(result: RootsetMatchingResult, graph: Graph):
    return {"output_size": len(result.matching), "phases": result.phases}


def _describe(result: RootsetMatchingResult, graph: Graph, params) -> str:
    return (f"MPC rootset matching: {len(result.matching)} edges "
            f"({result.phases} phase(s))")


register_algorithm(AlgorithmSpec(
    name="rootset-matching",
    summary="MPC rootset maximal matching baseline",
    input_kind="graph",
    run=mpc_rootset_matching,
    prepare=prepare_rootset_matching,
    update=update_rootset_matching,
    summarize=_summarize,
    describe=_describe,
    params=(
        ParamSpec("in_memory_threshold", int, 512,
                  "edge count below which the residual graph is finished "
                  "on one machine"),
    ),
    prep_seed_sensitive=False,  # placement ignores the seed
    model="mpc",
))
