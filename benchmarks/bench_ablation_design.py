"""Ablations of the design choices DESIGN.md calls out.

Three sweeps that quantify the knobs behind the paper's algorithms:

* the TruncatedPrim exploration budget n^{eps/2} — shrink factor vs query
  cost (the Lemma 3.3 / Lemma 3.4 trade-off that picks eps);
* the KKT sampling probability p — surviving F-light edges O(n/p) vs the
  cost of solving the sample (the Lemma 3.9 trade-off behind p = 1/log n);
* the per-vertex matching cache of Section 5.4 — KV reads/bytes and time
  with and without it (paper: 2.65-8.81x fewer bytes, 1.42-1.95x faster).
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.analysis.experiment import bench_config, run_ampc_matching
from repro.analysis.datasets import load_dataset, load_weighted_dataset
from repro.analysis.reporting import Table
from repro.core.kkt import kkt_msf
from repro.core.msf import ampc_msf
from repro.sequential.mst import kruskal_msf


def test_ablation_prim_budget(benchmark, weighted_datasets):
    """Exploration budget vs contraction quality and query cost."""
    graph = weighted_datasets["TW-S"]
    n = graph.num_vertices
    budgets = [2, max(2, round(n ** 0.25)), max(2, round(n ** 0.5)), 128]

    def compute():
        rows = []
        for budget in budgets:
            result = ampc_msf(graph, config=bench_config(), seed=1,
                              search_budget=budget)
            rows.append((budget, result.contracted_vertices,
                         result.prim_edges, result.metrics.kv_reads,
                         result.metrics.simulated_time_s,
                         len(result.forest)))
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        "Ablation: TruncatedPrim budget (TW-S, n = %d)" % n,
        ["Budget", "Contracted n", "Prim MSF edges", "KV reads",
         "Sim time", "|forest|"],
    )
    for budget, contracted, prim, reads, time, forest in rows:
        table.add_row(budget, contracted, prim, reads, f"{time:.2f}s",
                      forest)
    table.show()

    forests = {row[5] for row in rows}
    assert len(forests) == 1, "the budget must never change the output"
    contracted = [row[1] for row in rows]
    reads = [row[3] for row in rows]
    # Bigger budgets shrink the contracted graph more, at more queries.
    assert contracted[0] > contracted[-1]
    assert reads[0] < reads[-1]


def test_ablation_kkt_sampling(benchmark):
    """Sampling probability vs F-light survivors (Lemma 3.9: O(n/p))."""
    graph = load_weighted_dataset("OK-S")
    n = graph.num_vertices
    probabilities = [0.5, 1.0 / math.log(n), 1.0 / (2 * math.log(n))]
    expected = sorted(kruskal_msf(graph))

    def compute():
        rows = []
        for p in probabilities:
            result = kkt_msf(graph, config=bench_config(), seed=1,
                             sample_probability=p)
            assert result.forest == expected
            rows.append((p, result.sampled_edges, result.light_edges,
                         result.total_queries))
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        "Ablation: KKT sampling probability (OK-S)",
        ["p", "Sampled edges", "F-light edges", "Total queries",
         "light / (n/p)"],
    )
    for p, sampled, light, queries in rows:
        table.add_row(f"{p:.3f}", sampled, light, queries,
                      f"{light / (n / p):.2f}")
    table.show()

    # Smaller p -> fewer sampled edges but more light survivors.
    sampled = [row[1] for row in rows]
    light = [row[2] for row in rows]
    assert sampled[0] > sampled[-1]
    assert light[0] < light[-1]
    # The sampling lemma's O(n/p) bound, with slack for the constant.
    for p, _, light_count, __ in rows:
        assert light_count <= 4 * n / p


def test_ablation_matching_cache(benchmark, datasets):
    """The per-vertex cache of Section 5.4: bytes and time, on vs off."""

    def compute():
        rows = []
        for ds in ("OK-S", "TW-S", "FS-S"):
            graph = datasets[ds]
            cached = run_ampc_matching(graph,
                                       config=bench_config(caching=True))
            uncached = run_ampc_matching(graph,
                                         config=bench_config(caching=False))
            assert cached["output_size"] == uncached["output_size"]
            rows.append((ds,
                         uncached["kv_read_bytes"] / cached["kv_read_bytes"],
                         uncached["simulated_time_s"]
                         / cached["simulated_time_s"]))
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        "Ablation: matching per-vertex cache (paper: 2.65-8.81x bytes, "
        "1.42-1.95x time)",
        ["Dataset", "KV-bytes reduction", "Time speedup"],
    )
    for ds, bytes_ratio, time_ratio in rows:
        table.add_row(ds, f"{bytes_ratio:.2f}x", f"{time_ratio:.2f}x")
    table.show()

    for _, bytes_ratio, time_ratio in rows:
        assert bytes_ratio > 1.2
        assert time_ratio > 1.05
