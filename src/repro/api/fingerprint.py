"""Content-stable graph fingerprints.

The preprocessing cache must key on *what the graph is*, not on where it
happens to live in memory: ``id(graph)`` keys break as soon as a caller
mutates a graph in place (a count-preserving edge swap leaves ``id`` and
the vertex/edge counts unchanged while invalidating every DHT-resident
artifact), and they silently miss when two equal graphs are materialized
twice — exactly the case a serving system wants to share.

:func:`graph_fingerprint` hashes the graph's type, vertex-id space and its
deterministic edge iteration (weights included for weighted graphs) into a
short hex digest.  It is stable across interpreter runs (no dependence on
``PYTHONHASHSEED``) and across object identities, so equal graphs share
preprocessing and mutated graphs never reuse stale artifacts.
"""

from __future__ import annotations

import hashlib
import threading
import weakref


def graph_fingerprint(graph) -> str:
    """Hex digest identifying a graph by content.

    Works for any object exposing ``num_vertices`` and a deterministic
    ``edges()`` iterator (both :class:`~repro.graph.graph.Graph` and
    :class:`~repro.graph.graph.WeightedGraph` do; weighted edge tuples
    hash their weights too, via exact ``repr``).
    """
    edges = getattr(graph, "edges", None)
    num_vertices = getattr(graph, "num_vertices", None)
    if edges is None or num_vertices is None:
        raise TypeError(
            f"cannot fingerprint {type(graph).__name__}: expected a graph "
            "exposing num_vertices and edges()"
        )
    digest = hashlib.blake2b(digest_size=16)
    digest.update(type(graph).__name__.encode("utf-8"))
    digest.update(b"|")
    digest.update(str(num_vertices).encode("utf-8"))
    # Join-and-update in bounded chunks: byte-identical to the per-edge
    # "|" + repr(edge) stream, without a Python-level loop per edge and
    # without materializing one giant buffer for huge graphs.
    chunk: list = []
    append = chunk.append
    for edge in edges():
        append(repr(edge))
        if len(chunk) == 65536:
            digest.update(b"|")
            digest.update("|".join(chunk).encode("utf-8"))
            chunk.clear()
    if chunk:
        digest.update(b"|")
        digest.update("|".join(chunk).encode("utf-8"))
    return digest.hexdigest()


class FingerprintMemo:
    """A version-checked, weakly-keyed :func:`graph_fingerprint` memo.

    Repository graph classes bump ``content_version`` on every mutation,
    so their fingerprint only needs recomputing when the version moved;
    objects without a ``content_version`` are re-walked every call, as a
    plain :func:`graph_fingerprint` would.  Weak keying means the memo
    never extends a graph's lifetime.  Thread-safe; shared by
    :class:`~repro.api.session.Session` and the serving dispatchers.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._memo = weakref.WeakKeyDictionary()

    def fingerprint(self, graph) -> str:
        version = getattr(graph, "content_version", None)
        if version is None:
            return graph_fingerprint(graph)
        with self._lock:
            memo = self._memo.get(graph)
            if memo is not None and memo[0] == version:
                return memo[1]
        fingerprint = graph_fingerprint(graph)
        with self._lock:
            self._memo[graph] = (version, fingerprint)
        return fingerprint
