"""Tests for report-table formatting."""

import pytest

from repro.analysis.reporting import Table, format_bytes, format_seconds, normalize


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(0) == "0"
        assert format_bytes(1.4e9) == "1.40e+09"

    def test_format_seconds(self):
        assert format_seconds(1234.5) == "1,234.50s"

    def test_normalize(self):
        assert normalize([2.0, 4.0, 8.0]) == [1.0, 2.0, 4.0]

    def test_normalize_skips_zeros(self):
        assert normalize([0.0, 2.0, 4.0]) == [0.0, 1.0, 2.0]


class TestTable:
    def test_render_contains_everything(self):
        table = Table("My Table", ["a", "b"])
        table.add_row("x", 12)
        table.add_row("longer-cell", 3.5)
        text = table.render()
        assert "My Table" in text
        assert "longer-cell" in text
        assert "12" in text
        assert "3.50" in text

    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_cell_rendering(self):
        assert Table._render(True) == "yes"
        assert Table._render(1234567) == "1,234,567"
        assert Table._render(1.5e-7) == "1.50e-07"
        assert Table._render("s") == "s"

    def test_show_prints(self, capsys):
        table = Table("t", ["a"])
        table.add_row(1)
        table.show()
        assert "t" in capsys.readouterr().out
