"""The MPC runtime.

An MPC round ends at a communication barrier: machines exchange messages
(a shuffle) and the next round starts.  MPC algorithms in this repository
are plain dataflow pipelines — the runtime only adds a round counter and
the in-memory fallback used by every baseline in the paper once the
instance drops below a size threshold (Sections 5.3-5.5 use 5 * 10^7 edges
on the production testbed; the scaled datasets use a proportionally scaled
threshold).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.ampc.cluster import Cluster, ClusterConfig
from repro.ampc.faults import FaultPlan
from repro.dataflow.pcollection import PCollection
from repro.dataflow.pipeline import Pipeline


class MPCRuntime:
    """One MPC computation: a pipeline plus round accounting."""

    def __init__(self, cluster: Optional[Cluster] = None,
                 config: Optional[ClusterConfig] = None,
                 fault_plan: Optional[FaultPlan] = None):
        self.pipeline = Pipeline(cluster=cluster, config=config,
                                 fault_plan=fault_plan)
        self.cluster = self.pipeline.cluster
        self.metrics = self.cluster.metrics

    @property
    def config(self) -> ClusterConfig:
        return self.cluster.config

    def next_round(self) -> int:
        self.metrics.rounds += 1
        return self.metrics.rounds

    def run_in_memory(self, pcollection: PCollection,
                      solver: Callable[[List[Any]], Any],
                      operations_estimate: Optional[int] = None) -> Any:
        """Ship a PCollection to one machine and solve it there.

        Charges the gather shuffle plus the sequential compute (estimated as
        ``operations_estimate`` elementary operations; defaults to an
        m log m sort-like bound on the element count).
        """
        gathered = pcollection.to_single_machine(name="gather-for-fallback")
        items = gathered.collect()
        if operations_estimate is None:
            count = max(1, len(items))
            operations_estimate = count * max(1, count.bit_length())
        self.pipeline.run_on_driver(operations_estimate)
        return solver(items)
