"""Strict AMPC round semantics across full algorithms.

In the model (Section 2), round i reads D_{i-1} and writes D_i: a store
must never be read in the round that writes it.  ``strict_rounds=True``
turns violations into errors — these tests prove the shipped algorithms
respect the discipline end to end.
"""

import pytest

from repro.ampc import AMPCRuntime, ClusterConfig, StoreSealedError
from repro.core.matching import ampc_maximal_matching
from repro.core.mis import ampc_mis
from repro.core.msf import ampc_msf
from repro.graph.generators import (
    degree_weighted,
    erdos_renyi_gnm,
)

CONFIG = ClusterConfig(num_machines=4)


def test_mis_respects_round_discipline():
    graph = erdos_renyi_gnm(50, 120, seed=1)
    runtime = AMPCRuntime(config=CONFIG, strict_rounds=True)
    loose = ampc_mis(graph, config=CONFIG, seed=1)
    strict = ampc_mis(graph, runtime=runtime, seed=1)
    assert strict.independent_set == loose.independent_set


def test_truncated_mis_respects_round_discipline():
    graph = erdos_renyi_gnm(50, 120, seed=2)
    runtime = AMPCRuntime(config=CONFIG, strict_rounds=True)
    result = ampc_mis(graph, runtime=runtime, seed=2, search_budget=5)
    loose = ampc_mis(graph, config=CONFIG, seed=2)
    assert result.independent_set == loose.independent_set


def test_matching_respects_round_discipline():
    graph = erdos_renyi_gnm(40, 100, seed=3)
    runtime = AMPCRuntime(config=CONFIG, strict_rounds=True)
    strict = ampc_maximal_matching(graph, runtime=runtime, seed=3)
    loose = ampc_maximal_matching(graph, config=CONFIG, seed=3)
    assert strict.matching == loose.matching


def test_msf_respects_round_discipline():
    graph = degree_weighted(erdos_renyi_gnm(40, 100, seed=4))
    runtime = AMPCRuntime(config=CONFIG, strict_rounds=True)
    strict = ampc_msf(graph, runtime=runtime, seed=4)
    loose = ampc_msf(graph, config=CONFIG, seed=4)
    assert strict.forest == loose.forest


def test_violation_is_detected():
    """Reading a store before its round is sealed raises in strict mode."""
    runtime = AMPCRuntime(config=CONFIG, strict_rounds=True)
    store = runtime.new_store("early")
    store.write("k", 1)
    with pytest.raises(StoreSealedError):
        store.lookup("k")


def test_contains_enforces_round_discipline_like_lookup():
    """Regression: ``contains`` used to skip the unsealed-read check that
    ``lookup`` enforces, so a membership probe could leak same-round
    writes in strict mode."""
    runtime = AMPCRuntime(config=CONFIG, strict_rounds=True)
    store = runtime.new_store("early-contains")
    store.write("k", 1)
    with pytest.raises(StoreSealedError):
        store.contains("k")
    runtime.next_round()
    assert store.contains("k")
    assert not store.contains("missing")
