"""Tests for sequential random-greedy MIS and maximal matching."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import complete_graph, cycle_graph, path_graph, star_graph
from repro.graph.generators import erdos_renyi_gnm
from repro.sequential import (
    greedy_matching,
    greedy_mis,
    is_maximal_independent_set,
    is_maximal_matching,
    random_edge_ranks,
    random_vertex_ranks,
)


class TestGreedyMIS:
    def test_star_low_center_rank(self):
        graph = star_graph(5)
        ranks = [0.0, 0.5, 0.6, 0.7, 0.8]
        assert greedy_mis(graph, ranks) == {0}

    def test_star_high_center_rank(self):
        graph = star_graph(5)
        ranks = [0.9, 0.1, 0.2, 0.3, 0.4]
        assert greedy_mis(graph, ranks) == {1, 2, 3, 4}

    def test_complete_graph_single_vertex(self):
        graph = complete_graph(6)
        ranks = random_vertex_ranks(6, seed=0)
        mis = greedy_mis(graph, ranks)
        assert len(mis) == 1

    def test_always_maximal(self):
        for seed in range(5):
            graph = erdos_renyi_gnm(30, 60, seed=seed)
            ranks = random_vertex_ranks(30, seed=seed)
            assert is_maximal_independent_set(graph, greedy_mis(graph, ranks))

    def test_deterministic_for_fixed_seed(self):
        graph = erdos_renyi_gnm(25, 50, seed=1)
        ranks = random_vertex_ranks(25, seed=7)
        assert greedy_mis(graph, ranks) == greedy_mis(graph, ranks)


class TestGreedyMatching:
    def test_path_lowest_rank_first(self):
        graph = path_graph(3)
        ranks = {(0, 1): 0.2, (1, 2): 0.1}
        assert greedy_matching(graph, ranks) == {(1, 2)}

    def test_always_maximal(self):
        for seed in range(5):
            graph = erdos_renyi_gnm(30, 70, seed=seed)
            ranks = random_edge_ranks(graph, seed=seed)
            assert is_maximal_matching(graph, greedy_matching(graph, ranks))

    def test_cycle_matching_size(self):
        graph = cycle_graph(6)
        ranks = random_edge_ranks(graph, seed=3)
        matching = greedy_matching(graph, ranks)
        assert len(matching) in (2, 3)  # maximal matchings of C6


class TestRanks:
    def test_vertex_ranks_deterministic(self):
        assert random_vertex_ranks(10, seed=5) == random_vertex_ranks(10, seed=5)

    def test_vertex_ranks_in_unit_interval(self):
        assert all(0 <= r < 1 for r in random_vertex_ranks(100, seed=1))

    def test_edge_ranks_cover_all_edges(self):
        graph = cycle_graph(8)
        ranks = random_edge_ranks(graph, seed=2)
        assert len(ranks) == 8


@given(
    st.integers(min_value=1, max_value=25),
    st.integers(min_value=0, max_value=999),
)
@settings(max_examples=40, deadline=None)
def test_greedy_outputs_valid_random(n, seed):
    m = min(2 * n, n * (n - 1) // 2)
    graph = erdos_renyi_gnm(n, m, seed=seed)
    vranks = random_vertex_ranks(n, seed=seed)
    eranks = random_edge_ranks(graph, seed=seed)
    assert is_maximal_independent_set(graph, greedy_mis(graph, vranks))
    assert is_maximal_matching(graph, greedy_matching(graph, eranks))
