"""The unified entry point for every AMPC algorithm.

Three pieces:

* :mod:`repro.api.registry` — the algorithm registry each core module
  registers its :class:`~repro.api.registry.AlgorithmSpec` into.
* :class:`~repro.api.session.Session` — one cluster configuration, many
  runs, with a per-graph preprocessing cache (the DHT-resident graph the
  paper's Section 5 algorithms all start by building).
* :class:`~repro.api.result.RunResult` — the uniform envelope every run
  returns: output, metrics summary, phase breakdown, provenance,
  ``to_json()``.

Typical use::

    from repro.api import Session

    session = Session(ClusterConfig(num_machines=10))
    result = session.run("mis", graph, seed=1)
    print(result.description, result.metrics["shuffles"])
"""

from repro.api import registry
from repro.api.fingerprint import chain_fingerprint, graph_fingerprint
from repro.api.registry import (
    AlgorithmSpec,
    ParamSpec,
    get as get_algorithm,
    names as algorithm_names,
    register_algorithm,
    specs as algorithm_specs,
)
from repro.api.result import RunResult
from repro.api.session import GraphHandle, Session, SessionStats

__all__ = [
    "AlgorithmSpec",
    "GraphHandle",
    "ParamSpec",
    "RunResult",
    "Session",
    "SessionStats",
    "algorithm_names",
    "algorithm_specs",
    "chain_fingerprint",
    "get_algorithm",
    "graph_fingerprint",
    "register_algorithm",
    "registry",
]
