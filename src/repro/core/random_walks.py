"""Random walks and Monte-Carlo PageRank in AMPC (Section 5.7 extension).

The paper closes by naming random-walk problems — PageRank, Personalized
PageRank, and walk-based embeddings — as the natural next AMPC
applications, "since it efficiently supports random access".  This module
implements that direction:

* :func:`ampc_random_walks` — from every start vertex, walk ``walk_length``
  steps choosing hash-pseudo-random neighbors through adaptive DHT lookups:
  one shuffle to place the adjacency, one adaptive round for all walks, of
  any length — the round structure MPC fundamentally cannot match (each
  walk step is a dependent lookup, i.e. an MPC round).
* :func:`ampc_pagerank` — the complete-path Monte-Carlo PageRank estimator:
  from each vertex run ``walks_per_vertex`` walks that terminate with
  probability ``1 - damping`` per step; the visit counts, scaled by
  ``(1 - damping) / (n * walks_per_vertex)``, estimate the PageRank vector.
* :func:`pagerank_power_iteration` — the sequential reference the tests
  compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.dht import DHTStore
from repro.ampc.metrics import Metrics
from repro.ampc.runtime import AMPCRuntime
from repro.api.incremental import patch_records, touched_vertices
from repro.api.registry import AlgorithmSpec, ParamSpec, register_algorithm
from repro.core.ranks import hash_rank
from repro.dataflow.dofn import DoFn
from repro.graph.graph import Graph


@dataclass
class RandomWalkResult:
    """Endpoints and visit counts of one AMPC random-walk round."""

    #: endpoint of each walk, keyed by (start, walk index)
    endpoints: Dict[Tuple[int, int], int]
    #: visits[v] = number of times any walk visited v (including starts)
    visits: List[int]
    metrics: Metrics
    #: AMPC rounds (2: the preparation round — possibly cache-served —
    #: plus the walk round)
    rounds: int = 0


@dataclass
class PageRankResult:
    """Monte-Carlo PageRank estimates plus execution metrics."""

    scores: List[float]
    metrics: Metrics
    total_steps: int = 0
    #: AMPC rounds (see :class:`RandomWalkResult`)
    rounds: int = 0


class _WalkDoFn(DoFn):
    """Run all walks of a start vertex through adaptive lookups."""

    def __init__(self, store, seed: int, num_walks: int, walk_length: int,
                 damping: Optional[float]):
        self._store = store
        self._seed = seed
        self._num_walks = num_walks
        self._walk_length = walk_length
        self._damping = damping

    def process(self, element, ctx):
        start, neighbors = element
        for walk in range(self._num_walks):
            current = start
            current_neighbors = neighbors
            yield ("visit", start, 1)
            step = 0
            while True:
                if self._damping is None:
                    if step >= self._walk_length:
                        break
                elif hash_rank(self._seed, 1, start, walk, step) \
                        >= self._damping:
                    break  # geometric termination: 1 - damping per step
                if step >= self._walk_length:
                    break  # hard cap, keeps the O(S) budget honest
                if not current_neighbors:
                    break  # dangling vertex: terminate the walk
                choice = hash_rank(self._seed, 2, start, walk, step)
                nxt = current_neighbors[int(choice * len(current_neighbors))]
                current = nxt
                current_neighbors = ctx.lookup(self._store, nxt) or ()
                yield ("visit", current, 1)
                step += 1
            yield ("end", (start, walk), current)


@dataclass
class PreparedWalks:
    """The DHT-resident walk adjacency (seed-independent)."""

    #: ``(vertex, neighbors)`` records, for free re-placement
    records: List[Tuple[int, Tuple[int, ...]]]
    store: DHTStore


def prepare_random_walks(graph: Graph, *,
                         runtime: Optional[AMPCRuntime] = None,
                         config: Optional[ClusterConfig] = None,
                         seed: int = 0) -> PreparedWalks:
    """The walk preprocessing: place the adjacency and write it to the DHT.

    Shared by :func:`ampc_random_walks` and :func:`ampc_pagerank` — one
    prepared graph serves both, under any seed (walk randomness is hashed
    per walk, not baked into the adjacency).
    """
    del seed
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    with metrics.phase("PlaceGraph"):
        nodes = runtime.pipeline.from_items(
            [(v, graph.neighbors(v)) for v in graph.vertices()]
        ).repartition(lambda record: record[0], name="place-walk-graph")
    with metrics.phase("KV-Write"):
        store = runtime.new_store("walk-adjacency")
        runtime.write_store(nodes, store,
                            key_fn=lambda record: record[0],
                            value_fn=lambda record: record[1])
    runtime.next_round()
    return PreparedWalks(records=nodes.collect(), store=store)


def update_random_walks(prepared: PreparedWalks, graph: Graph, *,
                        runtime: Optional[AMPCRuntime] = None,
                        config: Optional[ClusterConfig] = None,
                        seed: int = 0,
                        insertions=(), deletions=()) -> PreparedWalks:
    """Patch the DHT-resident walk adjacency after an edge batch.

    Plain neighbor lists: only the batch endpoints' records change, and
    they are rewritten into a derived copy-on-write child of the sealed
    store in O(batch).  Seed-independent like the preparation itself.
    """
    del seed
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    touched = touched_vertices(insertions, deletions)
    with metrics.phase("PatchWalkGraph"):
        patch = runtime.pipeline.from_items(
            [(v, graph.neighbors(v)) for v in touched]
        ).repartition(lambda record: record[0], name="place-walk-patch")
    with metrics.phase("KV-Patch"):
        store = runtime.derive_store(prepared.store)
        runtime.write_store(patch, store,
                            key_fn=lambda record: record[0],
                            value_fn=lambda record: record[1])
    runtime.next_round()
    return PreparedWalks(records=patch_records(prepared.records,
                                               patch.collect()),
                         store=store)


def _walk_round(graph: Graph, *, runtime: AMPCRuntime, seed: int,
                num_walks: int, walk_length: int,
                damping: Optional[float],
                prepared: Optional[PreparedWalks] = None):
    metrics = runtime.metrics
    if prepared is None:
        prepared = prepare_random_walks(graph, runtime=runtime)
    rounds_before = metrics.rounds
    nodes = runtime.pipeline.from_items(
        prepared.records, key_fn=lambda record: record[0]
    )
    with metrics.phase("Walks"):
        outputs = nodes.par_do(
            _WalkDoFn(prepared.store, seed, num_walks, walk_length, damping),
            name="random-walks",
        ).collect()
    runtime.next_round()
    # +1: the preparation round, whether executed here or cache-served.
    return outputs, metrics.rounds - rounds_before + 1


def ampc_random_walks(graph: Graph, *,
                      runtime: Optional[AMPCRuntime] = None,
                      config: Optional[ClusterConfig] = None,
                      seed: int = 0,
                      walks_per_vertex: int = 1,
                      walk_length: int = 10,
                      prepared: Optional[PreparedWalks] = None
                      ) -> RandomWalkResult:
    """Fixed-length random walks from every vertex in 2 AMPC rounds."""
    if walk_length < 0 or walks_per_vertex < 1:
        raise ValueError("need walk_length >= 0 and walks_per_vertex >= 1")
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    outputs, rounds = _walk_round(graph, runtime=runtime, seed=seed,
                                  num_walks=walks_per_vertex,
                                  walk_length=walk_length, damping=None,
                                  prepared=prepared)
    visits = [0] * graph.num_vertices
    endpoints: Dict[Tuple[int, int], int] = {}
    for tag, key, value in outputs:
        if tag == "visit":
            visits[key] += value
        else:
            endpoints[key] = value
    return RandomWalkResult(endpoints=endpoints, visits=visits,
                            metrics=runtime.metrics, rounds=rounds)


def ampc_pagerank(graph: Graph, *,
                  runtime: Optional[AMPCRuntime] = None,
                  config: Optional[ClusterConfig] = None,
                  seed: int = 0,
                  damping: float = 0.85,
                  walks_per_vertex: int = 16,
                  max_walk_length: int = 64,
                  prepared: Optional[PreparedWalks] = None) -> PageRankResult:
    """Complete-path Monte-Carlo PageRank in 2 AMPC rounds.

    Each of the ``n * walks_per_vertex`` walks terminates with probability
    ``1 - damping`` per step (expected length damping/(1-damping));
    ``scores[v] = visits(v) * (1 - damping) / (n * walks_per_vertex)``
    estimates the PageRank of ``v`` (Avrachenkov et al.'s estimator).
    """
    if not (0.0 < damping < 1.0):
        raise ValueError("damping must be in (0, 1)")
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    outputs, rounds = _walk_round(graph, runtime=runtime, seed=seed,
                                  num_walks=walks_per_vertex,
                                  walk_length=max_walk_length,
                                  damping=damping, prepared=prepared)
    visits = [0] * graph.num_vertices
    total_steps = 0
    for tag, key, value in outputs:
        if tag == "visit":
            visits[key] += value
            total_steps += 1
    n = graph.num_vertices
    scale = (1.0 - damping) / (n * walks_per_vertex)
    scores = [count * scale for count in visits]
    return PageRankResult(scores=scores, metrics=runtime.metrics,
                          total_steps=total_steps, rounds=rounds)


def pagerank_power_iteration(graph: Graph, *, damping: float = 0.85,
                             iterations: int = 100,
                             tolerance: float = 1e-10) -> List[float]:
    """Sequential reference: power iteration with uniform teleportation.

    Dangling vertices teleport (their walk terminates and restarts), which
    matches the Monte-Carlo estimator's termination-at-dangling behaviour.
    """
    n = graph.num_vertices
    if n == 0:
        return []
    scores = [1.0 / n] * n
    for _ in range(iterations):
        incoming = [0.0] * n
        for v in graph.vertices():
            degree = graph.degree(v)
            if degree == 0:
                continue
            share = scores[v] / degree
            for u in graph.neighbors(v):
                incoming[u] += share
        updated = [(1.0 - damping) / n + damping * incoming[v]
                   for v in range(n)]
        # Renormalize the mass lost at dangling vertices.
        total = sum(updated)
        updated = [value / total for value in updated]
        delta = sum(abs(a - b) for a, b in zip(updated, scores))
        scores = updated
        if delta < tolerance:
            break
    return scores


# ---------------------------------------------------------------------------
# Registry specs (the Session/CLI entry points)
# ---------------------------------------------------------------------------


def _summarize_pagerank(result: PageRankResult, graph: Graph):
    return {
        "output_size": len(result.scores),
        "total_steps": result.total_steps,
        "rounds": result.rounds,
    }


def _describe_pagerank(result: PageRankResult, graph: Graph, params) -> str:
    top = params.get("top")
    top = 10 if top is None else top
    ranked = sorted(range(graph.num_vertices),
                    key=lambda v: -result.scores[v])
    lines = [f"PageRank over {result.total_steps:,} walk steps; "
             f"top {top}:"]
    for v in ranked[:top]:
        lines.append(f"  vertex {v}: {result.scores[v]:.5f}")
    return "\n".join(lines)


register_algorithm(AlgorithmSpec(
    name="pagerank",
    summary="Monte-Carlo PageRank",
    input_kind="graph",
    run=ampc_pagerank,
    prepare=prepare_random_walks,
    update=update_random_walks,
    summarize=_summarize_pagerank,
    describe=_describe_pagerank,
    params=(
        ParamSpec("walks_per_vertex", int, 16, "walks per vertex",
                  cli="--walks"),
        ParamSpec("damping", float, 0.85, "continuation probability"),
        ParamSpec("max_walk_length", int, 64,
                  "hard per-walk step cap (keeps the O(S) budget honest)"),
        ParamSpec("top", int, 10,
                  "how many top-ranked vertices to print",
                  algorithm_arg=False),
    ),
    prep_seed_sensitive=False,  # the adjacency ignores the seed
))


def _summarize_walks(result: RandomWalkResult, graph: Graph):
    return {
        "output_size": len(result.endpoints),
        "total_visits": sum(result.visits),
        "rounds": result.rounds,
    }


def _describe_walks(result: RandomWalkResult, graph: Graph, params) -> str:
    return (f"random walks: {len(result.endpoints)} walks, "
            f"{sum(result.visits):,} total visits")


register_algorithm(AlgorithmSpec(
    name="random-walks",
    summary="fixed-length random walks from every vertex",
    input_kind="graph",
    run=ampc_random_walks,
    prepare=prepare_random_walks,
    update=update_random_walks,
    summarize=_summarize_walks,
    describe=_describe_walks,
    params=(
        ParamSpec("walks_per_vertex", int, 1, "walks per vertex",
                  cli="--walks"),
        ParamSpec("walk_length", int, 10, "steps per walk"),
    ),
    prep_seed_sensitive=False,
))
