"""A bounded worker pool for the serving layer.

Deliberately small and dependency-free: a fixed number of daemon worker
threads drain a (optionally bounded) queue of submitted callables, each
resolving a :class:`PendingResult`.  Bounding the queue gives the service
backpressure — a burst beyond ``max_pending`` blocks the submitter instead
of growing memory without limit.

Queued work can carry a **deadline** (absolute ``time.monotonic()``
seconds): work still queued when its deadline passes is failed with
:class:`DeadlineExceededError` instead of executed — a query nobody is
waiting for anymore should not occupy a worker.  Work that already
started is never interrupted; deadlines bound *queue wait*, not
execution.  :meth:`PendingResult.cancel` gives callers the same lever
explicitly (client disconnected, result no longer wanted).
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Iterable, Iterator, List, Optional


class ServiceClosedError(RuntimeError):
    """Submission to a pool/service that has been closed."""


class CancelledError(RuntimeError):
    """The work was cancelled while still queued (never started)."""


class DeadlineExceededError(TimeoutError):
    """The work's deadline passed before it could start executing."""


class PendingResult:
    """Future-like handle for one submitted unit of work."""

    def __init__(self, deadline: Optional[float] = None):
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None
        #: absolute time.monotonic() seconds; None = no deadline
        self.deadline = deadline
        self._state_lock = threading.Lock()
        self._started = False
        self._resolved = False
        self._callbacks: List[Callable[["PendingResult"], None]] = []

    # -- worker side -------------------------------------------------------

    def _start(self) -> bool:
        """Transition queued -> running; False if already resolved
        (cancelled / expired), in which case the work must not run."""
        with self._state_lock:
            if self._resolved:
                return False
            self._started = True
            return True

    def _finish(self, value: Any, error: Optional[BaseException]) -> None:
        # Done-callbacks run *before* the event wakes waiters, so state
        # they maintain (service counters, admission charge-backs) is
        # consistent by the time result() returns.  The event is set in
        # a finally: a raising callback must never strand waiters.
        with self._state_lock:
            if self._resolved:
                return
            self._resolved = True
            self._value = value
            self._error = error
            callbacks, self._callbacks = self._callbacks, []
        try:
            for callback in callbacks:
                callback(self)
        finally:
            self._event.set()

    def _resolve(self, value: Any) -> None:
        self._finish(value, None)

    def _fail(self, error: BaseException) -> None:
        self._finish(None, error)

    # -- caller side -------------------------------------------------------

    def cancel(self) -> bool:
        """Cancel if still queued: resolves with :class:`CancelledError`
        and returns True.  No-op (returns False) once the work has
        started running or finished — running work is never interrupted.
        """
        with self._state_lock:
            if self._started or self._resolved:
                return False
            self._resolved = True
            self._error = CancelledError("cancelled while queued")
            callbacks, self._callbacks = self._callbacks, []
        try:
            for callback in callbacks:
                callback(self)
        finally:
            self._event.set()
        return True

    def cancelled(self) -> bool:
        return isinstance(self._error, CancelledError)

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether this work's deadline (if any) has passed."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    @property
    def error(self) -> Optional[BaseException]:
        """The failure, without blocking — meaningful once resolved.
        Done-callbacks read this; external callers should prefer
        :meth:`exception`, which waits for resolution.
        """
        return self._error

    def add_done_callback(self, fn: Callable[["PendingResult"], None]) -> None:
        """Run ``fn(self)`` when the work resolves (immediately if it
        already has).  Callbacks run on the resolving thread, before
        waiters are woken; exceptions propagate to it, so keep them
        small and non-raising.
        """
        with self._state_lock:
            if not self._resolved:
                self._callbacks.append(fn)
                return
        fn(self)

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the work finishes; re-raises its exception."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"no result within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        """Block until done; the exception the work raised, or None."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"no result within {timeout}s")
        return self._error


class WorkerPool:
    """``workers`` daemon threads draining one submission queue."""

    def __init__(self, workers: int = 4, *, max_pending: int = 0,
                 name: str = "repro-serve"):
        if workers < 1:
            raise ValueError("need at least one worker")
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_pending)
        self._lock = threading.Lock()
        self._closed = False
        self._threads: List[threading.Thread] = [
            threading.Thread(target=self._drain, name=f"{name}-{index}",
                             daemon=True)
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def workers(self) -> int:
        return len(self._threads)

    def submit(self, fn: Callable[..., Any], *args: Any,
               deadline: Optional[float] = None,
               **kwargs: Any) -> PendingResult:
        """Enqueue ``fn(*args, **kwargs)``; blocks when the queue is full.

        ``deadline`` is absolute ``time.monotonic()`` seconds: if it
        passes while the work is still queued, the work is failed with
        :class:`DeadlineExceededError` instead of executed.
        """
        pending = PendingResult(deadline=deadline)
        # The closed check and the put must be atomic: an item enqueued
        # behind close()'s shutdown sentinels would never drain and its
        # PendingResult would hang forever.  Workers drain without the
        # lock, so a put blocked on a full queue still makes progress.
        with self._lock:
            if self._closed:
                raise ServiceClosedError("worker pool is closed")
            self._queue.put((pending, fn, args, kwargs))
        return pending

    def map_unordered(self, fn: Callable[[Any], Any],
                      items: Iterable[Any], *,
                      timeout: Optional[float] = None) -> Iterator[Any]:
        """Apply ``fn`` to every item on the pool; yield results as each
        completes (completion order, not submission order).

        The whole batch is submitted up front, so slow items never block
        fast ones behind them.  The first item whose ``fn`` raises
        re-raises here (after which remaining results are discarded, but
        their work still runs to completion on the pool).  ``timeout``
        bounds the wait for **each** yielded result.
        """
        done: "queue.Queue" = queue.Queue()

        def run(item: Any) -> None:
            try:
                done.put((True, fn(item)))
            except BaseException as error:  # noqa: BLE001 - ferried below
                done.put((False, error))

        submitted = 0
        for item in list(items):
            self.submit(run, item)
            submitted += 1
        for _ in range(submitted):
            try:
                ok, value = done.get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"no result within {timeout}s") from None
            if not ok:
                raise value
            yield value

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:  # shutdown sentinel
                return
            pending, fn, args, kwargs = item
            if pending.expired():
                pending._fail(DeadlineExceededError(
                    "deadline passed while queued"))
                continue
            if not pending._start():  # cancelled while queued
                continue
            try:
                pending._resolve(fn(*args, **kwargs))
            except BaseException as error:  # noqa: BLE001 - must not die
                pending._fail(error)

    def close(self, wait: bool = True) -> None:
        """Stop accepting work; queued work still drains before exit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._threads:
                self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join()
