"""MPC Boruvka Minimum Spanning Forest (the Section 5.5 baseline).

Classic Boruvka with random red/blue contraction: each phase every vertex
colors itself red or blue by hashing; a blue vertex finds its minimum
weight incident edge and, if the other endpoint is red, contracts into it
(the edge is an MSF edge by the cut property).  Contraction is a star
contraction (blue points to red; red never points), so no pointer jumping
is needed within a phase.

Per the paper: 3 shuffles per phase (adjacency grouping + the two endpoint
rewrites) and 11-28 phases on the real datasets, since each phase only
shrinks the number of *vertices* by a constant factor in expectation.
Below ``in_memory_threshold`` edges the residual multigraph is finished on
one machine with Kruskal.

Edges carry their original endpoints through every contraction and all
ordering uses (weight, original endpoints), so the result is edge-identical
to sequential Kruskal even with tied weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.faults import FaultPlan
from repro.ampc.metrics import Metrics
from repro.api.incremental import patch_records, touched_edges
from repro.api.registry import AlgorithmSpec, ParamSpec, register_algorithm
from repro.core.ranks import hash_rank
from repro.graph.graph import WeightedGraph, edge_key
from repro.mpc.runtime import MPCRuntime

EdgeId = Tuple[int, int]
#: (weight, original_u, original_v, current_u, current_v)
EdgeRecord = Tuple[float, int, int, int, int]


@dataclass
class BoruvkaResult:
    """Output of the MPC Boruvka baseline."""

    forest: List[EdgeId]
    metrics: Metrics
    phases: int = 0


class _RecordUnionFind:
    """Union-find over arbitrary ids for the in-memory tail."""

    def __init__(self):
        self._parent: Dict = {}

    def find(self, x):
        parent = self._parent
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    def union(self, x, y) -> bool:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        self._parent[ry] = rx
        return True


def _kruskal_tail(records: List[EdgeRecord]) -> List[EdgeId]:
    uf = _RecordUnionFind()
    forest: List[EdgeId] = []
    for w, ou, ov, cu, cv in sorted(records, key=lambda r: (r[0], r[1], r[2])):
        if cu != cv and uf.union(cu, cv):
            forest.append(edge_key(ou, ov))
    return forest


@dataclass
class PreparedBoruvka:
    """Edge records staged onto their home machines (seed-independent)."""

    records: List[EdgeRecord]


def prepare_boruvka_msf(graph: WeightedGraph, *,
                        runtime: Optional[MPCRuntime] = None,
                        config: Optional[ClusterConfig] = None,
                        seed: int = 0) -> PreparedBoruvka:
    """Stage the weighted edge records (one placement shuffle)."""
    del seed
    if runtime is None:
        runtime = MPCRuntime(config=config)
    placed = runtime.pipeline.from_items(
        [(w, u, v, u, v) for u, v, w in graph.edges()]
    ).repartition(lambda record: edge_key(record[1], record[2]),
                  name="place-edge-records")
    runtime.next_round()
    return PreparedBoruvka(records=placed.collect())


def update_boruvka_msf(prepared: PreparedBoruvka, graph: WeightedGraph, *,
                       runtime: Optional[MPCRuntime] = None,
                       config: Optional[ClusterConfig] = None,
                       seed: int = 0,
                       insertions=(), deletions=()) -> PreparedBoruvka:
    """Patch the staged edge records after an edge batch (O(batch))."""
    del seed
    if runtime is None:
        runtime = MPCRuntime(config=config)
    touched = touched_edges(insertions, deletions)
    live = [(graph.weight(a, b), a, b, a, b) for a, b in touched
            if graph.has_edge(a, b)]
    removed = [(a, b) for a, b in touched if not graph.has_edge(a, b)]
    patch = runtime.pipeline.from_items(live).repartition(
        lambda record: edge_key(record[1], record[2]),
        name="place-edge-patch")
    runtime.next_round()
    return PreparedBoruvka(records=patch_records(
        prepared.records, patch.collect(), removed,
        key=lambda record: edge_key(record[1], record[2])))


def mpc_boruvka_msf(graph: WeightedGraph, *,
                    runtime: Optional[MPCRuntime] = None,
                    config: Optional[ClusterConfig] = None,
                    fault_plan: Optional[FaultPlan] = None,
                    seed: int = 0,
                    in_memory_threshold: int = 512,
                    max_phases: int = 10_000,
                    prepared: Optional[PreparedBoruvka] = None
                    ) -> BoruvkaResult:
    """Minimum spanning forest via red/blue Boruvka contraction phases."""
    if runtime is None:
        runtime = MPCRuntime(config=config, fault_plan=fault_plan)
    metrics = runtime.metrics

    forest: Set[EdgeId] = set()
    if prepared is not None:
        current = runtime.pipeline.from_items(
            prepared.records,
            key_fn=lambda record: edge_key(record[1], record[2]),
        )
    else:
        records: List[EdgeRecord] = [
            (w, u, v, u, v) for u, v, w in graph.edges()
        ]
        current = runtime.pipeline.from_items(records)
    phases = 0
    while True:
        edge_count = current.count()
        if edge_count == 0:
            break
        if edge_count <= in_memory_threshold:
            remaining = runtime.run_in_memory(current, solver=list)
            forest.update(_kruskal_tail(remaining))
            break
        phases += 1
        if phases > max_phases:
            raise RuntimeError("Boruvka did not converge")
        runtime.next_round()

        def _blue(vertex) -> bool:
            return hash_rank(seed, phases, hash(vertex) & ((1 << 61) - 1)) < 0.5

        # Shuffle 1: group incident edges per current vertex; blue vertices
        # nominate their minimum edge and contract into red endpoints.
        by_vertex = current.flat_map(
            lambda record: [(record[3], record), (record[4], record)],
            name="key-by-endpoints",
        ).group_by_key(name="group-adjacency")

        def _nominate(group):
            vertex, incident = group
            if not _blue(vertex):
                return []
            best = min(incident, key=lambda r: (r[0], r[1], r[2]))
            other = best[4] if best[3] == vertex else best[3]
            if _blue(other):
                return []
            # (blue vertex, red root, the MSF edge it rides along)
            return [(vertex, other, edge_key(best[1], best[2]))]

        pointers = by_vertex.flat_map(_nominate, name="blue-nominations")
        pointer_map: Dict = {}
        for blue_vertex, red_root, msf_edge in pointers.collect():
            pointer_map[blue_vertex] = red_root
            forest.add(msf_edge)

        # Shuffles 2 + 3: rewrite both endpoints through the pointers.
        tagged_ptrs = pointers.map_elements(
            lambda item: (item[0], ("ptr", item[1])), name="tag-pointers"
        )
        keyed_u = current.map_elements(
            lambda record: (record[3], ("edge", record)), name="key-by-u"
        )
        joined_u = keyed_u.flatten_with(tagged_ptrs).group_by_key(
            name="rewrite-u"
        )

        def _apply_u(group):
            vertex, tags = group
            root = vertex
            pending = []
            for kind, payload in tags:
                if kind == "ptr":
                    root = payload
                else:
                    pending.append(payload)
            return [
                (cv, ("edge", (w, ou, ov, root, cv)))
                for (w, ou, ov, cu, cv) in pending
            ]

        half = joined_u.flat_map(_apply_u, name="emit-half-rewritten")
        joined_v = half.flatten_with(tagged_ptrs).group_by_key(
            name="rewrite-v"
        )

        def _apply_v(group):
            vertex, tags = group
            root = vertex
            pending = []
            for kind, payload in tags:
                if kind == "ptr":
                    root = payload
                else:
                    pending.append(payload)
            return [
                (w, ou, ov, cu, root)
                for (w, ou, ov, cu, cv) in pending
                if cu != root
            ]

        rewritten = joined_v.flat_map(_apply_v, name="drop-self-loops")
        # Combiner-style dedup of parallel super-edges: only the minimum
        # order edge between a pair of super-vertices can join the MSF, so
        # the others are dropped before the next phase.  In Flume this runs
        # as a map-side combiner fused with the next shuffle (no extra
        # stage), hence it is not charged separately here.
        best: Dict[EdgeId, EdgeRecord] = {}
        for record in rewritten.collect():
            pair = edge_key(record[3], record[4])
            key = (record[0], record[1], record[2])
            if pair not in best or key < (best[pair][0], best[pair][1],
                                          best[pair][2]):
                best[pair] = record
        current = runtime.pipeline.from_items(sorted(best.values()))

    return BoruvkaResult(forest=sorted(forest), metrics=metrics,
                         phases=phases)


# ---------------------------------------------------------------------------
# Registry spec (the Session/CLI entry point)
# ---------------------------------------------------------------------------


def _summarize(result: BoruvkaResult, graph: WeightedGraph):
    return {
        "output_size": len(result.forest),
        "weight": sum(graph.weight(u, v) for u, v in result.forest),
        "phases": result.phases,
    }


def _describe(result: BoruvkaResult, graph: WeightedGraph, params) -> str:
    weight = sum(graph.weight(u, v) for u, v in result.forest)
    return (f"MPC Boruvka MSF: {len(result.forest)} edges, "
            f"weight {weight:g} ({result.phases} phase(s))")


register_algorithm(AlgorithmSpec(
    name="boruvka-msf",
    summary="MPC Boruvka minimum spanning forest baseline",
    input_kind="weighted",
    run=mpc_boruvka_msf,
    prepare=prepare_boruvka_msf,
    update=update_boruvka_msf,
    summarize=_summarize,
    describe=_describe,
    params=(
        ParamSpec("in_memory_threshold", int, 512,
                  "edge count below which the residual multigraph is "
                  "finished on one machine"),
    ),
    prep_seed_sensitive=False,  # placement ignores the seed
    model="mpc",
))
