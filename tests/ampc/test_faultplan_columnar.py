"""FaultPlan through the columnar prepare path.

The columnar batch twins keep the boxed reference path's *stage-counter
discipline*: each map/partition stage advances the same stage index and
charges the same (stage, machine) cells, so a seeded
:class:`~repro.ampc.faults.FaultPlan` — whose RNG is stateful and
call-order-dependent — preempts exactly the same machines in exactly the
same stages under either layout.  These tests pin that: for every
columnar-gated algorithm, a faulty columnar run and a faulty boxed run
must agree on *all* metrics (preemption count, simulated time), not just
on the output.
"""

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.ampc.faults import FaultPlan
from repro.ampc.vector import HAVE_NUMPY
from repro.api import Session
from repro.graph.generators import degree_weighted, erdos_renyi_gnm

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the columnar prepare path needs numpy")

CONFIG = ClusterConfig(num_machines=4)
GRAPH = erdos_renyi_gnm(40, 100, seed=1)
WEIGHTED = degree_weighted(GRAPH)

#: (algorithm, input graph, module whose HAVE_NUMPY gates columnar)
CASES = [
    ("mis", GRAPH, "repro.core.mis"),
    ("matching", GRAPH, "repro.core.matching"),
    ("msf", WEIGHTED, "repro.core.msf"),
]


def _plan():
    # FaultPlan RNG state advances per executions_for call: each Session
    # needs a fresh plan for the comparison to be apples-to-apples.
    return FaultPlan(preempt_probability=0.4, seed=7)


@pytest.mark.parametrize("algorithm,graph,module", CASES,
                         ids=[case[0] for case in CASES])
def test_faulty_columnar_metrics_match_boxed(algorithm, graph, module,
                                             monkeypatch):
    columnar = Session(CONFIG, fault_plan=_plan()).run(
        algorithm, graph, seed=5)

    import importlib
    monkeypatch.setattr(importlib.import_module(module),
                        "HAVE_NUMPY", False)
    boxed = Session(CONFIG, fault_plan=_plan()).run(
        algorithm, graph, seed=5)

    assert columnar.metrics == boxed.metrics
    assert columnar.summary == boxed.summary
    assert columnar.metrics["preemptions"] > 0


@pytest.mark.parametrize("algorithm,graph,module", CASES,
                         ids=[case[0] for case in CASES])
def test_faults_cost_time_but_not_output(algorithm, graph, module):
    clean = Session(CONFIG).run(algorithm, graph, seed=5)
    faulty = Session(CONFIG, fault_plan=_plan()).run(
        algorithm, graph, seed=5)
    # re-execution is deterministic: output unchanged, time grows
    assert faulty.summary == clean.summary
    assert faulty.metrics["preemptions"] > 0
    assert (faulty.metrics["simulated_time_s"]
            >= clean.metrics["simulated_time_s"])
