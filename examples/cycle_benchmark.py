"""The 1-vs-2-Cycle showdown: AMPC vs the MPC baseline (Section 5.6).

The canonical problem behind MPC round lower bounds: is the input one big
cycle or two half-size cycles?  The AMPC algorithm answers in O(1) rounds
with a single shuffle by walking between sampled vertices through the DHT;
the MPC local-contraction baseline needs Omega(log n) contraction phases.

Run with::

    python examples/cycle_benchmark.py
"""

from repro.ampc import ClusterConfig
from repro.analysis.datasets import cycle_instance
from repro.baselines import mpc_local_contraction_cc
from repro.core import ampc_one_vs_two_cycle


def main():
    config = ClusterConfig(num_machines=10)
    print(f"{'instance':>12} {'truth':>6} {'AMPC':>14} {'MPC':>18} "
          f"{'speedup':>8}")
    for k in (1_000, 10_000, 50_000):
        for two in (False, True):
            graph = cycle_instance(k, two=two, seed=5)
            truth = 2 if two else 1

            ampc = ampc_one_vs_two_cycle(graph, config=ClusterConfig(
                num_machines=10), seed=5)
            mpc = mpc_local_contraction_cc(
                graph, config=ClusterConfig(num_machines=10), seed=5,
                in_memory_threshold=max(64, graph.num_edges // 20),
            )
            assert ampc.num_cycles == truth
            assert mpc.num_components == truth

            name = f"2x{k}" if two else f"1x{2 * k}"
            ampc_summary = (f"{ampc.metrics.simulated_time_s:6.2f}s "
                            f"({ampc.metrics.shuffles} shf)")
            mpc_summary = (f"{mpc.metrics.simulated_time_s:6.2f}s "
                           f"({mpc.phases} phases)")
            speedup = (mpc.metrics.simulated_time_s
                       / ampc.metrics.simulated_time_s)
            print(f"{name:>12} {truth:>6} {ampc_summary:>14} "
                  f"{mpc_summary:>18} {speedup:7.2f}x")

    print("\nThe AMPC algorithm answers with one shuffle regardless of n;")
    print("the MPC baseline pays ~3 shuffles per halving phase "
          "(the 1-vs-2-Cycle conjecture in action).")


if __name__ == "__main__":
    main()
