"""Tests for line graph construction."""

from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    line_graph,
    line_graph_size,
    path_graph,
    star_graph,
)


def test_path_line_graph_is_shorter_path():
    lg, edge_of_vertex = line_graph(path_graph(5))
    assert lg.num_vertices == 4
    assert lg.num_edges == 3
    assert len(edge_of_vertex) == 4


def test_cycle_line_graph_is_cycle():
    lg, _ = line_graph(cycle_graph(6))
    assert lg.num_vertices == 6
    assert lg.num_edges == 6
    assert all(lg.degree(v) == 2 for v in lg.vertices())


def test_star_line_graph_is_complete():
    # Every pair of star edges shares the center.
    lg, _ = line_graph(star_graph(5))
    assert lg.num_vertices == 4
    assert lg.num_edges == 4 * 3 // 2


def test_line_graph_size_formula():
    for graph in (path_graph(6), cycle_graph(7), star_graph(6), complete_graph(5)):
        lg, _ = line_graph(graph)
        assert lg.num_edges == line_graph_size(graph)


def test_adjacency_means_shared_endpoint():
    graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    lg, edge_of_vertex = line_graph(graph)
    index = {edge: i for i, edge in enumerate(edge_of_vertex)}
    assert lg.has_edge(index[(0, 1)], index[(1, 2)])
    assert not lg.has_edge(index[(0, 1)], index[(2, 3)])


def test_line_graph_blowup_documented():
    # A star's line graph is quadratic in its edges -- the reason Algorithm 4
    # never materializes the line graph of the full input.
    star = star_graph(40)
    assert line_graph_size(star) == 39 * 38 // 2
