"""MPC rootset-based Maximal Independent Set (Figure 2 of the paper).

Each phase adds to the MIS every vertex whose hashed priority beats all of
its remaining neighbors (the *rootset*), then removes those vertices and
their neighbors.  Fischer and Noever showed this terminates in O(log n)
phases w.h.p.  Per the paper's implementation notes:

* finding local minima needs **no shuffle** (priorities are hash-computable);
* marking nodes for removal is a join — **1 shuffle**;
* removing nodes and their incident edges is a join — **1 shuffle**;
* once the residual graph has at most ``in_memory_threshold`` edges it is
  sent to a single machine and finished there (the paper uses 5 * 10^7).

By sharing the rank function with :func:`repro.core.ampc_mis`, this
baseline computes the *identical* MIS, as the paper points out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.faults import FaultPlan
from repro.ampc.metrics import Metrics
from repro.api.incremental import patch_records, touched_vertices
from repro.api.registry import AlgorithmSpec, ParamSpec, register_algorithm
from repro.core.ranks import vertex_ranks
from repro.graph.graph import Graph
from repro.mpc.runtime import MPCRuntime
from repro.sequential.greedy import greedy_mis


@dataclass
class RootsetMISResult:
    """Output of the MPC rootset MIS baseline."""

    independent_set: Set[int]
    metrics: Metrics
    phases: int = 0
    ranks: List[float] = field(default_factory=list)


@dataclass
class PreparedRootsetMIS:
    """Vertex adjacency records staged onto their home machines.

    MPC has no DHT, so the only cross-query artifact is the distributed
    placement of the input records — the shuffle a serving system pays
    once per graph.  Seed-independent.
    """

    records: List[Tuple[int, Tuple[int, ...]]]


def prepare_rootset_mis(graph: Graph, *,
                        runtime: Optional[MPCRuntime] = None,
                        config: Optional[ClusterConfig] = None,
                        seed: int = 0) -> PreparedRootsetMIS:
    """Stage ``(vertex, neighbors)`` records (one placement shuffle)."""
    del seed
    if runtime is None:
        runtime = MPCRuntime(config=config)
    placed = runtime.pipeline.from_items(
        [(v, graph.neighbors(v)) for v in graph.vertices()]
    ).repartition(lambda record: record[0], name="place-vertex-records")
    runtime.next_round()
    return PreparedRootsetMIS(records=placed.collect())


def update_rootset_mis(prepared: PreparedRootsetMIS, graph: Graph, *,
                       runtime: Optional[MPCRuntime] = None,
                       config: Optional[ClusterConfig] = None,
                       seed: int = 0,
                       insertions=(), deletions=()) -> PreparedRootsetMIS:
    """Patch the staged vertex records after an edge batch (O(batch)).

    MPC has no DHT, so the patch is a placement shuffle of just the
    touched vertices' records, spliced into the staged list.
    """
    del seed
    if runtime is None:
        runtime = MPCRuntime(config=config)
    touched = touched_vertices(insertions, deletions)
    patch = runtime.pipeline.from_items(
        [(v, graph.neighbors(v)) for v in touched]
    ).repartition(lambda record: record[0], name="place-vertex-patch")
    runtime.next_round()
    return PreparedRootsetMIS(
        records=patch_records(prepared.records, patch.collect()))


def mpc_rootset_mis(graph: Graph, *,
                    runtime: Optional[MPCRuntime] = None,
                    config: Optional[ClusterConfig] = None,
                    fault_plan: Optional[FaultPlan] = None,
                    seed: int = 0,
                    in_memory_threshold: int = 512,
                    max_phases: int = 10_000,
                    prepared: Optional[PreparedRootsetMIS] = None
                    ) -> RootsetMISResult:
    """Compute the lexicographically-first MIS with the rootset algorithm."""
    if runtime is None:
        runtime = MPCRuntime(config=config, fault_plan=fault_plan)
    metrics = runtime.metrics
    ranks = vertex_ranks(graph.num_vertices, seed)

    def order_key(vertex: int) -> Tuple[float, int]:
        return (ranks[vertex], vertex)

    independent: Set[int] = set()
    if prepared is not None:
        current = runtime.pipeline.from_items(
            prepared.records, key_fn=lambda record: record[0]
        )
    else:
        current = runtime.pipeline.from_items(
            [(v, graph.neighbors(v)) for v in graph.vertices()],
            key_fn=lambda record: record[0],
        )
    phases = 0
    while not current.is_empty():
        edge_count = sum(
            len(neighbors) for _, neighbors in current.collect()
        ) // 2
        if edge_count <= in_memory_threshold:
            # In-memory fallback: finish the residual graph on one machine.
            records = runtime.run_in_memory(current, solver=list)
            independent.update(_solve_in_memory(records, ranks))
            break
        phases += 1
        if phases > max_phases:
            raise RuntimeError("rootset MIS did not converge")
        runtime.next_round()

        # (1) Local minima: no shuffle, priorities come from hashing.
        new_set = current.filter_elements(
            lambda record: all(
                order_key(record[0]) < order_key(u) for u in record[1]
            ),
            name="local-minima",
        )
        rootset = [record[0] for record in new_set.collect()]
        independent.update(rootset)

        # (2) Ids of rootset nodes and their neighbors: no shuffle.
        to_remove = new_set.flat_map(
            lambda record: [(record[0], ("remove", None))]
            + [(u, ("remove", None)) for u in record[1]],
            name="ids-to-remove",
        )

        # (3) Mark removals: join graph with to_remove (1 shuffle).
        tagged_graph = current.map_elements(
            lambda record: (record[0], ("node", record[1])),
            name="tag-graph",
        )
        marked = tagged_graph.flatten_with(to_remove).group_by_key(
            name="mark-nodes"
        )

        # (4) Edges to delete: each removed node x emits (y, x); no shuffle.
        def _deleted_edges(record):
            vertex, tags = record
            neighbors = None
            removed = False
            for kind, payload in tags:
                if kind == "node":
                    neighbors = payload
                else:
                    removed = True
            if neighbors is None:
                return []
            if removed:
                return [(y, ("deledge", vertex)) for y in neighbors]
            return [(vertex, ("survivor", neighbors))]

        survivors_and_deletions = marked.flat_map(
            _deleted_edges, name="find-deleted-edges"
        )

        # (5) Remove nodes and incident edges: one more join (1 shuffle).
        updated = survivors_and_deletions.group_by_key(name="remove-edges")

        def _apply_deletions(record):
            vertex, tags = record
            neighbors = None
            deleted = set()
            for kind, payload in tags:
                if kind == "survivor":
                    neighbors = payload
                else:
                    deleted.add(payload)
            if neighbors is None:
                return []
            kept = tuple(u for u in neighbors if u not in deleted)
            return [(vertex, kept)]

        current = updated.flat_map(_apply_deletions, name="rebuild-graph")

    return RootsetMISResult(independent_set=independent, metrics=metrics,
                            phases=phases, ranks=ranks)


def _solve_in_memory(records, ranks) -> Set[int]:
    """Greedy MIS on the residual graph, preserving the global rank order."""
    # Sort so local tie-breaking by index agrees with global ids.
    records = sorted(records)
    vertices = [vertex for vertex, _ in records]
    index = {vertex: i for i, vertex in enumerate(vertices)}
    local = Graph(len(vertices))
    for vertex, neighbors in records:
        for u in neighbors:
            if u in index and vertex < u:
                local.add_edge(index[vertex], index[u])
    local_ranks = [ranks[vertex] for vertex in vertices]
    chosen = greedy_mis(local, local_ranks)
    return {vertices[i] for i in chosen}


# ---------------------------------------------------------------------------
# Registry spec (the Session/CLI entry point)
# ---------------------------------------------------------------------------


def _summarize(result: RootsetMISResult, graph: Graph):
    return {"output_size": len(result.independent_set),
            "phases": result.phases}


def _describe(result: RootsetMISResult, graph: Graph, params) -> str:
    return (f"MPC rootset MIS: {len(result.independent_set)} of "
            f"{graph.num_vertices} vertices ({result.phases} phase(s))")


register_algorithm(AlgorithmSpec(
    name="rootset-mis",
    summary="MPC rootset MIS baseline (Figure 2)",
    input_kind="graph",
    run=mpc_rootset_mis,
    prepare=prepare_rootset_mis,
    update=update_rootset_mis,
    summarize=_summarize,
    describe=_describe,
    params=(
        ParamSpec("in_memory_threshold", int, 512,
                  "edge count below which the residual graph is finished "
                  "on one machine"),
    ),
    prep_seed_sensitive=False,  # placement ignores the seed
    model="mpc",
))
