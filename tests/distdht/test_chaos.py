"""The chaos harness: latency, error, and blackhole injection on DHT nodes.

``sever_connections`` covers node-dead; these tests cover the softer
failure shapes — a slow node, a flaky node, a half-dead node that
accepts connections but answers nothing — both at the store level and
through the full Session-over-socket-backend stack.
"""

import time

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.api import Session
from repro.distdht import (
    BlackholeError,
    ChaosInjector,
    DHTNodeServer,
    SocketBackingStore,
)
from repro.graph.generators import erdos_renyi_gnm

CONFIG = ClusterConfig(num_machines=4)
GRAPH = erdos_renyi_gnm(30, 60, seed=7)


class TestChaosInjector:
    def test_inert_by_default(self):
        injector = ChaosInjector()
        assert not injector.active
        injector.before_request()  # no fault, no exception
        assert injector.injected == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosInjector(latency_s=-1.0)
        with pytest.raises(ValueError):
            ChaosInjector(error_rate=1.5)

    def test_error_schedule_is_seeded(self):
        def schedule(seed):
            injector = ChaosInjector(error_rate=0.5, seed=seed)
            outcomes = []
            for _ in range(32):
                try:
                    injector.before_request()
                    outcomes.append(False)
                except RuntimeError:
                    outcomes.append(True)
            return outcomes

        assert schedule(3) == schedule(3)
        assert any(schedule(3)) and not all(schedule(3))

    def test_heal_clears_every_fault(self):
        injector = ChaosInjector(error_rate=1.0, blackhole=True,
                                 latency_s=0.01)
        with pytest.raises(BlackholeError):
            injector.before_request()
        injector.heal()
        assert not injector.active
        injector.before_request()
        assert injector.snapshot()["injected"] == 1


class TestNodeChaos:
    def test_latency_slows_requests_but_serves_them(self):
        with DHTNodeServer() as node:
            store = SocketBackingStore([node.address])
            store.put(b"k", b"v")
            node.inject_chaos(latency_s=0.05)
            start = time.monotonic()
            assert store.get(b"k") == b"v"
            assert time.monotonic() - start >= 0.05
            store.close()

    def test_error_rate_surfaces_as_runtime_error_not_failover(self):
        with DHTNodeServer() as node:
            store = SocketBackingStore([node.address], retries=1,
                                       backoff_s=0.01)
            store.put(b"k", b"v")
            node.inject_chaos(error_rate=1.0)
            # a storage error is loud, not a silent miss or a retry storm
            with pytest.raises(RuntimeError, match="chaos: injected fault"):
                store.get(b"k")
            node.heal()
            assert store.get(b"k") == b"v"
            store.close()

    def test_blackhole_behaves_like_a_dead_node(self):
        with DHTNodeServer() as node:
            store = SocketBackingStore([node.address], retries=1,
                                       backoff_s=0.01)
            store.put(b"k", b"v")
            node.inject_chaos(blackhole=True)
            with pytest.raises(ConnectionError):
                store.get(b"k")
            node.heal()
            assert store.get(b"k") == b"v"
            store.close()

    def test_sever_connections_forces_reconnect(self):
        with DHTNodeServer() as node:
            store = SocketBackingStore([node.address], retries=2,
                                       backoff_s=0.01)
            store.put(b"k", b"v")
            node.sever_connections()
            # the pooled connection died; the client reconnects and serves
            assert store.get(b"k") == b"v"
            store.close()


class TestFullStackChaos:
    """Session → socket backend with faults injected mid-service."""

    def test_query_survives_a_slow_node(self):
        baseline = Session(CONFIG).run("mis", GRAPH, seed=3)
        with DHTNodeServer() as node_a, DHTNodeServer() as node_b:
            node_a.inject_chaos(latency_s=0.005)
            with Session(CONFIG, backend="socket",
                         dht_nodes=[node_a.address, node_b.address],
                         replication=2) as session:
                result = session.run("mis", GRAPH, seed=3)
        assert (result.output.independent_set
                == baseline.output.independent_set)
        assert node_a.chaos.injected > 0

    def test_query_survives_a_blackholed_replica(self):
        baseline = Session(CONFIG).run("mis", GRAPH, seed=3)
        with DHTNodeServer() as node_a, DHTNodeServer() as node_b:
            with Session(CONFIG, backend="socket",
                         dht_nodes=[node_a.address, node_b.address],
                         replication=2) as session:
                # half-dead: accepts connections, answers nothing;
                # reads fail over to the healthy replica
                node_b.inject_chaos(blackhole=True)
                result = session.run("mis", GRAPH, seed=3)
                node_b.heal()
                again = session.run("mis", GRAPH, seed=4)
        assert (result.output.independent_set
                == baseline.output.independent_set)
        assert again.algorithm == "mis"
