"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph.generators import (
    cycle_graph,
    erdos_renyi_gnm,
    random_weighted,
    two_cycles,
)
from repro.graph.io import write_edge_list, write_weighted_edge_list


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(erdos_renyi_gnm(40, 100, seed=1), path)
    return str(path)


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_mis_command(graph_file, capsys):
    out = run_cli(capsys, "mis", graph_file, "--machines", "4")
    assert "maximal independent set" in out
    assert "shuffles: 1" in out


def test_matching_command(graph_file, capsys):
    out = run_cli(capsys, "matching", graph_file, "--machines", "4")
    assert "maximal matching" in out


def test_msf_degree_weighted(graph_file, capsys):
    out = run_cli(capsys, "msf", graph_file, "--machines", "4")
    assert "minimum spanning forest" in out
    assert "shuffles: 5" in out


def test_msf_weighted_file(tmp_path, capsys):
    path = tmp_path / "weighted.txt"
    write_weighted_edge_list(
        random_weighted(erdos_renyi_gnm(30, 70, seed=2), seed=2), path)
    out = run_cli(capsys, "msf", str(path), "--weighted", "--machines", "4")
    assert "minimum spanning forest" in out


def test_components_command(graph_file, capsys):
    out = run_cli(capsys, "components", graph_file, "--machines", "4")
    assert "connected components" in out


def test_two_cycle_command(tmp_path, capsys):
    path = tmp_path / "cycles.txt"
    write_edge_list(two_cycles(60, shuffle_ids=True, seed=3), path)
    out = run_cli(capsys, "two-cycle", str(path), "--machines", "4")
    assert "number of cycles: 2" in out


def test_pagerank_command(tmp_path, capsys):
    path = tmp_path / "pr.txt"
    write_edge_list(cycle_graph(30), path)
    out = run_cli(capsys, "pagerank", str(path), "--machines", "4",
                  "--walks", "4", "--top", "3")
    assert "PageRank" in out


def test_ablation_flags(graph_file, capsys):
    out = run_cli(capsys, "mis", graph_file, "--machines", "4",
                  "--no-caching", "--no-multithreading",
                  "--transport", "tcp")
    assert "cache hit rate: 0.0%" in out


def test_query_budget_flag_allows_compliant_runs(graph_file, capsys):
    out = run_cli(capsys, "mis", graph_file, "--machines", "4",
                  "--query-budget", "100000")
    assert "maximal independent set" in out


def test_query_budget_flag_rejects_overspending(graph_file, capsys):
    assert main(["mis", graph_file, "--machines", "4",
                 "--query-budget", "1"]) == 1
    captured = capsys.readouterr()
    assert "budget" in captured.err


def test_json_output(graph_file, capsys):
    import json

    assert main(["mis", graph_file, "--machines", "4", "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["algorithm"] == "mis"
    assert record["metrics"]["shuffles"] == 1
    assert record["summary"]["output_size"] > 0


def test_subcommands_generated_from_registry(capsys):
    from repro.api import registry

    with pytest.raises(SystemExit):
        main(["--help"])
    help_text = capsys.readouterr().out
    for spec in registry.specs():
        assert spec.name in help_text


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate", "x.txt"])


def test_module_entry_point(graph_file):
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro", "mis", graph_file,
         "--machines", "2"],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0
    assert "maximal independent set" in result.stdout


def test_serve_subcommand_over_stdio():
    import json
    import subprocess
    import sys

    requests = "\n".join(json.dumps(r) for r in (
        {"op": "load", "name": "g", "edges": [[0, 1], [1, 2], [2, 0]]},
        {"op": "run", "algorithm": "mis", "graph": "g", "seed": 1},
        {"op": "shutdown"},
    ))
    result = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--machines", "2",
         "--workers", "2"],
        input=requests, capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    responses = [json.loads(line) for line in result.stdout.splitlines()]
    assert [r["ok"] for r in responses] == [True, True, True]
    assert responses[1]["result"]["algorithm"] == "mis"
    assert responses[2]["bye"]
