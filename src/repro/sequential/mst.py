"""Sequential minimum spanning forest algorithms (Kruskal and Prim).

Both respect the repository-wide strict total order on edges
(:meth:`WeightedGraph.weight_order_key`), so with any weight function the
minimum spanning forest is unique and the two algorithms — and every
distributed MSF in :mod:`repro.core` — return the identical edge set.
"""

from __future__ import annotations

import heapq
from typing import List, Set, Tuple

from repro.graph.graph import WeightedGraph, edge_key
from repro.sequential.union_find import UnionFind

EdgeId = Tuple[int, int]


def kruskal_msf(graph: WeightedGraph) -> List[EdgeId]:
    """Kruskal's algorithm; returns MSF edges as canonical pairs."""
    edges = sorted(
        ((u, v) for u, v, _ in graph.edges()),
        key=lambda e: graph.weight_order_key(*e),
    )
    forest: List[EdgeId] = []
    uf = UnionFind(graph.num_vertices)
    for u, v in edges:
        if uf.union(u, v):
            forest.append(edge_key(u, v))
    return forest


def prim_msf(graph: WeightedGraph) -> List[EdgeId]:
    """Prim's algorithm run from every unvisited vertex (handles forests)."""
    n = graph.num_vertices
    visited = [False] * n
    forest: List[EdgeId] = []
    for source in range(n):
        if visited[source]:
            continue
        visited[source] = True
        heap = [
            (graph.weight_order_key(source, u), source, u)
            for u in graph.neighbors(source)
        ]
        heapq.heapify(heap)
        while heap:
            _, u, v = heapq.heappop(heap)
            if visited[v]:
                continue
            visited[v] = True
            forest.append(edge_key(u, v))
            for w in graph.neighbors(v):
                if not visited[w]:
                    heapq.heappush(heap, (graph.weight_order_key(v, w), v, w))
    return forest


def msf_weight(graph: WeightedGraph, forest: List[EdgeId]) -> float:
    """Total weight of a forest's edges in ``graph``."""
    return sum(graph.weight(u, v) for u, v in forest)
