"""Chained fingerprints: O(batch) naming for journaled mutations.

``chain_fingerprint(base, ops)`` names a mutated graph without re-walking
its m edges.  The contract, property-tested against
:func:`graph_fingerprint` ground truth:

* **determinism** — two graphs with equal content receiving the same
  batch chain to the same name (what procpool's fingerprint-pair delta
  shipping relies on);
* **no false sharing** — whenever two mutation histories yield different
  content (different ``graph_fingerprint``), the chained names differ
  too, and a chained name never collides with any content fingerprint —
  a chained key can therefore never serve a stale artifact;
* the memo and handles fall back to ground-truth recomputation whenever
  the journal cannot replay the gap.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import GraphHandle, Session, chain_fingerprint, graph_fingerprint
from repro.api.fingerprint import FingerprintMemo
from repro.graph.generators import erdos_renyi_gnm
from repro.graph.graph import Graph


def _random_batch(rng, graph, size):
    """Mutate ``graph`` with ``size`` random valid add/remove ops."""
    n = graph.num_vertices
    for _ in range(size):
        u, v = rng.sample(range(n), 2)
        if graph.has_edge(u, v) and rng.random() < 0.5:
            graph.remove_edge(u, v)
        else:
            graph.add_edge(u, v)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), batch=st.integers(1, 12))
def test_chained_names_are_deterministic_across_copies(seed, batch):
    """Equal base + equal ops -> equal chained fingerprint; and content
    divergence always shows as fingerprint divergence."""
    a = erdos_renyi_gnm(16, 24, seed=7)
    b = a.copy()
    memo_a, memo_b = FingerprintMemo(), FingerprintMemo()
    fp_a, _ = memo_a.resolve(a)
    fp_b, _ = memo_b.resolve(b)
    assert fp_a == fp_b == graph_fingerprint(a)
    version = a.content_version
    _random_batch(random.Random(seed), a, batch)
    # replay the same journaled batch onto the copy
    for op in a.delta_since(version):
        if op[0] == "add":
            b.add_edge(op[1], op[2])
        else:
            b.remove_edge(op[1], op[2])
    chained_a, _ = memo_a.resolve(a)
    chained_b, _ = memo_b.resolve(b)
    assert chained_a == chained_b
    # ground truth: content equality is what the names must reflect
    assert graph_fingerprint(a) == graph_fingerprint(b)
    if a.delta_since(version):
        # chained names live in a separate domain from content prints
        assert chained_a != graph_fingerprint(a)
    else:
        # an all-no-op batch keeps the memoized content fingerprint
        assert chained_a == fp_a


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_different_content_never_shares_a_chained_name(seed):
    rng = random.Random(seed)
    a = erdos_renyi_gnm(12, 18, seed=3)
    b = a.copy()
    memo = FingerprintMemo()
    fp_a0, _ = memo.resolve(a)
    _random_batch(rng, a, rng.randint(1, 8))
    _random_batch(rng, b, rng.randint(1, 8))
    fp_a, _ = memo.resolve(a)
    fp_b, _ = memo.resolve(b)
    if graph_fingerprint(a) != graph_fingerprint(b):
        assert fp_a != fp_b
    if graph_fingerprint(a) != graph_fingerprint(erdos_renyi_gnm(12, 18,
                                                                 seed=3)):
        assert fp_a != fp_a0


def test_chain_is_pure_and_order_sensitive():
    base = graph_fingerprint(erdos_renyi_gnm(8, 10, seed=1))
    ops_1 = [("add", 0, 1), ("remove", 2, 3)]
    ops_2 = [("remove", 2, 3), ("add", 0, 1)]
    assert chain_fingerprint(base, ops_1) == chain_fingerprint(base, ops_1)
    assert chain_fingerprint(base, ops_1) != chain_fingerprint(base, ops_2)
    assert chain_fingerprint(base, ops_1) != base


class TestMemoLineage:
    def test_resolve_accumulates_ancestors(self):
        graph = erdos_renyi_gnm(10, 15, seed=2)
        memo = FingerprintMemo()
        fp_0, ancestors = memo.resolve(graph)
        assert ancestors == ()
        version_0 = graph.content_version
        graph.add_edge(*_absent_edge(graph))
        fp_1, ancestors = memo.resolve(graph)
        assert ancestors == ((version_0, fp_0),)
        graph.remove_edge(*next(iter(graph.edges())))
        _fp_2, ancestors = memo.resolve(graph)
        assert ancestors[-1][1] == fp_1
        assert ancestors[0] == (version_0, fp_0)

    def test_truncated_journal_falls_back_to_ground_truth(self):
        graph = erdos_renyi_gnm(10, 15, seed=2)
        graph.journal_limit = 2
        memo = FingerprintMemo()
        memo.resolve(graph)
        for _ in range(6):
            graph.add_edge(*_absent_edge(graph))
        fp, _ = memo.resolve(graph)
        assert fp == graph_fingerprint(graph)  # re-walked, not chained

    def test_handle_chains_and_falls_back(self):
        graph = erdos_renyi_gnm(10, 15, seed=4)
        handle = GraphHandle("g", graph)
        fp_0 = handle.fingerprint
        assert fp_0 == graph_fingerprint(graph)
        handle.apply_batch(insertions=[_absent_edge(graph)])
        assert handle.fingerprint != fp_0
        assert handle.ancestors[-1][1] == fp_0
        assert handle.num_edges == graph.num_edges
        # refresh() is always ground truth
        assert handle.refresh().fingerprint == graph_fingerprint(graph)

    def test_session_raw_graph_lineage_survives_truncation_check(self):
        session = Session()
        graph = erdos_renyi_gnm(10, 15, seed=5)
        fp, ancestors = session._fingerprints.resolve(graph)
        graph.add_vertex()  # invalidates the journal
        fp_2, ancestors_2 = session._fingerprints.resolve(graph)
        assert fp_2 == graph_fingerprint(graph)
        assert ancestors_2[-1][1] == fp


def _absent_edge(graph: Graph):
    for a in graph.vertices():
        for b in graph.vertices():
            if a < b and not graph.has_edge(a, b):
                return a, b
    raise AssertionError("graph is complete")
