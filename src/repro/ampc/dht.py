"""Distributed hash tables: the defining primitive of the AMPC model.

The model (Section 2) provides a sequence of hash tables D0, D1, ...; in
round i machines read D_{i-1} and write D_i.  :class:`DHTService` owns the
tables and enforces that lifecycle: a store accepts writes until it is
*sealed*, after which it is read-only (the AMPC read/write separation), and
a store can be configured to reject reads until sealed (strict mode).

Each store is sharded across the cluster's machines by key hash;
per-shard read counts are tracked so that contention (the hot-key concern
of Section 2, "Caching and Query Contention") is observable in tests and
benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.ampc.cost_model import estimate_bytes
from repro.ampc.hashing import stable_hash


class StoreSealedError(RuntimeError):
    """Raised on writes to a sealed store (or strict reads of an open one)."""


class DHTStore:
    """One distributed hash table D_i, sharded over the cluster machines."""

    def __init__(self, name: str, num_shards: int, *, strict_rounds: bool = False):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.name = name
        self.num_shards = num_shards
        self.sealed = False
        self._strict_rounds = strict_rounds
        self._shards: List[Dict[Any, Any]] = [dict() for _ in range(num_shards)]
        #: reads served per shard (contention accounting)
        self.shard_reads: List[int] = [0] * num_shards
        self.total_entries = 0
        self.total_value_bytes = 0

    def shard_of(self, key: Any) -> int:
        # Stable across interpreter runs: placement (and therefore shard
        # contention metrics) must not depend on PYTHONHASHSEED.
        return stable_hash(key) % self.num_shards

    # -- writes --------------------------------------------------------

    def write(self, key: Any, value: Any) -> int:
        """Store a key-value pair; returns the serialized value size.

        Duplicate keys overwrite, matching the put semantics of the
        key-value stores the paper builds on.
        """
        if self.sealed:
            raise StoreSealedError(f"store {self.name!r} is sealed")
        shard = self._shards[self.shard_of(key)]
        if key not in shard:
            self.total_entries += 1
        value_bytes = estimate_bytes(value)
        self.total_value_bytes += value_bytes
        shard[key] = value
        return value_bytes

    def write_all(self, items: Iterable[Tuple[Any, Any]]) -> int:
        return sum(self.write(key, value) for key, value in items)

    def seal(self) -> None:
        """Freeze the store: subsequent writes raise."""
        self.sealed = True

    # -- reads ---------------------------------------------------------

    def lookup(self, key: Any) -> Any:
        """Read one key; returns None for missing keys (get semantics)."""
        if self._strict_rounds and not self.sealed:
            raise StoreSealedError(
                f"store {self.name!r} is still being written this round"
            )
        shard_index = self.shard_of(key)
        self.shard_reads[shard_index] += 1
        return self._shards[shard_index].get(key)

    def contains(self, key: Any) -> bool:
        """Membership probe; charged and round-checked like :meth:`lookup`."""
        if self._strict_rounds and not self.sealed:
            raise StoreSealedError(
                f"store {self.name!r} is still being written this round"
            )
        shard_index = self.shard_of(key)
        self.shard_reads[shard_index] += 1
        return key in self._shards[shard_index]

    # -- introspection (driver-side; free of charge) ---------------------

    def keys(self) -> List[Any]:
        result = []
        for shard in self._shards:
            result.extend(shard.keys())
        return result

    def max_shard_load(self) -> int:
        return max(self.shard_reads)

    def __len__(self) -> int:
        return self.total_entries

    def __repr__(self) -> str:
        return (
            f"DHTStore({self.name!r}, entries={self.total_entries}, "
            f"sealed={self.sealed})"
        )


class DHTService:
    """Factory and registry for the DHT sequence D0, D1, ..."""

    def __init__(self, num_shards: int, *, strict_rounds: bool = False):
        self.num_shards = num_shards
        self.strict_rounds = strict_rounds
        self._stores: Dict[str, DHTStore] = {}
        self._counter = 0

    def create(self, name: Optional[str] = None) -> DHTStore:
        if name is None:
            name = f"D{self._counter}"
        if name in self._stores:
            raise ValueError(f"store {name!r} already exists")
        self._counter += 1
        store = DHTStore(name, self.num_shards, strict_rounds=self.strict_rounds)
        self._stores[name] = store
        return store

    def get(self, name: str) -> DHTStore:
        return self._stores[name]

    def stores(self) -> List[DHTStore]:
        return list(self._stores.values())
