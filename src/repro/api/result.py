"""The uniform run envelope every Session/CLI/experiment run returns."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class RunResult:
    """One algorithm execution: output, metrics, and provenance.

    ``output`` is the algorithm's native result object (``MISResult``,
    ``MSFResult``, ...) for callers that need the full structure; every
    other field is plain data, so the envelope serializes cleanly.
    """

    #: canonical registry name of the algorithm that ran
    algorithm: str
    seed: int
    #: full parameter set of the run (defaults filled in)
    params: Dict[str, Any]
    #: the algorithm's native result object
    output: Any
    #: flat output summary (always contains ``output_size``)
    summary: Dict[str, Any]
    #: ``Metrics.summary()`` of the run
    metrics: Dict[str, Any]
    #: per-phase simulated-seconds breakdown, in execution order
    phases: Dict[str, float] = field(default_factory=dict)
    #: the algorithm's AMPC round count (cache-served preparation rounds
    #: included; ``metrics["rounds"]`` counts only rounds executed here)
    rounds: int = 0
    #: True when the Session served the preprocessing stage from cache
    preprocessing_reused: bool = False
    #: shuffles the cached preprocessing saved this run
    shuffles_saved: int = 0
    #: the human-readable headline the CLI prints
    description: str = ""
    #: Session registration name of the graph, when run via a handle/name
    graph_name: Optional[str] = None

    @property
    def output_size(self) -> Any:
        return self.summary.get("output_size")

    def to_dict(self) -> Dict[str, Any]:
        """Everything except the native ``output`` object, as plain data."""
        return {
            "algorithm": self.algorithm,
            "seed": self.seed,
            "params": dict(self.params),
            "summary": dict(self.summary),
            "metrics": dict(self.metrics),
            "phases": dict(self.phases),
            "rounds": self.rounds,
            "preprocessing_reused": self.preprocessing_reused,
            "shuffles_saved": self.shuffles_saved,
            "description": self.description,
            "graph_name": self.graph_name,
        }

    def to_json(self, indent: int = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)
