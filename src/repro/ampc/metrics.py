"""Execution metrics: every counter the paper's evaluation reports.

One :class:`Metrics` object accompanies each algorithm run.  Phases mirror
the paper's running-time breakdowns (e.g. DirectGraph / KV-Write / IsInMIS
in Figure 5): algorithms open a phase with :meth:`Metrics.phase` and all
simulated time accrued inside is attributed to it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PhaseBreakdown:
    """Ordered (phase name -> simulated seconds) mapping."""

    order: List[str] = field(default_factory=list)
    seconds: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, value: float) -> None:
        if name not in self.seconds:
            self.order.append(name)
            self.seconds[name] = 0.0
        self.seconds[name] += value

    def total(self) -> float:
        return sum(self.seconds.values())

    def items(self):
        return [(name, self.seconds[name]) for name in self.order]


class Metrics:
    """Counters for one distributed algorithm execution."""

    def __init__(self):
        #: number of shuffle stages (the paper's "costly rounds", Table 3)
        self.shuffles = 0
        #: total bytes written during shuffles (Figure 3)
        self.shuffle_bytes = 0
        #: KV-store traffic (Figures 3, 9)
        self.kv_reads = 0
        self.kv_writes = 0
        self.kv_read_bytes = 0
        self.kv_write_bytes = 0
        #: cache behaviour (Section 5.3 caching optimization)
        self.cache_hits = 0
        self.cache_misses = 0
        #: AMPC/MPC round counter, incremented by algorithms at round edges
        self.rounds = 0
        #: machine preemptions injected and recovered from
        self.preemptions = 0
        #: largest number of KV queries a single machine made in one stage
        self.max_machine_queries_per_stage = 0
        #: simulated wall-clock
        self.simulated_time_s = 0.0
        self.phases = PhaseBreakdown()
        self._phase_stack: List[str] = []

    # -- phase attribution -------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Attribute simulated time accrued in this block to ``name``."""
        self._phase_stack.append(name)
        try:
            yield self
        finally:
            self._phase_stack.pop()

    def charge_time(self, seconds: float) -> None:
        """Advance simulated time, attributing it to the innermost phase."""
        self.simulated_time_s += seconds
        if self._phase_stack:
            self.phases.add(self._phase_stack[-1], seconds)
        else:
            self.phases.add("(unattributed)", seconds)

    # -- totals --------------------------------------------------------

    @property
    def kv_bytes(self) -> int:
        """Total KV-store communication (the y-axis of Figure 9)."""
        return self.kv_read_bytes + self.kv_write_bytes

    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def summary(self) -> Dict[str, float]:
        """A flat dict of every counter, for reports and tests."""
        return {
            "shuffles": self.shuffles,
            "shuffle_bytes": self.shuffle_bytes,
            "kv_reads": self.kv_reads,
            "kv_writes": self.kv_writes,
            "kv_read_bytes": self.kv_read_bytes,
            "kv_write_bytes": self.kv_write_bytes,
            "kv_bytes": self.kv_bytes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate(),
            "rounds": self.rounds,
            "preemptions": self.preemptions,
            "max_machine_queries_per_stage": self.max_machine_queries_per_stage,
            "simulated_time_s": self.simulated_time_s,
        }

    def __repr__(self) -> str:
        return (
            f"Metrics(shuffles={self.shuffles}, "
            f"shuffle_bytes={self.shuffle_bytes}, kv_reads={self.kv_reads}, "
            f"kv_bytes={self.kv_bytes}, "
            f"time={self.simulated_time_s:.3f}s)"
        )
