"""PCollections: partitioned datasets and the operations on them.

A PCollection is a list of per-machine partitions.  ParDo-style operations
keep elements on their machine; ``group_by_key`` / ``repartition`` /
``to_single_machine`` move data and are charged as shuffles.  ``collect``
materializes on the driver free of charge — it models inspecting the final
output, never an intermediate step of an algorithm.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.ampc.cluster import MachineWork
from repro.ampc.cost_model import _sequence_bytes, estimate_bytes
from repro.dataflow.dofn import DoFn, MachineContext, _CallableDoFn


class BudgetExceededError(RuntimeError):
    """A machine exceeded its per-stage AMPC communication budget O(S)."""


class PCollection:
    """A distributed multi-set of elements (one list per machine)."""

    def __init__(self, pipeline, partitions: List[List[Any]]):
        self.pipeline = pipeline
        if len(partitions) != pipeline.cluster.config.num_machines:
            raise ValueError("partition count must equal machine count")
        self._partitions = partitions

    # -- computation stages (no data movement) ----------------------------

    def par_do(self, dofn: DoFn, name: Optional[str] = None) -> "PCollection":
        """Apply a DoFn to every element in place; charges machine time."""
        cluster = self.pipeline.cluster
        budget = cluster.config.query_budget_per_machine
        output_partitions: List[List[Any]] = []
        works: List[MachineWork] = []
        # map/filter/flat_map run as plain comprehensions — no generator
        # adapter, no per-element mode dispatch.  Output-identical to the
        # _CallableDoFn.process reference implementation.
        fast_mode = dofn._mode if type(dofn) is _CallableDoFn else None
        process_batch = dofn.process_batch
        for machine_id, partition in enumerate(self._partitions):
            ctx = MachineContext(machine_id, cluster)
            dofn.start_machine(ctx)
            if fast_mode is not None:
                fn = dofn._fn
                if fast_mode == "map":
                    outputs = [fn(element) for element in partition]
                elif fast_mode == "filter":
                    outputs = [element for element in partition
                               if fn(element)]
                else:  # flat_map
                    outputs = []
                    extend = outputs.extend
                    for element in partition:
                        extend(fn(element))
            elif process_batch is not None:
                outputs = list(process_batch(partition, ctx))
            else:
                outputs = []
                extend = outputs.extend
                process = dofn.process
                for element in partition:
                    produced = process(element, ctx)
                    if produced is not None:
                        extend(produced)
            ctx.work.compute_ops += len(partition) + len(outputs)
            if budget is not None and ctx.work.kv_queries > budget:
                raise BudgetExceededError(
                    f"machine {machine_id} made {ctx.work.kv_queries} KV "
                    f"queries in stage {name or dofn.__class__.__name__!r}, "
                    f"budget is {budget}"
                )
            works.append(ctx.work)
            output_partitions.append(outputs)
        cluster.finish_stage(works)
        return PCollection(self.pipeline, output_partitions)

    def map_elements(self, fn: Callable[[Any], Any],
                     name: Optional[str] = None) -> "PCollection":
        return self.par_do(_CallableDoFn(fn, "map"), name=name)

    def flat_map(self, fn: Callable[[Any], Iterable[Any]],
                 name: Optional[str] = None) -> "PCollection":
        return self.par_do(_CallableDoFn(fn, "flat_map"), name=name)

    def filter_elements(self, predicate: Callable[[Any], bool],
                        name: Optional[str] = None) -> "PCollection":
        return self.par_do(_CallableDoFn(predicate, "filter"), name=name)

    # -- shuffles (data movement; the costly operations) -------------------

    def group_by_key(self, name: Optional[str] = None) -> "PCollection":
        """Group ``(key, value)`` pairs by key.  One shuffle.

        Output elements are ``(key, [values])``, placed on the machine that
        owns the key's hash.
        """
        cluster = self.pipeline.cluster
        total_bytes = self._total_bytes()
        cluster.charge_shuffle(total_bytes)
        num_machines = cluster.config.num_machines
        grouped: List[dict] = [dict() for _ in range(num_machines)]
        machine_for = cluster.machine_for
        # Grouping implies repeated keys: memoize each key's machine so
        # the placement hash runs once per distinct key, not per element.
        machine_of: dict = {}
        for partition in self._partitions:
            for key, value in partition:
                machine = machine_of.get(key)
                if machine is None:
                    machine = machine_for(key)
                    machine_of[key] = machine
                grouped[machine].setdefault(key, []).append(value)
        output = [list(machine_dict.items()) for machine_dict in grouped]
        return PCollection(self.pipeline, output)

    def repartition(self, key_fn: Callable[[Any], Any],
                    name: Optional[str] = None) -> "PCollection":
        """Move each element to the machine owning ``key_fn(element)``.

        One shuffle (this is how a "sort into a directed graph" stage lands
        every vertex record on its home machine before a KV write).
        """
        cluster = self.pipeline.cluster
        cluster.charge_shuffle(self._total_bytes())
        num_machines = cluster.config.num_machines
        output: List[List[Any]] = [[] for _ in range(num_machines)]
        machine_for = cluster.machine_for
        for partition in self._partitions:
            for element in partition:
                output[machine_for(key_fn(element))].append(element)
        return PCollection(self.pipeline, output)

    def to_single_machine(self, name: Optional[str] = None) -> "PCollection":
        """Gather everything onto machine 0.  One shuffle.

        This is the "send the graph to a single machine" fallback every MPC
        baseline in the paper uses once an instance is small enough.
        """
        cluster = self.pipeline.cluster
        cluster.charge_shuffle(self._total_bytes())
        merged: List[Any] = []
        for partition in self._partitions:
            merged.extend(partition)
        output = [[] for _ in range(cluster.config.num_machines)]
        output[0] = merged
        return PCollection(self.pipeline, output)

    # -- combinators -------------------------------------------------------

    def flatten_with(self, *others: "PCollection") -> "PCollection":
        """Union of PCollections; elements stay on their machines (free)."""
        partitions = [list(p) for p in self._partitions]
        for other in others:
            for machine_id, partition in enumerate(other._partitions):
                partitions[machine_id].extend(partition)
        return PCollection(self.pipeline, partitions)

    # -- driver-side access (free; end-of-pipeline only) -------------------

    def collect(self) -> List[Any]:
        result: List[Any] = []
        for partition in self._partitions:
            result.extend(partition)
        return result

    def count(self) -> int:
        return sum(len(partition) for partition in self._partitions)

    def is_empty(self) -> bool:
        return self.count() == 0

    def partition_sizes(self) -> List[int]:
        return [len(partition) for partition in self._partitions]

    def _total_bytes(self) -> int:
        # Elements are overwhelmingly tuples; jump straight to the
        # cost model's flat tuple walk and dispatch only otherwise.
        size_of = estimate_bytes
        tuple_bytes = _sequence_bytes
        total = 0
        for partition in self._partitions:
            for element in partition:
                if type(element) is tuple:
                    total += tuple_bytes(element)
                else:
                    total += size_of(element)
        return total
