"""Concurrency stress test: many threads, mixed algorithms, shared graphs.

The acceptance bar of the serving layer: a GraphService with >= 4 workers
serving >= 20 mixed concurrent queries must return outputs identical to
sequential Session runs, with per-run metrics isolated (no bleed between
concurrent runtimes) and SessionStats totals equal to the sum of the
per-run numbers.
"""

import random

from repro.ampc.cluster import ClusterConfig
from repro.api import Session
from repro.graph.generators import erdos_renyi_gnm
from repro.serve import GraphService

CONFIG = ClusterConfig(num_machines=4)

GRAPHS = {
    "a": erdos_renyi_gnm(40, 100, seed=1),
    "b": erdos_renyi_gnm(40, 90, seed=2),
}

#: every (algorithm, graph, seed) twice, shuffled: 2 * 2 * 3 * 2 = 24
#: queries, so each shared graph sees guaranteed cache hits
QUERIES = [
    (algorithm, name, seed)
    for algorithm in ("mis", "matching", "components")
    for name in ("a", "b")
    for seed in (0, 1)
] * 2


def _output_key(result):
    output = result.output
    for attribute in ("independent_set", "matching", "labels"):
        value = getattr(output, attribute, None)
        if value is not None:
            return value
    raise AssertionError(f"unrecognized output {type(output).__name__}")


def test_concurrent_results_match_sequential_and_stats_add_up():
    queries = list(QUERIES)
    random.Random(7).shuffle(queries)
    assert len(queries) >= 20

    # Sequential ground truth: one cold Session per distinct query.
    expected = {}
    for algorithm, name, seed in set(queries):
        run = Session(CONFIG).run(algorithm, GRAPHS[name], seed=seed)
        expected[(algorithm, name, seed)] = run

    with GraphService(CONFIG, workers=6) as service:
        for name, graph in GRAPHS.items():
            service.load(name, graph)
        pending = [
            (query, service.submit(query[0], query[1], seed=query[2]))
            for query in queries
        ]
        results = [(query, p.result(300)) for query, p in pending]
        stats = service.stats()

    # 1. Outputs identical to sequential runs.
    for query, result in results:
        reference = expected[query]
        assert _output_key(result) == _output_key(reference), query
        assert result.summary == reference.summary, query
        assert result.description == reference.description

    # 2. Per-run metrics isolated: each run's executed shuffles are either
    # the sequential cold count or exactly prep_shuffles fewer (warm) —
    # a concurrent neighbour's work never leaks into the envelope.
    for query, result in results:
        reference = expected[query]
        cold = reference.metrics["shuffles"]
        observed = result.metrics["shuffles"]
        if result.preprocessing_reused:
            assert observed == cold - result.shuffles_saved, query
        else:
            assert observed == cold, query

    # 3. SessionStats totals equal the sum of the per-run numbers.
    assert stats["runs"] == len(queries)
    assert (stats["preprocessing_hits"] + stats["preprocessing_misses"]
            == len(queries))
    assert stats["shuffles_executed"] == sum(
        result.metrics["shuffles"] for _, result in results)
    assert stats["kv_reads_executed"] == sum(
        result.metrics["kv_reads"] for _, result in results)
    assert stats["kv_writes_executed"] == sum(
        result.metrics["kv_writes"] for _, result in results)
    assert stats["shuffles_saved"] == sum(
        result.shuffles_saved for _, result in results)

    # 4. Preprocessing shared: >= 1 hit per shared graph (each exact query
    # repeats, and concurrent misses are deduplicated).
    assert stats["preprocessing_hits"] >= len(GRAPHS)
    assert stats["failed"] == 0
    assert stats["completed"] == len(queries)


def test_concurrent_misses_prepare_once_per_key():
    """Hammer one cold key from many threads: exactly one preparation."""
    with GraphService(CONFIG, workers=8) as service:
        service.load("g", GRAPHS["a"])
        pending = [service.submit("mis", "g", seed=0) for _ in range(16)]
        results = [p.result(300) for p in pending]
        stats = service.stats()
    assert stats["preprocessing_misses"] == 1
    assert stats["preprocessing_hits"] == 15
    outputs = {frozenset(r.output.independent_set) for r in results}
    assert len(outputs) == 1
