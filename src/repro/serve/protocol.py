"""JSON-lines protocol for driving a GraphService over stdio or TCP.

One request per line, one response per line.  Requests are objects with an
``op`` field; an optional ``id`` is echoed back so pipelined clients can
correlate responses.

Operations::

    {"op": "load", "name": "g", "edges": [[0, 1], [1, 2]]}
    {"op": "load", "name": "w", "path": "graph.txt", "weighted": true}
    {"op": "run", "algorithm": "mis", "graph": "g", "seed": 1,
     "params": {"search_budget": 100}, "deadline_ms": 2000}
    {"op": "update", "graph": "g", "insertions": [[0, 2]],
     "deletions": [[0, 1]]}
    {"op": "algorithms"}
    {"op": "graphs"}
    {"op": "stats"}
    {"op": "ping"}
    {"op": "shutdown"}

Every response carries ``"ok": true`` or ``"ok": false`` with an
``error`` message; ``run`` responses embed the full
:meth:`~repro.api.result.RunResult.to_dict` envelope under ``result``.
Failed queries are reported, never fatal — a serving daemon does not die
on a malformed request: an unknown or malformed field (a string
``deadline_ms``, a misspelled key) earns a structured error response on
that line, never a connection teardown.

The load-shedding contract: a ``run`` shed by admission control answers
``{"ok": false, "overloaded": true, "retry_after_s": ...}`` — the
client should back off for the hinted seconds and retry.  A ``run``
whose ``deadline_ms`` passed while it sat in queue answers
``{"ok": false, "deadline_exceeded": true}`` without executing.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from typing import Any, Dict, IO, Optional

from repro.graph.graph import Graph, WeightedGraph
from repro.graph.io import read_edge_list, read_weighted_edge_list
from repro.serve.admission import OverloadedError
from repro.serve.pool import DeadlineExceededError
from repro.serve.service import ServiceBase


class ProtocolError(ValueError):
    """A structurally invalid request."""


#: the complete request surface per op — anything else is a structured
#: error on that line (catching misspellings instead of ignoring them)
_ALLOWED_FIELDS: Dict[str, frozenset] = {
    "load": frozenset({"op", "id", "name", "edges", "path", "vertices",
                       "weighted"}),
    "run": frozenset({"op", "id", "algorithm", "graph", "seed", "params",
                      "timeout", "deadline_ms"}),
    "update": frozenset({"op", "id", "graph", "name", "insertions",
                         "deletions"}),
    "algorithms": frozenset({"op", "id"}),
    "graphs": frozenset({"op", "id"}),
    "stats": frozenset({"op", "id"}),
    "ping": frozenset({"op", "id"}),
    "shutdown": frozenset({"op", "id"}),
}


def _require(request: Dict[str, Any], field: str) -> Any:
    try:
        return request[field]
    except KeyError:
        raise ProtocolError(f"request is missing the {field!r} field") from None


def _graph_from_edges(edges, num_vertices: Optional[int]):
    """Build a graph from inline edge rows: pairs, or triples for weights."""
    rows = [tuple(row) for row in edges]
    if num_vertices is None:
        num_vertices = 1 + max(
            (max(row[0], row[1]) for row in rows), default=-1
        )
    if rows and len(rows[0]) == 3:
        return WeightedGraph.from_edges(
            num_vertices, [(int(u), int(v), float(w)) for u, v, w in rows]
        )
    return Graph.from_edges(
        num_vertices, [(int(u), int(v)) for u, v in rows]
    )


def _op_load(service: ServiceBase, request: Dict[str, Any]) -> Dict[str, Any]:
    name = str(_require(request, "name"))
    if "edges" in request:
        graph = _graph_from_edges(request["edges"],
                                  request.get("vertices"))
    elif "path" in request:
        if request.get("weighted"):
            graph = read_weighted_edge_list(request["path"])
        else:
            graph = read_edge_list(request["path"])
    else:
        raise ProtocolError("load needs either 'edges' or 'path'")
    handle = service.load(name, graph)
    return {"ok": True, "graph": name,
            "vertices": handle.num_vertices, "edges": handle.num_edges,
            "fingerprint": handle.fingerprint}


def _op_run(service: ServiceBase, request: Dict[str, Any]) -> Dict[str, Any]:
    algorithm = str(_require(request, "algorithm"))
    graph = str(_require(request, "graph"))
    params = request.get("params") or {}
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be an object")
    deadline = _deadline_seconds(request.get("deadline_ms"))
    pending = service.submit(algorithm, graph,
                             seed=int(request.get("seed", 0)),
                             deadline=deadline,
                             **params)
    result = pending.result(request.get("timeout"))
    return {"ok": True, "result": result.to_dict()}


def _deadline_seconds(deadline_ms: Any) -> Optional[float]:
    """Validate the wire field; relative seconds, or None when absent."""
    if deadline_ms is None:
        return None
    if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)) or deadline_ms < 0:
        raise ProtocolError(
            "'deadline_ms' must be a non-negative number, got "
            f"{deadline_ms!r}")
    return float(deadline_ms) / 1000.0


def _op_update(service: ServiceBase,
               request: Dict[str, Any]) -> Dict[str, Any]:
    """Apply an edge batch to a loaded graph (the batch-dynamic path).

    Deletions are ``[u, v]`` rows; insertions are ``[u, v]`` rows (or
    ``[u, v, w]`` for weighted graphs).  Responds with the graph's new
    fingerprint and counts — later ``run`` ops are answered by patched
    DHT-resident artifacts, not a from-scratch re-preparation.
    """
    name = str(request.get("graph") or _require(request, "name"))
    insertions = request.get("insertions") or []
    deletions = request.get("deletions") or []
    if not isinstance(insertions, list) or not isinstance(deletions, list):
        raise ProtocolError("'insertions'/'deletions' must be arrays")
    ins_rows = [(int(row[0]), int(row[1]), float(row[2]))
                if len(row) == 3 else (int(row[0]), int(row[1]))
                for row in insertions]
    del_rows = [(int(row[0]), int(row[1])) for row in deletions]
    handle = service.update(name, insertions=ins_rows, deletions=del_rows)
    return {"ok": True, "graph": name,
            "vertices": handle.num_vertices, "edges": handle.num_edges,
            "fingerprint": handle.fingerprint,
            "insertions": len(ins_rows), "deletions": len(del_rows)}


def handle_request(service: ServiceBase,
                   request: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one decoded request; always returns a response object."""
    request_id = request.get("id") if isinstance(request, dict) else None
    try:
        if not isinstance(request, dict):
            raise ProtocolError("request must be a JSON object")
        op = str(_require(request, "op"))
        allowed = _ALLOWED_FIELDS.get(op)
        if allowed is None:
            raise ProtocolError(f"unknown op {op!r}")
        unknown = set(request) - allowed
        if unknown:
            raise ProtocolError(
                f"unknown field(s) for op {op!r}: "
                f"{', '.join(sorted(map(str, unknown)))}; allowed: "
                f"{', '.join(sorted(allowed))}")
        if op == "load":
            response = _op_load(service, request)
        elif op == "run":
            response = _op_run(service, request)
        elif op == "update":
            response = _op_update(service, request)
        elif op == "algorithms":
            response = {"ok": True, "algorithms": service.algorithms()}
        elif op == "graphs":
            response = {"ok": True, "graphs": service.graphs()}
        elif op == "stats":
            response = {"ok": True, "stats": service.stats()}
        elif op == "ping":
            response = {"ok": True, "pong": True}
        else:  # op == "shutdown"
            response = {"ok": True, "bye": True}
    except OverloadedError as error:
        # the shed/retry contract: structured, with a backoff hint —
        # the connection stays healthy and the client knows what to do
        response = {"ok": False,
                    "error": f"{type(error).__name__}: {error}",
                    "overloaded": True,
                    "retry_after_s": error.retry_after_s}
    except DeadlineExceededError as error:
        response = {"ok": False,
                    "error": f"{type(error).__name__}: {error}",
                    "deadline_exceeded": True}
    except Exception as error:  # noqa: BLE001 - a daemon reports, not dies
        response = {"ok": False,
                    "error": f"{type(error).__name__}: {error}"}
    if request_id is not None:
        response["id"] = request_id
    return response


def _decode_line(line: str) -> Any:
    try:
        return json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON: {error}") from None


def _encode_response(response: Dict[str, Any]) -> str:
    """Serialize a response; a value JSON can't carry (a NaN-free encoder
    meeting an exotic result payload) degrades to a structured error on
    the line instead of killing the stream/connection."""
    try:
        return json.dumps(response)
    except (TypeError, ValueError) as error:
        fallback: Dict[str, Any] = {
            "ok": False,
            "error": ("response not serializable: "
                      f"{type(error).__name__}: {error}"),
        }
        request_id = (response.get("id")
                      if isinstance(response, dict) else None)
        if isinstance(request_id, (str, int, float)):
            fallback["id"] = request_id
        return json.dumps(fallback)


def serve_stream(service: ServiceBase, input_stream: IO[str],
                 output_stream: IO[str]) -> int:
    """Serve JSON lines until EOF or a shutdown op; returns requests served."""
    served = 0
    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        try:
            request = _decode_line(line)
        except ProtocolError as error:
            response = {"ok": False, "error": str(error)}
        else:
            response = handle_request(service, request)
        served += 1
        output_stream.write(_encode_response(response) + "\n")
        output_stream.flush()
        if response.get("bye"):
            break
    return served


class _LineHandler(socketserver.StreamRequestHandler):
    def setup(self) -> None:
        super().setup()
        self.server._track_connection(self.connection, active=True)

    def finish(self) -> None:
        try:
            super().finish()
        finally:
            self.server._track_connection(self.connection, active=False)

    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            # busy from decode to flushed response: close() drains busy
            # connections (a response in flight is delivered) but never
            # waits on idle ones (a quiet client cannot wedge shutdown)
            self.server._mark_busy(self.connection, busy=True)
            try:
                try:
                    request = _decode_line(line)
                except ProtocolError as error:
                    response = {"ok": False, "error": str(error)}
                else:
                    response = handle_request(self.server.service, request)
                try:
                    self.wfile.write(
                        (_encode_response(response) + "\n").encode("utf-8"))
                    self.wfile.flush()
                except (OSError, ValueError):
                    # the connection was force-closed under us (close()
                    # gave up on the drain): nothing left to report to
                    return
            finally:
                self.server._mark_busy(self.connection, busy=False)
            if response.get("bye"):
                # close() must not run on the serve_forever thread;
                # handlers run on their own threads, but a helper thread
                # is safe in every server configuration.
                threading.Thread(target=self.server.close,
                                 daemon=True).start()
                return


class ServiceServer(socketserver.ThreadingTCPServer):
    """A threading TCP server bound to one GraphService.

    :meth:`close` is the clean shutdown: it stops the accept loop, gives
    in-flight requests a drain window, then force-closes whatever
    connections linger (a client holding an idle connection open can no
    longer wedge shutdown — the regression the ``drain`` machinery
    exists for).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: ServiceBase, address):
        super().__init__(address, _LineHandler)
        self.service = service
        self._conn_lock = threading.Lock()
        self._active_connections: set = set()
        self._busy_connections: set = set()
        self._serving = False
        self._close_lock = threading.Lock()
        self._closed = False

    # -- connection tracking ------------------------------------------------

    def _track_connection(self, connection, *, active: bool) -> None:
        with self._conn_lock:
            if active:
                self._active_connections.add(connection)
            else:
                self._active_connections.discard(connection)
                self._busy_connections.discard(connection)

    def _mark_busy(self, connection, *, busy: bool) -> None:
        with self._conn_lock:
            if busy:
                self._busy_connections.add(connection)
            else:
                self._busy_connections.discard(connection)

    @property
    def active_connections(self) -> int:
        with self._conn_lock:
            return len(self._active_connections)

    @property
    def busy_connections(self) -> int:
        """Connections with a request mid-execution or a response unsent."""
        with self._conn_lock:
            return len(self._busy_connections)

    # -- lifecycle ----------------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        super().serve_forever(poll_interval)

    def close(self, drain: float = 300.0) -> None:
        """Stop accepting, drain in-flight requests, unblock stragglers.

        ``shutdown()`` alone only stops the accept loop: a handler thread
        blocked reading from (or serving a request for) an open client
        connection keeps running, and anything joining on it hangs.
        ``close`` waits up to ``drain`` seconds for **busy** connections —
        ones mid-request — to deliver their responses, then shuts every
        remaining socket down: blocked ``rfile`` reads see EOF, the
        handlers exit, and the caller gets the listening port back.  Idle
        connections are never waited on, so the wait ends as soon as the
        in-flight work does and a quiet client cannot wedge shutdown (the
        generous default only bounds genuinely running queries).  Safe to
        call from any thread (including a handler's helper thread) and
        idempotent.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self._serving:
            self.shutdown()  # blocks until the accept loop has exited
        deadline = time.monotonic() + max(drain, 0.0)
        while self.busy_connections and time.monotonic() < deadline:
            time.sleep(0.02)
        with self._conn_lock:
            lingering = list(self._active_connections)
        for connection in lingering:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self.server_close()


def serve_socket(service: ServiceBase, host: str = "127.0.0.1",
                 port: int = 0) -> ServiceServer:
    """Bind a :class:`ServiceServer`; caller runs ``serve_forever()``.

    ``port=0`` binds an ephemeral port; read it from
    ``server.server_address``.
    """
    return ServiceServer(service, (host, port))
