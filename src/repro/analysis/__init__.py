"""Experiment infrastructure: datasets, runners and reporting.

* :mod:`repro.analysis.datasets` — the scaled analogues of the paper's
  five real-world graphs (Table 2) and the 2 x k cycle family.
* :mod:`repro.analysis.experiment` — one-call runners that execute an
  algorithm on a dataset and return a flat metrics record.
* :mod:`repro.analysis.reporting` — text tables in the style of the
  paper's tables/figures, used by every benchmark.
"""

from repro.analysis.datasets import (
    DATASET_NAMES,
    DatasetSpec,
    cycle_instance,
    dataset_spec,
    load_dataset,
    load_weighted_dataset,
)
from repro.analysis.experiment import (
    run_ampc_matching,
    run_ampc_mis,
    run_ampc_msf,
    run_mpc_boruvka,
    run_mpc_matching,
    run_mpc_mis,
)
from repro.analysis.reporting import Table, format_bytes, normalize

__all__ = [
    "DATASET_NAMES",
    "DatasetSpec",
    "cycle_instance",
    "dataset_spec",
    "load_dataset",
    "load_weighted_dataset",
    "run_ampc_matching",
    "run_ampc_mis",
    "run_ampc_msf",
    "run_mpc_boruvka",
    "run_mpc_matching",
    "run_mpc_mis",
    "Table",
    "format_bytes",
    "normalize",
]
