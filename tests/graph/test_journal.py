"""Edge-delta journal semantics: the batch-dynamic recovery contract.

``delta_since(version)`` must return exactly the mutation batch between
``version`` and now — or None whenever it cannot (truncation, un-journaled
mutations) so consumers fall back to a full rebuild instead of patching
from an incomplete history.
"""

import pytest

from repro.graph.graph import Graph, WeightedGraph


def _replay(n, ops, weighted=False):
    """Apply a journal batch to an empty graph (ground-truth semantics)."""
    graph = WeightedGraph(n) if weighted else Graph(n)
    for op in ops:
        if op[0] == "add":
            graph.add_edge(*op[1:])
        elif op[0] == "weight":
            graph.add_edge(*op[1:])
        else:
            graph.remove_edge(op[1], op[2])
    return graph


class TestGraphJournal:
    def test_delta_since_current_version_is_empty(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2)])
        assert graph.delta_since(graph.content_version) == []

    def test_delta_records_mutations_in_order(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2)])
        version = graph.content_version
        graph.add_edge(2, 3)
        graph.remove_edge(0, 1)
        graph.add_edge(0, 2)
        assert graph.delta_since(version) == [
            ("add", 2, 3), ("remove", 0, 1), ("add", 0, 2)]

    def test_delta_endpoints_are_canonical(self):
        graph = Graph(4)
        version = graph.content_version
        graph.add_edge(3, 1)
        assert graph.delta_since(version) == [("add", 1, 3)]

    def test_noop_add_is_not_journaled(self):
        graph = Graph.from_edges(3, [(0, 1)])
        version = graph.content_version
        assert not graph.add_edge(0, 1)
        assert graph.delta_since(version) == []

    def test_interleaved_add_remove_of_same_edge(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2)])
        version = graph.content_version
        graph.remove_edge(0, 1)
        graph.add_edge(0, 1)
        graph.remove_edge(0, 1)
        ops = graph.delta_since(version)
        assert ops == [("remove", 0, 1), ("add", 0, 1), ("remove", 0, 1)]
        replayed = _replay(4, [("add", 0, 1), ("add", 1, 2)] + ops)
        assert sorted(replayed.edges()) == sorted(graph.edges())

    def test_add_vertex_invalidates_history(self):
        graph = Graph.from_edges(3, [(0, 1)])
        version = graph.content_version
        graph.add_vertex()
        assert graph.delta_since(version) is None
        # but history restarts from here
        version = graph.content_version
        graph.add_edge(2, 3)
        assert graph.delta_since(version) == [("add", 2, 3)]

    def test_unknown_versions_return_none(self):
        graph = Graph.from_edges(3, [(0, 1)])
        assert graph.delta_since(graph.content_version + 5) is None
        assert graph.delta_since(None) is None
        assert graph.delta_since("x") is None

    def test_truncation_returns_none_below_floor(self):
        graph = Graph(64)
        graph.journal_limit = 8
        version = graph.content_version
        for i in range(40):
            graph.add_edge(i, i + 1)
        assert graph.delta_since(version) is None
        assert graph.journal_floor > version
        # recent history is still replayable
        recent = graph.content_version
        graph.add_edge(0, 63)
        assert graph.delta_since(recent) == [("add", 0, 63)]

    def test_journal_limit_zero_disables_journaling(self):
        graph = Graph(4)
        graph.journal_limit = 0
        version = graph.content_version
        graph.add_edge(0, 1)
        assert graph.delta_since(version) is None
        assert graph.delta_since(graph.content_version) == []

    def test_copy_starts_a_fresh_consistent_history(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        clone = graph.copy()
        # version 0 of the clone *is* its full current content
        assert clone.delta_since(clone.content_version) == []
        clone.add_edge(0, 2)
        assert clone.delta_since(0) == [("add", 0, 2)]
        assert not graph.has_edge(0, 2)

    def test_construction_is_bounded_by_the_limit(self):
        graph = Graph(3000)
        for i in range(2999):
            graph.add_edge(i, i + 1)
        # block trimming keeps at most 2x the limit resident
        assert len(graph._journal) <= 2 * graph.journal_limit


class TestWeightedGraphJournal:
    def test_add_records_weight(self):
        graph = WeightedGraph(3)
        version = graph.content_version
        graph.add_edge(1, 0, 2.5)
        assert graph.delta_since(version) == [("add", 0, 1, 2.5)]

    def test_weight_lowering_is_journaled(self):
        graph = WeightedGraph.from_edges(3, [(0, 1, 5.0)])
        version = graph.content_version
        assert not graph.add_edge(0, 1, 3.0)  # duplicate, lower weight
        assert graph.delta_since(version) == [("weight", 0, 1, 3.0)]
        assert graph.weight(0, 1) == 3.0

    def test_weight_raising_is_a_noop(self):
        graph = WeightedGraph.from_edges(3, [(0, 1, 5.0)])
        version = graph.content_version
        assert not graph.add_edge(0, 1, 9.0)
        assert graph.delta_since(version) == []

    def test_remove_edge_returns_weight_and_journals(self):
        graph = WeightedGraph.from_edges(3, [(0, 1, 5.0), (1, 2, 1.0)])
        version = graph.content_version
        assert graph.remove_edge(1, 0) == 5.0
        assert graph.num_edges == 1
        assert not graph.has_edge(0, 1)
        assert graph.delta_since(version) == [("remove", 0, 1)]
        with pytest.raises(KeyError):
            graph.remove_edge(0, 1)

    def test_weighted_replay_round_trips(self):
        graph = WeightedGraph.from_edges(
            4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)])
        base = [("add",) + edge for edge in graph.edges()]
        version = graph.content_version
        graph.remove_edge(1, 2)
        graph.add_edge(0, 3, 1.5)
        graph.add_edge(0, 1, 0.5)  # weight change
        ops = graph.delta_since(version)
        replayed = _replay(4, base + ops, weighted=True)
        assert sorted(replayed.edges()) == sorted(graph.edges())
