"""The AMPC runtime: rounds, DHT lifecycle, and store-writing helpers.

An AMPC computation (Section 2) proceeds in rounds; in round i machines
read D_{i-1} and write D_i, each performing at most O(S) communication.
:class:`AMPCRuntime` wraps a dataflow :class:`Pipeline` with:

* a :class:`DHTService` sharded across the cluster's machines;
* :meth:`write_store`, the "write the directed graph to the key-value
  store" stage that appears in every AMPC implementation of Section 5
  (a ParDo whose per-element work is one KV write — *not* a shuffle);
* a round counter advanced by :meth:`next_round`, which seals the stores
  created in the finishing round (strict mode turns violations into errors).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.ampc.cluster import Cluster, ClusterConfig
from repro.ampc.dht import DHTService, DHTStore, next_delta_name
from repro.ampc.faults import FaultPlan
from repro.dataflow.dofn import DoFn
from repro.dataflow.pcollection import BudgetExceededError, PCollection
from repro.dataflow.pipeline import Pipeline

__all__ = ["AMPCRuntime", "BudgetExceededError"]


class _WriteStoreDoFn(DoFn):
    """Writes ``key_fn(element) -> value_fn(element)`` into a DHT store.

    Every key is known up front, so the whole partition goes through the
    batched KV API: one :meth:`MachineContext.write_many` per machine
    instead of one accounting pass per element (charge-identical).
    """

    def __init__(self, store: DHTStore, key_fn, value_fn):
        self._store = store
        self._key_fn = key_fn
        self._value_fn = value_fn

    def process(self, element, ctx):
        ctx.write(self._store, self._key_fn(element), self._value_fn(element))
        return ()

    def process_batch(self, elements, ctx):
        key_fn = self._key_fn
        value_fn = self._value_fn
        ctx.write_many(
            self._store,
            [(key_fn(element), value_fn(element)) for element in elements],
        )
        return ()


class AMPCRuntime:
    """One AMPC computation: a pipeline plus the DHT sequence."""

    def __init__(self, cluster: Optional[Cluster] = None,
                 config: Optional[ClusterConfig] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 strict_rounds: bool = False,
                 backing=None):
        self.pipeline = Pipeline(cluster=cluster, config=config,
                                 fault_plan=fault_plan)
        self.cluster = self.pipeline.cluster
        self.metrics = self.cluster.metrics
        self.dht = DHTService(
            self.cluster.config.num_machines, strict_rounds=strict_rounds,
            backing=backing,
        )
        self._round_stores = []

    @property
    def config(self) -> ClusterConfig:
        return self.cluster.config

    def _unique_store_name(self, name: str, avoid=()) -> str:
        """``name``, suffixed until it collides with no existing store.

        ``avoid`` adds names that must also be dodged even though they are
        not registered with this runtime — a derivation parent's ancestor
        chain lives in the *previous* run's runtime, so registry scanning
        alone cannot see it.
        """
        existing = {store.name for store in self.dht.stores()}
        existing.update(avoid)
        if name not in existing:
            return name
        suffix = len(existing)
        candidate = f"{name}-{suffix}"
        while candidate in existing:
            suffix += 1
            candidate = f"{name}-{suffix}"
        return candidate

    def new_store(self, name: Optional[str] = None) -> DHTStore:
        """Create the next hash table D_i (writable this round).

        Names are uniquified so that re-running a sub-algorithm on the same
        runtime (e.g. one matching per peeling level of Algorithm 4) never
        collides.
        """
        if name is not None:
            name = self._unique_store_name(name)
        store = self.dht.create(name)
        self._round_stores.append(store)
        return store

    def derive_store(self, parent: DHTStore,
                     name: Optional[str] = None) -> DHTStore:
        """Copy-on-write child of a sealed store, as this round's output.

        The incremental-update primitive: a prepared artifact's sealed
        store is derived, the patch is written into the child, and
        :meth:`next_round` (or ``write_store``'s seal) freezes it — the
        parent keeps serving whatever cache entry still references it.
        Names are uniquified like :meth:`new_store`.
        """
        # Each generation gets a distinct "+deltaN" tag (next_delta_name),
        # and the parent's whole ancestor chain is avoided explicitly:
        # ancestors were registered with *earlier* runtimes, so registry
        # uniquification alone used to let a grandchild collide with an
        # ancestor's name.
        base = name or next_delta_name(parent.name)
        lineage = set()
        ancestor = parent
        while ancestor is not None:
            lineage.add(ancestor.name)
            ancestor = getattr(ancestor, "parent", None)
        child = parent.derive(self._unique_store_name(base, avoid=lineage))
        self.dht.register(child)
        self._round_stores.append(child)
        return child

    def write_store(self, pcollection: PCollection, store: DHTStore,
                    key_fn: Callable[[Any], Any],
                    value_fn: Callable[[Any], Any],
                    seal: bool = True) -> None:
        """Write a PCollection into a store (ParDo of KV writes)."""
        pcollection.par_do(_WriteStoreDoFn(store, key_fn, value_fn),
                           name=f"write:{store.name}")
        if seal:
            store.seal()

    def next_round(self) -> int:
        """Advance the round counter; seal all stores of the closing round."""
        for store in self._round_stores:
            store.seal()
        self._round_stores = []
        self.metrics.rounds += 1
        return self.metrics.rounds
