"""Command-line interface, generated from the algorithm registry.

Usage::

    python -m repro mis graph.txt --machines 10 --seed 1
    python -m repro matching graph.txt
    python -m repro msf weighted.txt --weighted
    python -m repro components graph.txt
    python -m repro two-cycle cycles.txt
    python -m repro pagerank graph.txt --walks 32 --top 10
    python -m repro mis graph.txt --query-budget 5000 --json
    python -m repro serve --machines 10 --workers 4          # JSON over stdio
    python -m repro serve --port 7077                        # JSON over TCP
    python -m repro serve --processes 4 --port 7077          # process pool
    python -m repro dht-server --port 7171                   # one DHT node
    python -m repro serve --backend shm --processes 4        # shared memory
    python -m repro serve --backend socket \\
        --dht-node 127.0.0.1:7171 --dht-node 127.0.0.1:7172 \\
        --replication 2                                      # real cluster
    python -m repro serve --processes 2 --max-inflight-cost 50 \\
        --deadline-ms 2000 --autoscale 4      # load-adaptive serving
    python -m repro dht-server --chaos-latency-ms 150        # slow node
    python -m repro dht-repair --dht-node 127.0.0.1:7171 \\
        --dht-node 127.0.0.1:7172 --replication 2        # anti-entropy

Every subcommand comes from :mod:`repro.api.registry`: registering an
:class:`~repro.api.registry.AlgorithmSpec` in a core module is all it takes
to appear here, with the spec's parameters projected onto CLI flags.  Runs
go through :class:`~repro.api.session.Session`, print the spec's result
headline plus the execution metrics the paper reports, and ``--json``
dumps the full :class:`~repro.api.result.RunResult` envelope instead.

Input files are plain edge lists (``u v`` or ``u v w`` per line, ``#``
comments allowed — the format of :mod:`repro.graph.io`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.ampc.cluster import ClusterConfig
from repro.ampc.cost_model import CostModel
from repro.api import Session, registry
from repro.dataflow.pcollection import BudgetExceededError
from repro.graph.generators import degree_weighted
from repro.graph.io import read_edge_list, read_weighted_edge_list


def _add_cluster_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--machines", type=int, default=10)
    parser.add_argument("--threads", type=int, default=72)
    parser.add_argument("--transport", choices=("rdma", "tcp"),
                        default="rdma")
    parser.add_argument("--no-caching", action="store_true",
                        help="disable the per-machine query cache")
    parser.add_argument("--no-multithreading", action="store_true",
                        help="disable lookup latency hiding")
    parser.add_argument("--query-budget", type=int, default=None,
                        metavar="N",
                        help="per-machine per-stage KV query budget — the "
                             "O(S) communication bound of the AMPC model")


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="edge-list file (u v [w] per line)")
    _add_cluster_arguments(parser)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="print the full RunResult envelope as JSON")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AMPC graph algorithms in constant adaptive rounds "
                    "(Behnezhad et al., VLDB 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for spec in registry.specs():
        command = sub.add_parser(spec.name, help=spec.summary)
        _add_common_arguments(command)
        if spec.input_kind == "weighted":
            command.add_argument(
                "--weighted", action="store_true",
                help="read weights from the file (default: deg(u)+deg(v) "
                     "weights, as in the paper)")
        for param in spec.params:
            command.add_argument(param.flag, dest=param.name,
                                 type=param.type, default=param.default,
                                 help=param.help)
    serve = sub.add_parser(
        "serve",
        help="serve queries over JSON lines (stdio, or TCP with --port)")
    _add_cluster_arguments(serve)
    serve.add_argument("--workers", type=int, default=4,
                       help="concurrent query worker threads (one shared "
                            "Session under the GIL)")
    serve.add_argument("--processes", type=int, default=None, metavar="N",
                       help="serve from N worker processes instead of "
                            "threads (one private Session each, queries "
                            "routed by graph fingerprint affinity) — "
                            "lifts the GIL limit for CPU-bound traffic")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port to listen on (default: stdio; "
                            "0 picks an ephemeral port)")
    serve.add_argument("--max-cache-bytes", type=int, default=None,
                       metavar="N",
                       help="LRU byte budget for the preprocessing cache")
    serve.add_argument("--backend", choices=("sim", "mem", "shm", "socket"),
                       default="sim",
                       help="where DHT records physically live: 'sim' "
                            "(in-runtime dicts, the default), 'shm' "
                            "(shared-memory segments, one host), or "
                            "'socket' (remote dht-server nodes)")
    serve.add_argument("--dht-node", action="append", dest="dht_nodes",
                       default=None, metavar="HOST:PORT",
                       help="a dht-server node address (repeatable; "
                            "required with --backend socket)")
    serve.add_argument("--replication", type=int, default=1, metavar="R",
                       help="replicas per key on the socket backend "
                            "(reads fail over node by node)")
    serve.add_argument("--max-inflight-cost", type=float, default=None,
                       metavar="COST",
                       help="admission control: per-worker budget of "
                            "estimated query cost (simulated seconds) "
                            "held in flight; excess queries queue, then "
                            "shed with a structured retry-after error")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="default queue-wait deadline per query; a "
                            "query still queued past it fails with "
                            "deadline_exceeded instead of running "
                            "(requests may override via deadline_ms)")
    serve.add_argument("--autoscale", type=int, default=None, metavar="MAX",
                       help="with --processes: grow the worker-process "
                            "pool up to MAX under sustained queue depth, "
                            "shrink back when load drains")
    serve.add_argument("--no-worker-retry", action="store_true",
                       help="with --processes: fail queries caught on a "
                            "crashed worker with worker_died instead of "
                            "re-running them once on a survivor")
    dht_server = sub.add_parser(
        "dht-server",
        help="run one standalone DHT node (binary KV protocol over TCP)")
    dht_server.add_argument("--host", default="127.0.0.1")
    dht_server.add_argument("--port", type=int, default=0,
                            help="TCP port to listen on (0 picks an "
                                 "ephemeral port, printed on stderr)")
    dht_server.add_argument("--chaos-latency-ms", type=float, default=0.0,
                            metavar="MS",
                            help="chaos harness: sleep MS before serving "
                                 "each request (a deliberately slow node)")
    dht_server.add_argument("--chaos-error-rate", type=float, default=0.0,
                            metavar="P",
                            help="chaos harness: reply STATUS_ERROR to "
                                 "that fraction of requests")
    dht_server.add_argument("--chaos-blackhole", action="store_true",
                            help="chaos harness: drop every request "
                                 "unanswered and reset the connection")
    dht_server.add_argument("--chaos-seed", type=int, default=0,
                            help="seed for the chaos error-rate schedule")
    dht_repair = sub.add_parser(
        "dht-repair",
        help="anti-entropy sweep: converge replicas across dht-server "
             "nodes (digest, copy divergence, verify)")
    dht_repair.add_argument("--dht-node", action="append", dest="dht_nodes",
                            required=True, metavar="HOST:PORT",
                            help="a dht-server node address (repeatable; "
                                 "list every node of the cluster)")
    dht_repair.add_argument("--replication", type=int, default=1,
                            metavar="R",
                            help="the cluster's replicas-per-key (must "
                                 "match what writers used)")
    dht_repair.add_argument("--prefix", default="",
                            help="only repair keys under this prefix "
                                 "(default: everything)")
    dht_repair.add_argument("--max-rounds", type=int, default=4,
                            metavar="N",
                            help="copy+verify round budget; normal "
                                 "convergence takes two")
    dht_repair.add_argument("--json", action="store_true",
                            help="print the full RepairReport as JSON")
    return parser


def _config(args) -> ClusterConfig:
    cost_model = (CostModel.tcp() if args.transport == "tcp"
                  else CostModel.rdma())
    return ClusterConfig(
        num_machines=args.machines,
        threads_per_machine=args.threads,
        caching=not args.no_caching,
        multithreading=not args.no_multithreading,
        cost_model=cost_model,
        query_budget_per_machine=args.query_budget,
    )


def _load_graph(spec, args):
    if spec.input_kind == "weighted":
        if args.weighted:
            return read_weighted_edge_list(args.graph)
        return degree_weighted(read_edge_list(args.graph))
    return read_edge_list(args.graph)


def _print_metrics(metrics: dict) -> None:
    print(f"shuffles: {metrics['shuffles']}  "
          f"shuffle bytes: {metrics['shuffle_bytes']:,}")
    print(f"KV reads: {metrics['kv_reads']:,}  "
          f"KV bytes: {metrics['kv_bytes']:,}  "
          f"cache hit rate: {metrics['cache_hit_rate']:.1%}")
    print(f"simulated time: {metrics['simulated_time_s']:.3f}s")


def _cmd_serve(args) -> int:
    from repro.serve import (
        GraphService,
        ProcessGraphService,
        serve_socket,
        serve_stream,
    )

    if args.backend == "socket" and not args.dht_nodes:
        print("error: --backend socket needs at least one --dht-node",
              file=sys.stderr)
        return 2
    if args.autoscale is not None and args.processes is None:
        print("error: --autoscale needs --processes", file=sys.stderr)
        return 2
    deadline_s = (args.deadline_ms / 1000.0
                  if args.deadline_ms is not None else None)
    backend_options = dict(backend=args.backend, dht_nodes=args.dht_nodes,
                           replication=args.replication)
    load_options = dict(max_inflight_cost=args.max_inflight_cost,
                        default_deadline_s=deadline_s)
    if args.processes is not None:
        service = ProcessGraphService(_config(args),
                                      processes=args.processes,
                                      max_cache_bytes=args.max_cache_bytes,
                                      autoscale_max=args.autoscale,
                                      retry_worker_death=(
                                          not args.no_worker_retry),
                                      **load_options, **backend_options)
    else:
        service = GraphService(_config(args), workers=args.workers,
                               max_cache_bytes=args.max_cache_bytes,
                               **load_options, **backend_options)
    try:
        if args.port is None:
            serve_stream(service, sys.stdin, sys.stdout)
        else:
            server = serve_socket(service, args.host, args.port)
            host, port = server.server_address[:2]
            print(f"serving on {host}:{port}", file=sys.stderr, flush=True)
            try:
                server.serve_forever()
            finally:
                server.close()
    finally:
        service.close()
    return 0


def _cmd_dht_server(args) -> int:
    from repro.distdht import DHTNodeServer

    node = DHTNodeServer(args.host, args.port)
    if (args.chaos_latency_ms > 0 or args.chaos_error_rate > 0
            or args.chaos_blackhole):
        node.inject_chaos(latency_s=args.chaos_latency_ms / 1000.0,
                          error_rate=args.chaos_error_rate,
                          blackhole=args.chaos_blackhole,
                          seed=args.chaos_seed)
    host, port = node.address
    print(f"dht-server listening on {host}:{port}", file=sys.stderr,
          flush=True)
    try:
        node.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        node.close()
    return 0


def _cmd_dht_repair(args) -> int:
    import json

    from repro.distdht import SocketBackingStore, parse_node, repair_store

    nodes = [parse_node(spec) for spec in args.dht_nodes]
    store = SocketBackingStore(nodes, replication=args.replication,
                               probe_interval_s=0.0,
                               repair_on_rejoin=False)
    try:
        report = repair_store(store, prefix=args.prefix.encode("utf-8"),
                              max_rounds=args.max_rounds)
    finally:
        store.close()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        state = "converged" if report.converged else "NOT converged"
        print(f"{state} in {report.rounds} round(s): "
              f"{report.keys_checked} keys checked, "
              f"{report.keys_copied} copied "
              f"({report.tombstones_copied} tombstones), "
              f"{report.copy_failures} copy failures, "
              f"{report.nodes_unreachable} nodes unreachable")
        for name, counts in sorted(report.namespaces.items()):
            print(f"  {name}: checked {counts['checked']} "
                  f"copied {counts['copied']}")
    return 0 if report.converged else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "dht-server":
        return _cmd_dht_server(args)
    if args.command == "dht-repair":
        return _cmd_dht_repair(args)
    spec = registry.get(args.command)
    session = Session(_config(args))
    graph = _load_graph(spec, args)
    params = {p.name: getattr(args, p.name) for p in spec.params}
    try:
        result = session.run(spec.name, graph, seed=args.seed, **params)
    except (BudgetExceededError, ValueError) as error:
        # Budget overruns and input-shape rejections (e.g. a non-cycle
        # graph handed to two-cycle) are user errors, not crashes.
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(result.description)
    _print_metrics(result.metrics)
    for phase, seconds in result.phases.items():
        print(f"  {phase}: {seconds:.3f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
