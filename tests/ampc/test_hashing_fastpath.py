"""Property tests: the fast paths are value-identical to their references.

``stable_hash`` carries an inlined single-``splitmix64`` path for small
non-negative ints, and ``estimate_bytes`` dispatches on exact type with a
flat sequence walk; both keep their original implementations in-repo as
executable specifications (``stable_hash_reference``,
``estimate_bytes_reference``).  These tests drive randomized keys and
values of every supported shape through both and require exact agreement —
placement (and therefore every simulated metric) must not move by a single
bit when the fast paths change.
"""

import random

import pytest

from repro.ampc.cost_model import (_sequence_bytes, estimate_bytes,
                                   estimate_bytes_reference)
from repro.ampc.hashing import _MASK, stable_hash, stable_hash_reference
from repro.ampc.vector import HAVE_NUMPY

SEED = 20260729


def _random_scalar(rng: random.Random):
    kind = rng.randrange(8)
    if kind == 0:
        return rng.randrange(0, 1 << 16)  # small vertex-id ints
    if kind == 1:
        return rng.randrange(0, 1 << 64)  # boundary-straddling ints
    if kind == 2:
        return -rng.randrange(0, 1 << 70)  # negative / multi-limb ints
    if kind == 3:
        return rng.choice([True, False])
    if kind == 4:
        return rng.random() * rng.choice([1.0, 1e9, -1e9])
    if kind == 5:
        return float(rng.randrange(-1000, 1000))  # integral floats
    if kind == 6:
        return "".join(rng.choice("abcdeλµ☂") for _ in range(rng.randrange(6)))
    return None


def _random_value(rng: random.Random, depth: int = 0):
    if depth < 3 and rng.random() < 0.4:
        items = [_random_value(rng, depth + 1)
                 for _ in range(rng.randrange(4))]
        shape = rng.randrange(3)
        if shape == 0:
            return tuple(items)
        if shape == 1:
            return list(items)
        # dict values keep keys scalar (what algorithms actually store)
        return {_random_scalar(rng): item for item in items}
    return _random_scalar(rng)


def _random_key(rng: random.Random, depth: int = 0):
    # Keys must be hashable: scalars and (nested) tuples thereof.
    if depth < 3 and rng.random() < 0.35:
        return tuple(_random_key(rng, depth + 1)
                     for _ in range(rng.randrange(4)))
    scalar = _random_scalar(rng)
    return scalar if scalar is not None else 0


class TestStableHashFastPath:
    def test_randomized_keys_agree_with_reference(self):
        rng = random.Random(SEED)
        for _ in range(4000):
            key = _random_key(rng)
            assert stable_hash(key) == stable_hash_reference(key), key

    def test_fast_path_boundaries(self):
        for key in (0, 1, 2, _MASK - 1, _MASK, _MASK + 1, 1 << 100,
                    -1, -_MASK, True, False):
            assert stable_hash(key) == stable_hash_reference(key), key

    def test_numeric_cross_type_equality_preserved(self):
        # dict key identity: True == 1 == 1.0 must stay one placement.
        assert stable_hash(True) == stable_hash(1) == stable_hash(1.0)
        assert stable_hash(0) == stable_hash(False) == stable_hash(0.0)

    def test_frozensets_and_bytes_agree(self):
        rng = random.Random(SEED + 1)
        for _ in range(500):
            ints = frozenset(rng.randrange(1 << 32)
                             for _ in range(rng.randrange(6)))
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(20)))
            for key in (ints, blob, (blob, ints)):
                assert stable_hash(key) == stable_hash_reference(key)


class TestEstimateBytesDispatch:
    def test_randomized_values_agree_with_reference(self):
        rng = random.Random(SEED + 2)
        for _ in range(4000):
            value = _random_value(rng)
            assert estimate_bytes(value) == estimate_bytes_reference(value), \
                value

    def test_common_simulator_shapes(self):
        adjacency = tuple(range(50))
        permuted = tuple((0.25 * i, i) for i in range(40))
        tagged = [(7, ("edge", (1.5, 0, 1, 2, 3))), ("root", 9)]
        for value in (adjacency, permuted, tagged, (), {}, set(), b"abc",
                      frozenset({1, 2})):
            assert estimate_bytes(value) == estimate_bytes_reference(value)

    def test_subclasses_fall_back_to_reference(self):
        class MyTuple(tuple):
            pass

        class MyInt(int):
            pass

        assert estimate_bytes(MyTuple((1, 2))) == \
            estimate_bytes_reference((1, 2))
        assert estimate_bytes(MyInt(7)) == 8

    def test_unsupported_types_still_raise(self):
        with pytest.raises(TypeError):
            estimate_bytes(object())
        with pytest.raises(TypeError):
            estimate_bytes_reference(object())


class TestSequenceBytesUnrolledLevel:
    """`_sequence_bytes` unrolls one nesting level inline; these shapes
    pin every branch of that unrolled walk (scalar / tuple / str / other
    at both depths) against the recursive reference."""

    NESTED_SHAPES = [
        (True, False, True),                       # bools: 1 byte, not 8
        (1, (True, 2.5), "λx"),                    # mixed at both levels
        ((True,), ("tag", (False, 3))),            # tuple-in-tuple recursion
        ["a", ("b", "cλ"), (1, ("deep", (2, "e")))],
        (None, (None, True), ()),                  # Nones inside sequences
        ((b"bytes", 1), ("s", b"")),               # bytes at inner level
        [(7, ("edge", (1.5, 0, 1, 2, 3))), (9, ("root", 4))],
        (frozenset({1, 2}), ({"k": True},)),       # non-tuple inner values
    ]

    def test_nested_shapes_agree_with_reference(self):
        for value in self.NESTED_SHAPES:
            assert _sequence_bytes(value) == \
                estimate_bytes_reference(value), value
            assert estimate_bytes(value) == \
                estimate_bytes_reference(value), value

    def test_randomized_bool_str_mixtures(self):
        rng = random.Random(SEED + 3)

        def scalar():
            return rng.choice(
                [True, False, "λ" * rng.randrange(3), 1, 2.5, None, b"xy"])

        for _ in range(2000):
            value = [
                scalar() if rng.random() < 0.5 else
                tuple(scalar() if rng.random() < 0.7
                      else (scalar(), scalar())
                      for _ in range(rng.randrange(3)))
                for _ in range(rng.randrange(5))
            ]
            assert _sequence_bytes(value) == \
                estimate_bytes_reference(value), value


@pytest.mark.skipif(not HAVE_NUMPY, reason="columnar layout needs numpy")
class TestColumnarSizesMatchReference:
    """The vectorized per-record size expression of ColumnarRecords must
    equal what ``estimate_bytes_reference`` walks out of the boxed
    records — shard-byte accounting flows through both paths."""

    def test_ragged_pair_rows(self):
        from repro.ampc.columnar import ColumnarRecords

        rng = random.Random(SEED + 4)
        counts = [rng.randrange(5) for _ in range(40)]
        indptr = [0]
        for count in counts:
            indptr.append(indptr[-1] + count)
        total = indptr[-1]
        ranks = [rng.random() for _ in range(total)]
        neighbors = [rng.randrange(1 << 20) for _ in range(total)]
        records = ColumnarRecords.ragged(list(range(40)), indptr,
                                         ranks, neighbors)
        sizes = records.value_size_list()
        for (key, value), size in zip(records.items(), sizes):
            assert size == estimate_bytes_reference(value), (key, value)
            assert size == estimate_bytes(value)

    def test_ragged_scalar_rows_and_scalars(self):
        from repro.ampc.columnar import ColumnarRecords

        ragged = ColumnarRecords.ragged([3, 1, 2], [0, 2, 2, 5],
                                        [10, 11, 12, 13, 14])
        for (_, value), size in zip(ragged.items(),
                                    ragged.value_size_list()):
            assert size == estimate_bytes_reference(value)
        scalars = ColumnarRecords.scalars([5, 6], [7, 8])
        for (_, value), size in zip(scalars.items(),
                                    scalars.value_size_list()):
            assert size == estimate_bytes_reference(value)

    def test_element_bytes_match_boxed_elements(self):
        from repro.ampc.columnar import ColumnarRecords

        records = ColumnarRecords.ragged([0, 1], [0, 1, 3],
                                         [0.5, 0.25, 0.125], [4, 5, 6])
        boxed_total = sum(estimate_bytes_reference(element)
                          for element in records.items())
        assert records.total_element_bytes() == boxed_total
