"""Real distributed DHT backends behind the AlgorithmSpec seam.

The simulator's :class:`~repro.ampc.dht.DHTStore` keeps every entry as a
boxed Python object in an in-process dict — perfect for cost-model
accounting, useless as an actual serving substrate.  This package supplies
the physical half the AMPC model assumes (machines doing adaptive reads
against a *distributed hash table*):

* :class:`BackingStore` — the byte-level KV contract every backend
  implements (put/get/delete plus batched and prefix operations, and a
  cross-process ``share``/``fetch`` locator pair for one-writer
  many-reader distribution);
* :class:`InMemoryBackingStore` — the reference implementation (a dict);
* :class:`SharedMemoryBackingStore` — single-host backend over
  ``multiprocessing.shared_memory`` segments (manager-free: one writer
  process, any number of attached readers; a prepared artifact physically
  exists once in RAM no matter how many worker processes read it);
* :class:`SocketBackingStore` + :class:`DHTNodeServer` — multi-host
  backend: a length-prefixed binary KV protocol over TCP against
  standalone ``python -m repro dht-server`` nodes, with consistent-hash
  key placement, client-side connection pooling, retry with backoff,
  replication factor R and read-failover to a replica when a node dies;
* :class:`ChaosInjector` — per-node fault injection (latency, error
  rate, blackhole) so node-slow and half-dead shapes are testable
  through the full stack, not just clean kills; :class:`NodeOutage` /
  :func:`restart_node_empty` script the crash-and-rejoin-empty shape;
* :func:`repair_store` / :class:`RepairReport` — anti-entropy for the
  socket backend: per-key digests compared across replicas, divergence
  copied (tombstone-wins) until they agree.  The socket client also
  heals online: a circuit breaker skips down nodes, hinted handoff
  parks writes for them, read-repair back-fills failover reads, and a
  background prober replays hints + repairs when a node rejoins;
* :class:`BackedDHTStore` — a :class:`~repro.ampc.dht.DHTStore`-compatible
  adapter that keeps **all simulated-cost accounting at the adapter
  boundary** (same shard placement, same ``estimate_bytes`` charging,
  same per-shard read counts) while the values physically live in a
  backing store.  ``AMPCRuntime``, ``Session.prepare``, the incremental
  ``derive()`` path and both serving services run unchanged against it.

Select a backend with ``Session(backend="shm")`` /
``serve --backend {sim,shm,socket}``; ``create_backend`` parses the spec.
"""

from repro.distdht.backing import (
    BackingStore,
    InMemoryBackingStore,
    decode_record,
    encode_key,
    encode_record,
    fetch,
)
from repro.distdht.backend import create_backend, parse_node
from repro.distdht.chaos import (
    BlackholeError,
    ChaosInjector,
    NodeOutage,
    restart_node_empty,
)
from repro.distdht.repair import RepairReport, repair_store
from repro.distdht.shm import SharedMemoryBackingStore
from repro.distdht.sockets import DHTNodeServer, SocketBackingStore
from repro.distdht.store import BackedDHTStore, BackedDerivedDHTStore

__all__ = [
    "BackingStore",
    "BlackholeError",
    "ChaosInjector",
    "NodeOutage",
    "RepairReport",
    "repair_store",
    "restart_node_empty",
    "InMemoryBackingStore",
    "SharedMemoryBackingStore",
    "SocketBackingStore",
    "DHTNodeServer",
    "BackedDHTStore",
    "BackedDerivedDHTStore",
    "create_backend",
    "parse_node",
    "encode_key",
    "encode_record",
    "decode_record",
    "fetch",
]
