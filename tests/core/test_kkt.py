"""Tests for the KKT reduction (Algorithm 3) and F-light edges (Algorithm 5)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampc import ClusterConfig
from repro.core import find_f_light_edges, kkt_msf
from repro.graph import WeightedGraph, cycle_graph, path_graph
from repro.graph.generators import erdos_renyi_gnm, random_weighted
from repro.graph.graph import edge_key
from repro.sequential import kruskal_msf

CONFIG = ClusterConfig(num_machines=4)


def brute_force_f_light(graph, forest_edges):
    """F-light by explicit path maxima (Definition 3.7)."""
    from repro.graph import Graph
    from repro.graph.properties import connected_components

    forest = Graph(graph.num_vertices)
    for u, v in forest_edges:
        forest.add_edge(u, v)
    labels = connected_components(forest)

    def path_max_key(u, v):
        # BFS through the forest tracking the max edge key on the path.
        from collections import deque

        best = {u: (float("-inf"), -1, -1)}
        queue = deque([u])
        while queue:
            x = queue.popleft()
            for y in forest.neighbors(x):
                if y not in best:
                    key = max(best[x], graph.weight_order_key(x, y))
                    best[y] = key
                    queue.append(y)
        return best[v]

    light = set()
    for u, v, _ in graph.edges():
        if labels[u] != labels[v]:
            light.add(edge_key(u, v))
        elif graph.weight_order_key(u, v) <= path_max_key(u, v):
            light.add(edge_key(u, v))
    return light


class TestFLight:
    def test_forest_edges_are_light(self):
        graph = random_weighted(cycle_graph(12), seed=0)
        forest = kruskal_msf(graph)
        report = find_f_light_edges(graph, forest)
        assert set(forest) <= set(report.light_edges)

    def test_cross_component_edges_are_light(self):
        graph = WeightedGraph(4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(2, 3, 1.0)
        graph.add_edge(1, 2, 100.0)
        report = find_f_light_edges(graph, [(0, 1), (2, 3)])
        assert (1, 2) in report.light_edges

    def test_heavy_edge_detected(self):
        # Cycle where one edge is clearly the heaviest.
        graph = WeightedGraph(4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 2.0)
        graph.add_edge(2, 3, 3.0)
        graph.add_edge(3, 0, 50.0)
        forest = [(0, 1), (1, 2), (2, 3)]
        report = find_f_light_edges(graph, forest)
        assert report.heavy_edges == [(0, 3)]

    def test_no_msf_edge_is_heavy(self):
        """Proposition 3.8 on random graphs with a random sampled forest."""
        for seed in range(4):
            graph = random_weighted(erdos_renyi_gnm(40, 120, seed=seed),
                                    seed=seed)
            sampled = [
                (u, v) for i, (u, v, _) in enumerate(graph.edges())
                if (i * 2654435761 + seed) % 3 == 0
            ]
            forest = kruskal_msf(graph.subgraph_edges(sampled))
            report = find_f_light_edges(graph, forest)
            msf = set(kruskal_msf(graph))
            assert msf <= set(report.light_edges)

    def test_matches_brute_force(self):
        for seed in range(4):
            graph = random_weighted(erdos_renyi_gnm(30, 90, seed=seed),
                                    seed=seed)
            sampled = [
                (u, v) for i, (u, v, _) in enumerate(graph.edges())
                if i % 2 == 0
            ]
            forest = kruskal_msf(graph.subgraph_edges(sampled))
            report = find_f_light_edges(graph, forest)
            assert set(report.light_edges) == brute_force_f_light(graph, forest)

    def test_query_bound(self):
        """Lemma B.2: O(log n) probes per edge."""
        graph = random_weighted(erdos_renyi_gnm(200, 600, seed=5), seed=5)
        forest = kruskal_msf(graph)
        report = find_f_light_edges(graph, forest)
        per_edge = report.total_queries / graph.num_edges
        assert per_edge <= 4 * math.log2(graph.num_vertices) + 4


class TestKKT:
    def test_matches_kruskal(self):
        for seed in range(4):
            graph = random_weighted(erdos_renyi_gnm(50, 150, seed=seed),
                                    seed=seed)
            result = kkt_msf(graph, seed=seed, config=CONFIG)
            assert result.forest == sorted(kruskal_msf(graph))

    def test_light_edges_bounded(self):
        """The KKT sampling lemma: O(n/p) F-light edges in expectation."""
        graph = random_weighted(erdos_renyi_gnm(300, 3000, seed=1), seed=1)
        result = kkt_msf(graph, seed=1, config=CONFIG, sample_probability=0.5)
        # n/p = 600; allow generous slack over the expectation.
        assert result.light_edges < 4 * graph.num_vertices / 0.5

    def test_queries_below_direct_mlogn(self):
        """The point of the reduction: fewer queries than O(m log n)."""
        graph = random_weighted(erdos_renyi_gnm(200, 4000, seed=2), seed=2)
        result = kkt_msf(graph, seed=2, config=CONFIG)
        direct = graph.num_edges * math.log2(graph.num_vertices)
        assert result.total_queries < direct

    def test_empty_graph(self):
        result = kkt_msf(WeightedGraph(4), seed=0, config=CONFIG)
        assert result.forest == []

    def test_custom_base_solver(self):
        graph = random_weighted(path_graph(10), seed=3)
        calls = []

        def tracking_solver(g):
            calls.append(g.num_edges)
            return kruskal_msf(g)

        result = kkt_msf(graph, seed=3, config=CONFIG,
                         base_msf=tracking_solver)
        assert result.forest == sorted(kruskal_msf(graph))
        assert len(calls) == 2  # MSF of H, then of F + E_L


@given(
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=0, max_value=300),
)
@settings(max_examples=20, deadline=None)
def test_kkt_property(n, seed):
    m = min(3 * n, n * (n - 1) // 2)
    graph = random_weighted(erdos_renyi_gnm(n, m, seed=seed), seed=seed)
    result = kkt_msf(graph, seed=seed, config=ClusterConfig(num_machines=2))
    assert result.forest == sorted(kruskal_msf(graph))
