"""Graph ternarization (Algorithm 2, line 2 of the paper).

Every vertex of degree k > 3 is replaced by a cycle of length k; the i-th
edge incident to the vertex attaches to the i-th cycle vertex.  Cycle
("dummy") edges receive a weight strictly below the lightest real edge
weight, so that a minimum spanning forest of the ternarized graph contains
all but one dummy edge of each cycle and its real edges project onto the
minimum spanning forest of the original graph.

The resulting graph has maximum degree <= 3 and Theta(m) vertices, which is
the precondition for the TruncatedPrim analysis (Lemma 3.3 relies on the
bounded degree to show the Omega(n^{eps/2}) shrink factor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph, WeightedGraph, edge_key

EdgeId = Tuple[int, int]


@dataclass
class TernarizedGraph:
    """A ternarized weighted graph plus the bookkeeping to undo it."""

    graph: WeightedGraph
    #: new vertex id -> the original vertex it represents
    original_of: List[int]
    #: weight used for dummy (cycle) edges; strictly below all real weights
    dummy_weight: float
    #: canonical new edge -> canonical original edge (real edges only)
    edge_map: Dict[EdgeId, EdgeId] = field(default_factory=dict)

    def is_dummy_edge(self, u: int, v: int) -> bool:
        return edge_key(u, v) not in self.edge_map

    def project_edges(self, edges) -> List[EdgeId]:
        """Map ternarized edges back to original edges, dropping dummies."""
        projected = []
        for u, v in edges:
            original = self.edge_map.get(edge_key(u, v))
            if original is not None:
                projected.append(original)
        return projected


def ternarize(graph: WeightedGraph) -> TernarizedGraph:
    """Ternarize ``graph``; identity-like for graphs with max degree <= 3.

    Vertices of degree <= 3 keep a single representative; higher-degree
    vertices expand into a dummy-edge cycle with one slot per incident edge.
    """
    if graph.num_edges == 0:
        empty = WeightedGraph(graph.num_vertices)
        return TernarizedGraph(
            graph=empty,
            original_of=list(range(graph.num_vertices)),
            dummy_weight=0.0,
        )

    min_weight = min(w for _, _, w in graph.edges())
    dummy_weight = min_weight - 1.0

    # Assign each (vertex, incident-edge) pair a slot vertex in the new graph.
    original_of: List[int] = []
    slot_of: Dict[Tuple[int, int], int] = {}  # (v, neighbor) -> new vertex id
    for v in graph.vertices():
        degree = graph.degree(v)
        if degree <= 3:
            vid = len(original_of)
            original_of.append(v)
            for u in graph.neighbors(v):
                slot_of[(v, u)] = vid
        else:
            first = len(original_of)
            for u in graph.neighbors(v):
                slot_of[(v, u)] = len(original_of)
                original_of.append(v)
            # The cycle itself is added after all slots exist.
            slot_of[(v, -1)] = first  # remember the base for the cycle below

    new_graph = WeightedGraph(len(original_of))
    edge_map: Dict[EdgeId, EdgeId] = {}

    # Dummy cycles for expanded vertices.
    for v in graph.vertices():
        degree = graph.degree(v)
        if degree > 3:
            base = slot_of[(v, -1)]
            for i in range(degree):
                a = base + i
                b = base + (i + 1) % degree
                new_graph.add_edge(a, b, dummy_weight)

    # Real edges between the matching slots.
    for u, v, w in graph.edges():
        a = slot_of[(u, v)]
        b = slot_of[(v, u)]
        new_graph.add_edge(a, b, w)
        edge_map[edge_key(a, b)] = edge_key(u, v)

    return TernarizedGraph(
        graph=new_graph,
        original_of=original_of,
        dummy_weight=dummy_weight,
        edge_map=edge_map,
    )
