"""Sequential random-greedy MIS and maximal matching.

Given an explicit rank function these compute the *lexicographically-first*
MIS / maximal matching: scan vertices (edges) in increasing rank and take
each one whose neighbors (incident edges) taken so far allow it.  The AMPC
query-process algorithms of the paper compute exactly the same object for
the same ranks (Section 5.3: "By specifying the same source of randomness,
both the MPC and AMPC algorithms compute the same MIS"), which is what the
integration tests assert.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.graph.graph import Graph, edge_key

EdgeId = Tuple[int, int]


def random_vertex_ranks(n: int, seed: int) -> List[float]:
    """A deterministic random rank in (0, 1) per vertex.

    Ranks are drawn independently; ties have probability zero in theory and
    are broken by vertex id wherever ranks are compared in this repository.
    """
    rng = random.Random(seed)
    return [rng.random() for _ in range(n)]


def random_edge_ranks(graph: Graph, seed: int) -> Dict[EdgeId, float]:
    """A deterministic random rank in (0, 1) per undirected edge."""
    rng = random.Random(seed)
    return {edge_key(u, v): rng.random() for u, v in graph.edges()}


def greedy_mis(graph: Graph, ranks: List[float]) -> Set[int]:
    """Lexicographically-first MIS for the vertex order induced by ranks."""
    order = sorted(graph.vertices(), key=lambda v: (ranks[v], v))
    in_mis: Set[int] = set()
    blocked = [False] * graph.num_vertices
    for v in order:
        if blocked[v]:
            continue
        in_mis.add(v)
        for u in graph.neighbors(v):
            blocked[u] = True
    return in_mis


def greedy_matching(graph: Graph, ranks: Dict[EdgeId, float]) -> Set[EdgeId]:
    """Lexicographically-first maximal matching for the edge ranks."""
    order = sorted(
        (edge_key(u, v) for u, v in graph.edges()),
        key=lambda e: (ranks[e], e),
    )
    matched_vertex = [False] * graph.num_vertices
    matching: Set[EdgeId] = set()
    for u, v in order:
        if not matched_vertex[u] and not matched_vertex[v]:
            matching.add((u, v))
            matched_vertex[u] = True
            matched_vertex[v] = True
    return matching
