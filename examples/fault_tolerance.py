"""Fault tolerance: identical results under machine preemptions.

The AMPC model's selling point over pure in-memory systems (Section 5.1):
because every stage reads durable inputs (shuffle outputs / the DHT), a
preempted machine's partition is simply re-executed.  This demo injects
heavy preemptions and shows (a) the *outputs* are bit-identical, and
(b) only the simulated running time pays.

Run with::

    python examples/fault_tolerance.py
"""

from repro.ampc import AMPCRuntime, ClusterConfig, FaultPlan
from repro.core.mis import ampc_mis
from repro.core.msf import ampc_msf
from repro.graph import barabasi_albert_graph, degree_weighted


def main():
    graph = barabasi_albert_graph(800, attach=3, seed=9)
    weighted = degree_weighted(graph)
    config = ClusterConfig(num_machines=10)

    print(f"input: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"{'preempt prob':>12} {'preemptions':>12} {'MIS time':>10} "
          f"{'MSF time':>10} {'outputs identical':>18}")

    baseline_mis = ampc_mis(graph, config=config, seed=2)
    baseline_msf = ampc_msf(weighted, config=config, seed=2)

    for probability in (0.0, 0.1, 0.3):
        fault_plan = (FaultPlan(preempt_probability=probability, seed=42)
                      if probability else None)
        mis_runtime = AMPCRuntime(config=config, fault_plan=fault_plan)
        msf_runtime = AMPCRuntime(config=config, fault_plan=fault_plan)
        mis = ampc_mis(graph, runtime=mis_runtime, seed=2)
        msf = ampc_msf(weighted, runtime=msf_runtime, seed=2)

        identical = (mis.independent_set == baseline_mis.independent_set
                     and msf.forest == baseline_msf.forest)
        preemptions = (mis.metrics.preemptions + msf.metrics.preemptions)
        print(f"{probability:>12.0%} {preemptions:>12} "
              f"{mis.metrics.simulated_time_s:>9.2f}s "
              f"{msf.metrics.simulated_time_s:>9.2f}s "
              f"{'yes' if identical else 'NO':>18}")
        assert identical, "recovery must not change the output"

    print("\nPreemptions cost time, never correctness: every stage replays "
          "from durable inputs.")


if __name__ == "__main__":
    main()
