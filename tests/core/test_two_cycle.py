"""Tests for the AMPC 1-vs-2-Cycle algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampc import ClusterConfig
from repro.core import ampc_one_vs_two_cycle
from repro.graph import Graph, cycle_graph, disjoint_union, path_graph, two_cycles

CONFIG = ClusterConfig(num_machines=4)


class TestOneVsTwoCycle:
    def test_single_cycle(self):
        graph = cycle_graph(300, shuffle_ids=True, seed=1)
        result = ampc_one_vs_two_cycle(graph, seed=1, config=CONFIG)
        assert result.num_cycles == 1

    def test_two_cycles(self):
        graph = two_cycles(150, shuffle_ids=True, seed=2)
        result = ampc_one_vs_two_cycle(graph, seed=2, config=CONFIG)
        assert result.num_cycles == 2

    def test_many_cycles(self):
        graph = disjoint_union([cycle_graph(40) for _ in range(5)])
        result = ampc_one_vs_two_cycle(graph, seed=3, config=CONFIG)
        assert result.num_cycles == 5

    def test_single_shuffle(self):
        """Section 5.6: the AMPC algorithm uses a single shuffle."""
        graph = two_cycles(100, shuffle_ids=True, seed=4)
        result = ampc_one_vs_two_cycle(graph, seed=4, config=CONFIG)
        assert result.metrics.shuffles == 1

    def test_rejects_non_cycle_graph(self):
        with pytest.raises(ValueError):
            ampc_one_vs_two_cycle(path_graph(10), config=CONFIG)
        with pytest.raises(ValueError):
            ampc_one_vs_two_cycle(Graph(0), config=CONFIG)

    def test_small_cycle(self):
        result = ampc_one_vs_two_cycle(cycle_graph(3), seed=0, config=CONFIG)
        assert result.num_cycles == 1

    def test_explicit_probability_retries_until_covered(self):
        # A hopeless initial probability must be escalated, not wrong.
        graph = two_cycles(64, shuffle_ids=True, seed=5)
        result = ampc_one_vs_two_cycle(graph, seed=5, config=CONFIG,
                                       sample_probability=1e-6)
        assert result.num_cycles == 2
        assert result.attempts > 1

    def test_deterministic(self):
        graph = two_cycles(80, shuffle_ids=True, seed=6)
        a = ampc_one_vs_two_cycle(graph, seed=6, config=CONFIG)
        b = ampc_one_vs_two_cycle(graph, seed=6, config=CONFIG)
        assert a.num_cycles == b.num_cycles
        assert a.num_sampled == b.num_sampled

    def test_kv_reads_linear(self):
        graph = cycle_graph(400, shuffle_ids=True, seed=7)
        result = ampc_one_vs_two_cycle(graph, seed=7, config=CONFIG)
        # Both-direction walks touch each edge twice; allow retry slack.
        assert result.metrics.kv_reads <= 5 * graph.num_vertices


@given(
    st.integers(min_value=3, max_value=60),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=200),
)
@settings(max_examples=15, deadline=None)
def test_counts_cycles_property(k, count, seed):
    graph = disjoint_union([cycle_graph(k + i) for i in range(count)])
    result = ampc_one_vs_two_cycle(graph, seed=seed,
                                   config=ClusterConfig(num_machines=3))
    assert result.num_cycles == count
