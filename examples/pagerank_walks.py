"""Monte-Carlo PageRank over the AMPC key-value store, via the Session API.

Section 5.7 of the paper points at random-walk problems (PageRank,
Personalized PageRank, embeddings) as the natural next AMPC applications
"since it efficiently supports random access".  This example implements
that suggestion: every walk steps through adaptive DHT lookups, so the
whole estimator runs in **two AMPC rounds with a single shuffle**,
regardless of walk length — the same workload in MPC would pay one round
per walk step.

It also shows the serving angle the Session API adds: ``pagerank`` and
``random-walks`` share one DHT-resident adjacency, so the second query on
the same graph performs **zero** shuffles.

Run with::

    python examples/pagerank_walks.py
"""

from repro import ClusterConfig, Session
from repro.core import pagerank_power_iteration
from repro.graph import barabasi_albert_graph


def main():
    graph = barabasi_albert_graph(400, attach=3, seed=13)
    session = Session(ClusterConfig(num_machines=10))
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"max degree {graph.max_degree()}")

    run = session.run("pagerank", graph, seed=13, walks_per_vertex=64)
    result = run.output
    exact = pagerank_power_iteration(graph)

    print(f"\nAMPC Monte-Carlo PageRank: rounds = {run.rounds}, "
          f"shuffles = {run.metrics['shuffles']}, "
          f"walk steps = {result.total_steps:,}, "
          f"KV reads = {run.metrics['kv_reads']:,}")
    l1 = sum(abs(a - b) for a, b in zip(exact, result.scores))
    print(f"L1 error vs power iteration: {l1:.4f}")

    top_mc = sorted(range(graph.num_vertices),
                    key=lambda v: -result.scores[v])[:5]
    top_exact = sorted(range(graph.num_vertices),
                       key=lambda v: -exact[v])[:5]
    print(f"\ntop-5 by Monte-Carlo: {top_mc}")
    print(f"top-5 by power iter:  {top_exact}")
    overlap = len(set(top_mc) & set(top_exact))
    print(f"overlap: {overlap}/5")
    assert overlap >= 3, "the hubs should be unmistakable"

    # An MPC implementation pays a round per walk step: the expected walk
    # length is damping/(1-damping) ~ 5.7, each step a shuffle.
    expected_steps = result.total_steps / (64 * graph.num_vertices)
    print(f"\nMPC equivalent: ~{expected_steps:.1f} shuffles per walk wave "
          f"vs AMPC's single shuffle total.")

    # The adjacency written for pagerank is seed- and algorithm-agnostic:
    # fixed-length random walks reuse it without any new shuffle.
    walks = session.run("random-walks", graph, seed=99,
                        walks_per_vertex=2, walk_length=8)
    assert walks.preprocessing_reused
    assert walks.metrics["shuffles"] == 0
    print(f"\nfollow-up query: {walks.description}")
    print(f"shuffles = {walks.metrics['shuffles']} — the adjacency was "
          f"already DHT-resident (saved {walks.shuffles_saved} shuffle)")


if __name__ == "__main__":
    main()
