"""CSR (compressed sparse row) adjacency: the flat columnar graph core.

A :class:`CSRAdjacency` is an immutable snapshot of a graph's adjacency as
three flat columns — ``indptr`` (n+1 row offsets), ``indices`` (neighbor
ids, sorted ascending within each row, both directions of every undirected
edge), and optionally ``weights`` aligned with ``indices``.  Flat columns
are what the vectorized prepare stages and the batch DHT record layout
consume: one lexsort over a column replaces tens of thousands of
per-vertex Python sorts.

Backends: numpy ``int64``/``float64`` arrays when numpy is importable (and
``REPRO_PURE_PYTHON`` is unset), else stdlib ``array('q')``/``array('d')``
— same values, same ``tobytes()`` signature, so fingerprints agree across
modes on one platform.

:class:`CSRGraph` is a read-only graph over a CSR snapshot, quacking like
:class:`~repro.graph.graph.Graph` for every read path the algorithms use.
It exists for the millions-of-vertices serving scenario: built directly
from edge columns (no per-vertex ``set`` objects, ~30 bytes/edge instead
of ~250), fingerprinted from the raw buffers, never journaled.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.ampc.vector import HAVE_NUMPY, np

__all__ = ["CSRAdjacency", "CSRGraph"]


def _int_column(values) -> "array":
    if HAVE_NUMPY:
        return np.asarray(values, dtype=np.int64)
    if isinstance(values, array) and values.typecode == "q":
        return values
    return array("q", values)


def _float_column(values) -> "array":
    if HAVE_NUMPY:
        return np.asarray(values, dtype=np.float64)
    if isinstance(values, array) and values.typecode == "d":
        return values
    return array("d", values)


class CSRAdjacency:
    """Immutable flat-column adjacency snapshot (see module docstring)."""

    __slots__ = ("num_vertices", "indptr", "indices", "weights")

    def __init__(self, indptr, indices, weights=None):
        self.indptr = _int_column(indptr)
        self.indices = _int_column(indices)
        self.weights = None if weights is None else _float_column(weights)
        self.num_vertices = len(self.indptr) - 1
        if self.weights is not None and \
                len(self.weights) != len(self.indices):
            raise ValueError("weights must align with indices")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_adjacency(cls, adj: Sequence) -> "CSRAdjacency":
        """Snapshot a ``Graph._adj`` (sets) or ``WeightedGraph._adj`` (dicts).

        Rows come out sorted by neighbor id, matching ``neighbors()``.
        """
        weighted = bool(adj) and isinstance(adj[0], dict)
        indptr = array("q", [0])
        indices = array("q")
        weights = array("d") if weighted else None
        total = 0
        if weighted:
            for row in adj:
                items = sorted(row.items())
                total += len(items)
                indptr.append(total)
                for neighbor, weight in items:
                    indices.append(neighbor)
                    weights.append(weight)
        else:
            for row in adj:
                total += len(row)
                indptr.append(total)
                indices.extend(sorted(row))
        return cls(indptr, indices, weights)

    @classmethod
    def from_edge_arrays(cls, num_vertices: int, us, vs,
                         ws=None) -> "CSRAdjacency":
        """Build from columns of canonical undirected edges.

        ``us``/``vs`` (and optionally ``ws``) are parallel columns, one
        entry per undirected edge, endpoints already deduplicated and
        self-loop free.  This is the bulk constructor the million-vertex
        generator uses: O(m) array work, no per-vertex containers.
        """
        if HAVE_NUMPY:
            us = np.asarray(us, dtype=np.int64)
            vs = np.asarray(vs, dtype=np.int64)
            src = np.concatenate([us, vs])
            dst = np.concatenate([vs, us])
            order = np.lexsort((dst, src))
            indices = dst[order]
            counts = np.bincount(src, minlength=num_vertices)
            indptr = np.zeros(num_vertices + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            weights = None
            if ws is not None:
                ws = np.asarray(ws, dtype=np.float64)
                weights = np.concatenate([ws, ws])[order]
            return cls(indptr, indices, weights)
        rows: List[list] = [[] for _ in range(num_vertices)]
        if ws is None:
            for u, v in zip(us, vs):
                rows[u].append(v)
                rows[v].append(u)
            for row in rows:
                row.sort()
            indptr = array("q", [0])
            indices = array("q")
            total = 0
            for row in rows:
                total += len(row)
                indptr.append(total)
                indices.extend(row)
            return cls(indptr, indices, None)
        for u, v, w in zip(us, vs, ws):
            rows[u].append((v, w))
            rows[v].append((u, w))
        indptr = array("q", [0])
        indices = array("q")
        weights = array("d")
        total = 0
        for row in rows:
            row.sort()
            total += len(row)
            indptr.append(total)
            for neighbor, weight in row:
                indices.append(neighbor)
                weights.append(weight)
        return cls(indptr, indices, weights)

    # -- reads -------------------------------------------------------------

    @property
    def num_directed_edges(self) -> int:
        return len(self.indices)

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def max_degree(self) -> int:
        if self.num_vertices == 0:
            return 0
        if HAVE_NUMPY:
            return int(np.diff(self.indptr).max())
        return max(self.indptr[v + 1] - self.indptr[v]
                   for v in range(self.num_vertices))

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbor tuple of ``v`` (plain Python ints)."""
        start, stop = self.indptr[v], self.indptr[v + 1]
        row = self.indices[start:stop]
        if HAVE_NUMPY:
            return tuple(row.tolist())
        return tuple(row)

    def neighbor_weights(self, v: int) -> List[Tuple[int, float]]:
        """``(neighbor, weight)`` pairs of ``v`` sorted by neighbor id."""
        if self.weights is None:
            raise ValueError("unweighted CSR has no weights")
        start, stop = self.indptr[v], self.indptr[v + 1]
        row = self.indices[start:stop]
        wrow = self.weights[start:stop]
        if HAVE_NUMPY:
            return list(zip(row.tolist(), wrow.tolist()))
        return list(zip(row, wrow))

    def has_edge(self, u: int, v: int) -> bool:
        start, stop = self.indptr[u], self.indptr[u + 1]
        row = self.indices
        # binary search within the sorted row
        lo, hi = int(start), int(stop)
        while lo < hi:
            mid = (lo + hi) // 2
            value = row[mid]
            if value < v:
                lo = mid + 1
            elif value > v:
                hi = mid
            else:
                return True
        return False

    def signature_bytes(self) -> bytes:
        """Raw column bytes, the content-stable fingerprint payload."""
        parts = [_as_bytes(self.indptr), _as_bytes(self.indices)]
        if self.weights is not None:
            parts.append(_as_bytes(self.weights))
        return b"".join(parts)


def _as_bytes(column) -> bytes:
    return column.tobytes()


class CSRGraph:
    """A read-only unweighted graph over a CSR snapshot.

    Implements the read API the algorithms and the Session use
    (``num_vertices``/``num_edges``/``vertices``/``neighbors``/``degree``/
    ``max_degree``/``has_edge``/``edges``/``csr``).  Mutation is out of
    scope: ``content_version`` is fixed and ``delta_since`` always reports
    "history lost", so incremental consumers fall back to a full rebuild.
    """

    def __init__(self, csr: CSRAdjacency):
        if csr.weights is not None:
            raise ValueError("CSRGraph is unweighted; got a weighted CSR")
        self._csr = csr
        self.content_version = 0

    @classmethod
    def from_edge_arrays(cls, num_vertices: int, us, vs) -> "CSRGraph":
        return cls(CSRAdjacency.from_edge_arrays(num_vertices, us, vs))

    @classmethod
    def from_graph(cls, graph) -> "CSRGraph":
        return cls(graph.csr())

    def csr(self) -> CSRAdjacency:
        return self._csr

    @property
    def num_vertices(self) -> int:
        return self._csr.num_vertices

    @property
    def num_edges(self) -> int:
        return self._csr.num_edges

    def vertices(self) -> range:
        return range(self._csr.num_vertices)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        self._check_vertex(v)
        return self._csr.neighbors(v)

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return self._csr.degree(v)

    def max_degree(self) -> int:
        return self._csr.max_degree()

    def has_edge(self, u: int, v: int) -> bool:
        if not (0 <= u < self._csr.num_vertices):
            return False
        return self._csr.has_edge(u, v)

    def edges(self) -> Iterator[Tuple[int, int]]:
        indptr, indices = self._csr.indptr, self._csr.indices
        for u in range(self._csr.num_vertices):
            for position in range(indptr[u], indptr[u + 1]):
                v = int(indices[position])
                if u < v:
                    yield (u, v)

    # -- journal protocol: immutable, so history is always "lost" ----------

    @property
    def journal_limit(self) -> int:
        return 0

    @property
    def journal_floor(self) -> int:
        return 0

    def delta_since(self, version: Optional[int]):
        return None

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self._csr.num_vertices):
            raise IndexError(
                f"vertex {v} out of range [0, {self._csr.num_vertices})")
