"""Single-machine reference algorithms.

These serve three roles in the reproduction:

1. Ground truth in tests (the distributed algorithms must agree with them).
2. The "in-memory fallback" that both the paper's MPC baselines and its AMPC
   MSF implementation invoke once an instance fits on one machine
   (Sections 5.3-5.5 all describe such thresholds).
3. Building blocks of the KKT reduction (Algorithm 3 computes an MSF of a
   sampled subgraph).
"""

from repro.sequential.union_find import UnionFind
from repro.sequential.mst import kruskal_msf, msf_weight, prim_msf
from repro.sequential.greedy import (
    greedy_matching,
    greedy_mis,
    random_edge_ranks,
    random_vertex_ranks,
)
from repro.sequential.validate import (
    is_forest,
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_spanning_forest,
    matching_weight,
)

__all__ = [
    "UnionFind",
    "kruskal_msf",
    "msf_weight",
    "prim_msf",
    "greedy_matching",
    "greedy_mis",
    "random_edge_ranks",
    "random_vertex_ranks",
    "is_forest",
    "is_independent_set",
    "is_matching",
    "is_maximal_independent_set",
    "is_maximal_matching",
    "is_spanning_forest",
    "matching_weight",
]
