"""Process-parallel serving: a GraphService across N worker processes.

:class:`~repro.serve.service.GraphService` runs every query under one
Python GIL — fine for I/O-shaped work, but the simulator is pure Python,
so concurrent throughput saturates at one core.  This module lifts that
limit the way the paper's production deployment does (many workers over a
shared DHT): :class:`ProcessGraphService` owns **N worker processes, each
with a private** :class:`~repro.api.session.Session`, behind the exact
:class:`~repro.serve.service.ServiceBase` contract the thread service and
the JSON-lines protocol already speak.

Design:

* **Fingerprint-affinity routing.**  Queries are routed by the graph's
  content fingerprint (:mod:`repro.api.fingerprint`): all queries for the
  same graph go to the same worker, so that worker's preprocessing cache
  serves every repeat — mirroring the per-shard ownership of the MPC
  connectivity systems.  Affinity is assigned on first sight to the
  least-loaded worker.
* **Ship once, reference forever.**  A graph crosses the process boundary
  at most once per worker: the first query pickles it into the ``run``
  message, the worker registers it under its fingerprint, and every later
  message carries only the fingerprint.
* **Hot-queue rebalancing.**  When the affinity worker's run queue is
  ``spill_threshold`` deeper than the least-loaded worker's, the query
  spills over: it is routed to the least-loaded worker (shipping the
  graph if unseen — the spill-over **re-prepare**) and the affinity moves
  there, so subsequent queries follow the now-warm cache instead of
  piling onto the hot worker.
* **Coherent stats.**  Each worker ships its
  :meth:`~repro.api.session.Session.stats_snapshot`;
  :meth:`ProcessGraphService.stats` merges them through
  :meth:`~repro.api.session.SessionStats.sum` into the same flat view
  ``GraphService.stats()`` reports, plus routing counters
  (``affinity_routed`` / ``rebalances`` / ``graphs_shipped``) and the
  per-worker breakdown.

Per-query outputs are byte-identical to sequential ``Session.run``: the
worker runs the same spec on the same graph with the same seed; only
wall-clock placement changes.

::

    with ProcessGraphService(ClusterConfig(num_machines=10),
                             processes=4) as service:
        service.load("web", graph)
        pending = [service.submit("mis", "web", seed=s) for s in range(8)]
        results = [p.result() for p in pending]
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import threading
import time
from dataclasses import fields
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.faults import FaultPlan
from repro.api import registry
from repro.api.fingerprint import FingerprintMemo, graph_fingerprint
from repro.api.result import RunResult
from repro.api.session import GraphHandle, Session, SessionStats
from repro.distdht.backend import create_backend
from repro.distdht.backing import fetch
from repro.graph.generators import degree_weighted
from repro.graph.graph import WeightedGraph
from repro.serve.admission import (AdmissionController, OverloadedError,
                                   PeakHoldLoadEstimator,
                                   estimate_query_cost)
from repro.serve.pool import (DeadlineExceededError, PendingResult,
                              ServiceClosedError, WorkerPool)
from repro.serve.service import ServiceBase, derived_weighted_name

#: SessionStats field names, for flattening per-worker snapshots
_SESSION_STAT_FIELDS = tuple(field.name for field in fields(SessionStats))

_BLOB_NS_COUNTER = itertools.count()


class _BlobRef:
    """A shared-store locator standing in for a pickled graph.

    On a real backend (``shm``/``socket``) the dispatcher writes each
    graph's pickle into the shared backing store **once** and run
    messages carry this tiny reference instead of the payload: ship-once
    becomes write-once, and N workers (including respawned ones) resolve
    the same physical bytes via :func:`repro.distdht.backing.fetch` —
    with replica failover where the backend has replicas.
    """

    __slots__ = ("locator",)

    def __init__(self, locator: Any):
        self.locator = locator

    def __getstate__(self):
        return self.locator

    def __setstate__(self, state):
        self.locator = state


class WorkerDiedError(ServiceClosedError):
    """A worker process exited while requests were outstanding."""


# ---------------------------------------------------------------------------
# Worker process side


def _stats_payload(session: Session, pinned: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "stats": session.stats_snapshot(),
        "cached_preprocessings": session.cached_preprocessings,
        "cache_bytes": session.cache_bytes,
        "graphs_loaded": len(pinned),
        "pid": os.getpid(),
    }


def _send_error(conn, request_id: int, error: BaseException) -> None:
    """Ship an exception; fall back to a summary when it won't pickle."""
    try:
        conn.send(("err", request_id, error))
    except Exception:  # noqa: BLE001 - unpicklable exception payloads
        conn.send(("err", request_id,
                   RuntimeError(f"{type(error).__name__}: {error}")))


def _heartbeat_loop(conn, send_lock: threading.Lock,
                    stop: threading.Event, interval_s: float) -> None:
    """Worker-side liveness beacon: one tiny ``("hb", ...)`` message per
    interval, even while the main loop is deep in a long query (the GIL
    timeslices this thread through).  Silence therefore means the
    *process* is wedged — stopped, deadlocked, or stuck in C — which is
    exactly the signal the dispatcher's hung-worker detector keys on.
    """
    while not stop.wait(interval_s):
        try:
            with send_lock:
                conn.send(("hb", 0, None))
        except (OSError, ValueError, BrokenPipeError):
            return


def _worker_main(conn, index: int, config: Optional[ClusterConfig],
                 fault_plan: Optional[FaultPlan], strict_rounds: bool,
                 max_cache_bytes: Optional[int],
                 backend_spec: Tuple[str, Optional[List[Any]], int] = (
                     "sim", None, 1),
                 heartbeat_interval_s: float = 0.5) -> None:
    """One worker: a private Session answering run/stats messages.

    Graphs arrive at most once each — pickled into the message on the
    simulated backend, or as a :class:`_BlobRef` resolved out of the
    shared backing store on a real one — and are registered (and pinned)
    under their fingerprint; later ``run`` messages reference the
    fingerprint only.  The loop is strictly sequential — per-run metrics
    isolation inside a worker is the Session's own guarantee.  A side
    heartbeat thread beats every ``heartbeat_interval_s`` so the
    dispatcher can tell "busy" from "hung"; a ``run`` whose deadline
    already passed while queued in the pipe is answered with
    :class:`~repro.serve.pool.DeadlineExceededError` without executing.
    """
    backend, dht_nodes, replication = backend_spec
    session = Session(config, fault_plan=fault_plan,
                      strict_rounds=strict_rounds,
                      max_cache_bytes=max_cache_bytes,
                      backend=backend, dht_nodes=dht_nodes,
                      replication=replication)
    pinned: Dict[str, Any] = {}
    send_lock = threading.Lock()
    stop_beat = threading.Event()
    threading.Thread(target=_heartbeat_loop,
                     args=(conn, send_lock, stop_beat, heartbeat_interval_s),
                     name=f"repro-worker-hb-{index}", daemon=True).start()

    def send(message) -> None:
        with send_lock:
            conn.send(message)

    def send_error(request_id: int, error: BaseException) -> None:
        with send_lock:
            _send_error(conn, request_id, error)

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        if op == "close":
            break
        if op == "unload":
            _, fingerprint = message
            pinned.pop(fingerprint, None)
            session.unload(fingerprint)
            continue
        if op == "update":
            (_, request_id, old_fingerprint, new_fingerprint,
             insertions, deletions) = message
            try:
                # Apply the delta to the resident copy: the graph does NOT
                # cross the process boundary again.  The handle's
                # fingerprint chain-updates, and the next run on it
                # patches this session's cached artifacts through the
                # specs' update hooks.
                handle = session.handle(old_fingerprint)
                handle.apply_batch(insertions, deletions)
                if new_fingerprint != old_fingerprint:
                    session.load(new_fingerprint, handle)
                    session.unload(old_fingerprint)
                    graph = pinned.pop(old_fingerprint, None)
                    if graph is not None:
                        pinned[new_fingerprint] = graph
                send(("ok", request_id, handle.fingerprint))
            except BaseException as error:  # noqa: BLE001
                send_error(request_id, error)
            continue
        if op == "run":
            (_, request_id, algorithm, fingerprint, graph, seed,
             reuse, params, deadline_at) = message
            try:
                # Absorb a shipped graph even when the deadline has
                # passed: the dispatcher marked it shipped at submit, so
                # later runs arrive fingerprint-only — dropping the ship
                # here would orphan the fingerprint for good.
                if graph is not None and fingerprint not in pinned:
                    if isinstance(graph, _BlobRef):
                        # write-once fronting: resolve the shared bytes
                        # (replica failover inside fetch) — the pickle
                        # crossed no pipe and exists once per cluster
                        graph = pickle.loads(fetch(graph.locator))
                    pinned[fingerprint] = graph
                    session.load(fingerprint, graph)
                if (deadline_at is not None
                        and time.monotonic() >= deadline_at):
                    # expired while queued in the pipe: cancel the run
                    send_error(request_id, DeadlineExceededError(
                        f"deadline passed before {algorithm!r} started "
                        f"on worker {index}"))
                    continue
                result = session.run(algorithm, fingerprint, seed=seed,
                                     reuse_preprocessing=reuse, **params)
                send(("ok", request_id, result))
            except BaseException as error:  # noqa: BLE001 - report, not die
                send_error(request_id, error)
        elif op == "stats":
            _, request_id = message
            try:
                send(("ok", request_id, _stats_payload(session, pinned)))
            except BaseException as error:  # noqa: BLE001
                send_error(request_id, error)
        # unknown ops are ignored: a newer dispatcher must not kill an
        # older worker
    stop_beat.set()
    session.close()  # release shm segments / DHT connections


# ---------------------------------------------------------------------------
# Dispatcher side


class _Outstanding:
    """One in-flight request: its future plus response post-processing."""

    __slots__ = ("pending", "graph_name", "on_done", "is_run")

    def __init__(self, pending: PendingResult, graph_name: Optional[str],
                 on_done: Optional[Callable[
                     [bool, Optional[BaseException]], None]],
                 is_run: bool):
        self.pending = pending
        self.graph_name = graph_name
        self.on_done = on_done
        self.is_run = is_run


class _WorkerClient:
    """Dispatcher-side handle for one worker process.

    Sends are serialized under ``send_lock`` — which also guards the
    ``shipped`` set, so the ship-the-graph-exactly-once decision is
    atomic with the send that carries it (two racing submits can never
    reorder a fingerprint-only run in front of the shipping run).  A
    dedicated reader thread resolves :class:`PendingResult` futures as
    responses arrive.
    """

    def __init__(self, index: int, ctx, config, fault_plan, strict_rounds,
                 max_cache_bytes, on_death=None,
                 backend_spec=("sim", None, 1),
                 heartbeat_interval_s: float = 0.5,
                 admission: Optional[AdmissionController] = None):
        self.index = index
        #: called (with this client) from the reader thread once the
        #: worker process is gone and its leftovers are failed — the
        #: dispatcher's respawn hook
        self.on_death = on_death
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, index, config, fault_plan, strict_rounds,
                  max_cache_bytes, backend_spec, heartbeat_interval_s),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.send_lock = threading.Lock()
        self.lock = threading.Lock()
        self.idle = threading.Condition(self.lock)
        self.pending: Dict[int, _Outstanding] = {}
        self.shipped: set = set()           # fingerprints resident remotely
        self.inflight_runs = 0              # routing load signal
        self.accepting = True
        self.alive = True
        self.last_stats: Optional[Dict[str, Any]] = None
        #: this worker's token-budget gate (None = admission off)
        self.admission = admission
        #: hung-worker signal: flipped by the reader on *any* inbound
        #: message (heartbeats included); the monitor clears it each tick
        #: and counts consecutive silent ticks in ``heartbeat_misses``
        self.beat_seen = False
        self.heartbeat_misses = 0
        self._next_id = 0
        self.reader = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"repro-serve-reader-{index}")
        self.reader.start()

    # -- request side ------------------------------------------------------

    def _register(self, graph_name: Optional[str],
                  on_done: Optional[Callable[
                      [bool, Optional[BaseException]], None]],
                  is_run: bool) -> Tuple[int, PendingResult]:
        pending = PendingResult()
        with self.lock:
            # runs are refused once the client stops accepting; stats
            # requests stay allowed while the process is alive, so the
            # close path can capture a final snapshot after the drain
            if not self.alive or (is_run and not self.accepting):
                raise ServiceClosedError(
                    f"worker {self.index} is not accepting requests")
            self._next_id += 1
            request_id = self._next_id
            self.pending[request_id] = _Outstanding(
                pending, graph_name, on_done, is_run)
            if is_run:
                self.inflight_runs += 1
        return request_id, pending

    def _discard(self, request_id: int) -> None:
        with self.lock:
            outstanding = self.pending.pop(request_id, None)
            if outstanding is not None and outstanding.is_run:
                self.inflight_runs -= 1
            if not self.pending:
                self.idle.notify_all()

    def submit_run(self, algorithm: str, fingerprint: str, graph: Any,
                   seed: int, reuse: bool, params: Dict[str, Any],
                   graph_name: Optional[str],
                   on_done: Callable[[bool, Optional[BaseException]], None],
                   deadline_at: Optional[float] = None) -> PendingResult:
        """Route one query to this worker, shipping the graph if unseen.

        ``deadline_at`` (absolute ``time.monotonic()`` seconds) rides in
        the message; the worker answers expired-in-queue runs with
        ``DeadlineExceededError`` instead of executing them.
        """
        request_id, pending = self._register(graph_name, on_done,
                                             is_run=True)
        try:
            with self.send_lock:
                ship = fingerprint not in self.shipped
                self.conn.send(("run", request_id, algorithm, fingerprint,
                                graph if ship else None, seed, reuse,
                                dict(params), deadline_at))
                if ship:
                    self.shipped.add(fingerprint)
        except (OSError, BrokenPipeError) as error:
            self._discard(request_id)
            raise WorkerDiedError(
                f"worker {self.index} pipe is closed: {error}") from error
        except BaseException:
            # e.g. an unpicklable graph/param: surface the real error to
            # the submitter, but never leak the registered pending entry
            # (a leak would inflate inflight_runs and hang close's drain)
            self._discard(request_id)
            raise
        return pending

    def submit_update(self, old_fingerprint: str, new_fingerprint: str,
                      insertions, deletions) -> PendingResult:
        """Ship an edge delta by fingerprint pair (never the whole graph).

        Under the send lock the resident-set bookkeeping moves
        ``old -> new`` atomically with the send, so a racing submit for
        the new fingerprint pipelines a fingerprint-only run *behind*
        this update instead of re-pickling the graph.
        """
        request_id, pending = self._register(None, None, is_run=True)
        try:
            with self.send_lock:
                self.conn.send(("update", request_id, old_fingerprint,
                                new_fingerprint, list(insertions),
                                list(deletions)))
                self.shipped.discard(old_fingerprint)
                self.shipped.add(new_fingerprint)
        except (OSError, BrokenPipeError) as error:
            self._discard(request_id)
            raise WorkerDiedError(
                f"worker {self.index} pipe is closed: {error}") from error
        except BaseException:
            self._discard(request_id)
            raise
        return pending

    def request_stats(self) -> PendingResult:
        request_id, pending = self._register(None, None, is_run=False)
        try:
            with self.send_lock:
                self.conn.send(("stats", request_id))
        except (OSError, BrokenPipeError) as error:
            self._discard(request_id)
            raise WorkerDiedError(
                f"worker {self.index} pipe is closed: {error}") from error
        except BaseException:
            self._discard(request_id)
            raise
        return pending

    def send_unload(self, fingerprint: str) -> None:
        try:
            with self.send_lock:
                self.shipped.discard(fingerprint)
                self.conn.send(("unload", fingerprint))
        except (OSError, ValueError, BrokenPipeError):
            pass  # a dead worker has nothing to unload

    # -- response side -----------------------------------------------------

    def _read_loop(self) -> None:
        while True:
            try:
                message = self.conn.recv()
            except (EOFError, OSError):
                break
            kind, request_id, payload = message
            self.beat_seen = True
            if kind == "hb":  # liveness beacon, no request attached
                continue
            with self.lock:
                outstanding = self.pending.pop(request_id, None)
                if outstanding is not None and outstanding.is_run:
                    self.inflight_runs -= 1
                if not self.pending:
                    self.idle.notify_all()
            if outstanding is None:
                continue
            ok = kind == "ok"
            if outstanding.on_done is not None:
                try:
                    outstanding.on_done(ok, None if ok else payload)
                except Exception:  # noqa: BLE001 - reader must not die
                    pass
            if ok:
                if isinstance(payload, RunResult):
                    # workers key graphs by fingerprint; restore the
                    # caller-facing registration name
                    payload.graph_name = outstanding.graph_name
                outstanding.pending._resolve(payload)
            else:
                outstanding.pending._fail(payload)
        # worker gone: fail whatever is still outstanding
        with self.lock:
            self.alive = False
            self.accepting = False
            leftovers = list(self.pending.values())
            self.pending.clear()
            self.inflight_runs = 0
            self.idle.notify_all()
        error = WorkerDiedError(
            f"worker {self.index} (pid {self.process.pid}) exited with "
            "requests outstanding")
        # respawn FIRST so a retry dispatched from a leftover's done-
        # callback can route to the replacement even in a 1-worker pool
        if self.on_death is not None:
            try:
                self.on_death(self)
            except Exception:  # noqa: BLE001 - the reader must not die
                pass
        for outstanding in leftovers:
            if outstanding.on_done is not None:
                try:
                    outstanding.on_done(False, error)
                except Exception:  # noqa: BLE001
                    pass
            outstanding.pending._fail(error)

    # -- lifecycle ---------------------------------------------------------

    def stop_accepting(self) -> None:
        with self.lock:
            self.accepting = False

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until no requests are outstanding; False on timeout."""
        with self.lock:
            return self.idle.wait_for(lambda: not self.pending, timeout)

    def shutdown(self, timeout: float = 10.0) -> None:
        """Send the close sentinel and reap the process."""
        try:
            with self.send_lock:
                self.conn.send(("close",))
        except (OSError, ValueError, BrokenPipeError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(5.0)
        try:
            self.conn.close()
        except OSError:
            pass
        self.reader.join(timeout)


class ProcessGraphService(ServiceBase):
    """A GraphService whose queries run on N worker processes.

    Same contract as :class:`~repro.serve.service.GraphService`
    (``load``/``submit``/``query``/``stats``/``close``, and the JSON-lines
    protocol drives it unchanged); the difference is **where** queries
    run: each worker process owns a private Session, so concurrent
    CPU-bound queries actually run in parallel instead of time-slicing
    one GIL.

    ``spill_threshold`` tunes the affinity/latency trade-off: a query
    leaves its graph's affinity worker only when that worker's run queue
    is at least this much deeper than the least-loaded worker's (the
    spill-over re-prepares the graph there, and affinity follows).
    """

    def __init__(self, config: Optional[ClusterConfig] = None, *,
                 processes: int = 2,
                 fault_plan: Optional[FaultPlan] = None,
                 strict_rounds: bool = False,
                 max_cache_bytes: Optional[int] = None,
                 spill_threshold: int = 4,
                 backend: str = "sim",
                 dht_nodes: Optional[List[Any]] = None,
                 replication: int = 1,
                 mp_context: Optional[str] = None,
                 max_inflight_cost: Optional[float] = None,
                 admission_queue_factor: float = 2.0,
                 admission_decay_s: float = 5.0,
                 default_deadline_s: Optional[float] = None,
                 autoscale_max: Optional[int] = None,
                 monitor_interval_s: float = 0.5,
                 hung_after_intervals: Optional[int] = 20,
                 scale_after_intervals: int = 4,
                 heartbeat_interval_s: float = 0.25,
                 retry_worker_death: bool = True):
        if processes < 1:
            raise ValueError("need at least one worker process")
        if spill_threshold < 1:
            raise ValueError("spill_threshold must be >= 1")
        if autoscale_max is not None and autoscale_max < processes:
            raise ValueError("autoscale_max must be >= processes")
        if not isinstance(backend, str):
            raise TypeError(
                "ProcessGraphService needs a backend spec string "
                "(workers construct their own stores); got "
                f"{type(backend).__name__}")
        ctx = multiprocessing.get_context(mp_context)
        #: spawn parameters, kept for worker respawn after a crash
        self._ctx = ctx
        self._config = config
        self._fault_plan = fault_plan
        self._strict_rounds = strict_rounds
        self._max_cache_bytes = max_cache_bytes
        self._spill_threshold = spill_threshold
        self.backend = backend
        self._backend_spec = (backend, list(dht_nodes) if dht_nodes else None,
                              replication)
        #: the dispatcher's shared store for write-once graph blobs (None
        #: on "sim", where graphs pickle into the pipe per worker).  On
        #: "shm" the workers attach the dispatcher's segments; on
        #: "socket" the blobs live on the DHT nodes with replication R.
        self._blob_store = create_backend(backend, nodes=dht_nodes,
                                          replication=replication)
        self._blob_ns = (
            f"blob{os.getpid():x}.{next(_BLOB_NS_COUNTER):x}|".encode("ascii"))
        #: fingerprint -> blob locator, for graphs published to the
        #: shared store; its length is the write-once "graphs_shipped"
        self._published: Dict[str, Any] = {}
        self._graphs_published = 0
        self._lock = threading.Lock()
        #: serializes update() end to end (graph mutation, affinity move,
        #: delta shipping) — see GraphService._update_lock
        self._update_lock = threading.Lock()
        self._closed = False
        self._workers_respawned = 0
        #: final stats payloads of workers that died and were replaced,
        #: so merged counters stay coherent across respawns (best-effort:
        #: only what the dead worker last reported)
        self._retired_stats: List[Dict[str, Any]] = []
        #: queries lacking an explicit deadline inherit this one (seconds)
        self.default_deadline_s = default_deadline_s
        #: admission: each worker carries its own token budget of
        #: ``max_inflight_cost`` priced simulated-seconds
        self._max_inflight_cost = max_inflight_cost
        self._admission_queue_factor = admission_queue_factor
        self._admission_decay_s = admission_decay_s
        self._heartbeat_interval_s = heartbeat_interval_s
        self._clients = [self._spawn(index) for index in range(processes)]
        self._handles: Dict[str, GraphHandle] = {}
        self._pinned: Dict[str, Any] = {}
        #: base name -> (base fingerprint, derived graph, derived
        #: fingerprint); the dispatcher-side degree-weighted cache
        self._derived: Dict[str, Tuple[str, Any, str]] = {}
        self._affinity: Dict[str, int] = {}
        self._fingerprints = FingerprintMemo()
        #: queries are idempotent (same spec, graph, seed -> same result),
        #: so a query lost to a worker crash is re-dispatched once to a
        #: surviving worker instead of surfacing WorkerDiedError
        self._retry_worker_death = bool(retry_worker_death)
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._queries_shed = 0
        self._queries_retried = 0
        self._deadline_exceeded = 0
        self._affinity_routed = 0
        self._rebalances = 0
        self._updates = 0
        #: control-plane thread pool: fans out per-worker stats gathering
        #: and close-time draining without serializing on slow workers
        self._control = WorkerPool(min(4, processes),
                                   name="repro-procpool-ctl")
        #: autoscaling + hung-worker monitor
        self._base_processes = processes
        self._autoscale_max = autoscale_max
        self._monitor_interval_s = monitor_interval_s
        self._hung_after_intervals = hung_after_intervals
        self._scale_after_intervals = max(1, scale_after_intervals)
        self._workers_scaled = 0
        self._workers_hung = 0
        self._grow_streak = 0
        #: peak-hold over total queued runs: shrink only once pressure
        #: has *stayed* off, so scale decisions don't flap
        self._depth_estimator = PeakHoldLoadEstimator(admission_decay_s)
        self._monitor_stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        if autoscale_max is not None or hung_after_intervals is not None:
            self._monitor = threading.Thread(
                target=self._monitor_loop, daemon=True,
                name="repro-procpool-monitor")
            self._monitor.start()

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self, index: int) -> _WorkerClient:
        admission = None
        if self._max_inflight_cost is not None:
            admission = AdmissionController(
                self._max_inflight_cost,
                queue_factor=self._admission_queue_factor,
                decay_half_life_s=self._admission_decay_s)
        return _WorkerClient(index, self._ctx, self._config,
                             self._fault_plan, self._strict_rounds,
                             self._max_cache_bytes,
                             on_death=self._on_worker_death,
                             backend_spec=self._backend_spec,
                             heartbeat_interval_s=self._heartbeat_interval_s,
                             admission=admission)

    # -- write-once blob publication ---------------------------------------

    def _blob_key(self, fingerprint: str) -> bytes:
        return self._blob_ns + fingerprint.encode("ascii")

    def _publish(self, fingerprint: str, graph: Any) -> _BlobRef:
        """The graph's shared-store locator, writing the pickle at most
        once per fingerprint — every worker (and every respawn) reads the
        same physical bytes."""
        with self._lock:
            locator = self._published.get(fingerprint)
        if locator is None:
            key = self._blob_key(fingerprint)
            self._blob_store.put(
                key, pickle.dumps(graph, pickle.HIGHEST_PROTOCOL))
            locator = self._blob_store.share(key)
            with self._lock:
                if fingerprint not in self._published:
                    self._published[fingerprint] = locator
                    self._graphs_published += 1
        return _BlobRef(locator)

    def _unpublish(self, fingerprint: str) -> None:
        with self._lock:
            locator = self._published.pop(fingerprint, None)
        if locator is not None:
            try:
                self._blob_store.delete(self._blob_key(fingerprint))
            except Exception:  # noqa: BLE001 - nodes may be unreachable
                pass

    def _on_worker_death(self, client: _WorkerClient) -> None:
        """Respawn a crashed worker in place (reader-thread callback).

        The replacement takes the dead worker's slot, so existing affinity
        assignments keep routing to the same index; its resident set
        starts empty, and the dispatcher re-ships each pinned graph lazily
        on the next query routed there (every submit carries the live
        graph object precisely for this).  The dead worker's last reported
        stats are retired into the merged view.
        """
        with self._lock:
            if (self._closed or client.index >= len(self._clients)
                    or self._clients[client.index] is not client):
                return  # already retired (close or scale-down)
            if client.last_stats is not None:
                self._retired_stats.append(client.last_stats)
            self._clients[client.index] = self._spawn(client.index)
            self._workers_respawned += 1
        try:
            client.conn.close()
        except OSError:
            pass

    # -- load monitor: hung-worker detection + autoscaling ------------------

    def _monitor_loop(self) -> None:
        """Periodic sweep: count heartbeat-silent ticks per busy worker
        (kill + respawn past the threshold) and grow/shrink the pool on
        sustained queue depth.  Runs until close() sets the stop event.
        """
        while not self._monitor_stop.wait(self._monitor_interval_s):
            with self._lock:
                if self._closed:
                    return
                clients = list(self._clients)
            if self._hung_after_intervals is not None:
                self._sweep_hung(clients)
            if self._autoscale_max is not None:
                self._autoscale(clients)

    def _sweep_hung(self, clients: List[_WorkerClient]) -> None:
        for client in clients:
            with client.lock:
                busy = bool(client.pending) and client.alive
            if not busy:
                client.heartbeat_misses = 0
                client.beat_seen = False
                continue
            if client.beat_seen:
                client.beat_seen = False
                client.heartbeat_misses = 0
                continue
            client.heartbeat_misses += 1
            if client.heartbeat_misses < self._hung_after_intervals:
                continue
            # No message of any kind for N intervals while requests are
            # outstanding: the process is wedged (its heartbeat thread
            # would beat through a long query).  SIGKILL it — the pipe
            # EOF then drives the exact same fail-leftovers + respawn
            # path as a crash.
            with self._lock:
                self._workers_hung += 1
            try:
                client.process.kill()
            except OSError:
                pass

    def _autoscale(self, clients: List[_WorkerClient]) -> None:
        loads = [c.inflight_runs for c in clients if c.alive]
        if not loads:
            return
        depth = sum(loads)
        held_depth = self._depth_estimator.observe(depth)
        if (min(loads) >= self._spill_threshold
                and len(clients) < self._autoscale_max):
            # every worker is backlogged deeper than spill can fix
            self._grow_streak += 1
            if self._grow_streak >= self._scale_after_intervals:
                self._grow_streak = 0
                self._scale_up()
            return
        self._grow_streak = 0
        if held_depth <= 0.5 and len(clients) > self._base_processes:
            # pressure has stayed off long enough for the peak-hold to
            # decay — retire the newest extra worker
            self._scale_down()

    def _scale_up(self) -> None:
        with self._lock:
            if self._closed or len(self._clients) >= self._autoscale_max:
                return
            self._clients.append(self._spawn(len(self._clients)))
            self._workers_scaled += 1

    def _scale_down(self) -> None:
        with self._lock:
            if self._closed or len(self._clients) <= self._base_processes:
                return
            client = self._clients.pop()
            self._workers_scaled += 1
            # drop affinities pointing at the retired slot; the next
            # query on those graphs re-homes to a surviving worker
            for fingerprint in [f for f, i in self._affinity.items()
                                if i >= len(self._clients)]:
                del self._affinity[fingerprint]
        client.stop_accepting()

        def retire(client=client):
            client.drain(60.0)
            try:
                payload = client.request_stats().result(10.0)
            except Exception:  # noqa: BLE001 - best-effort snapshot
                payload = client.last_stats
            with self._lock:
                if payload is not None:
                    self._retired_stats.append(payload)
            client.shutdown()

        try:
            self._control.submit(retire)
        except ServiceClosedError:
            client.shutdown(timeout=1.0)

    # -- graph registry ----------------------------------------------------

    @property
    def processes(self) -> int:
        return len(self._clients)

    def load(self, name: str, graph: Any, *, pin: bool = True) -> GraphHandle:
        """Register ``graph`` under ``name`` for queries by name.

        The graph is **not** shipped to any worker here — it crosses the
        process boundary on the first query routed to each worker that
        needs it (pickled once, then referenced by fingerprint).
        """
        handle = GraphHandle(name, graph)
        with self._lock:
            self._handles[name] = handle
            if pin:
                self._pinned[name] = graph
            else:
                self._pinned.pop(name, None)
        return handle

    def unload(self, name: str) -> None:
        with self._lock:
            handle = self._handles.pop(name, None)
            self._pinned.pop(name, None)
            derived = self._derived.pop(name, None)
            fingerprints = []
            if handle is not None:
                fingerprints.append(handle.fingerprint)
            if derived is not None:
                fingerprints.append(derived[2])
            for fingerprint in fingerprints:
                self._affinity.pop(fingerprint, None)
        for fingerprint in fingerprints:
            self._unpublish(fingerprint)
            for client in self._clients:
                if fingerprint in client.shipped:
                    client.send_unload(fingerprint)

    def graphs(self) -> List[str]:
        with self._lock:
            return sorted(self._handles)

    def update(self, name: str, insertions: Any = (),
               deletions: Any = ()) -> GraphHandle:
        """Apply an edge batch to a loaded graph (see ServiceBase.update).

        The dispatcher-side copy mutates and chain-updates its
        fingerprint; every worker already holding the graph receives the
        **delta by fingerprint pair** — O(batch) on the pipe instead of
        re-pickling the whole graph — applies it to its resident copy and
        patches its cached artifacts on the next query.  Workers that
        never saw the graph (or died and respawned) get the mutated graph
        shipped lazily as usual.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            handle = self._handles.get(name)
            known = ", ".join(sorted(self._handles)) or "(none)"
        if handle is None:
            raise KeyError(f"no graph loaded as {name!r}; loaded: {known}")
        insertions = [tuple(edge) for edge in insertions]
        deletions = [tuple(edge) for edge in deletions]
        with self._update_lock:
            old_fingerprint = handle.fingerprint
            handle.apply_batch(insertions, deletions)
            new_fingerprint = handle.fingerprint
            if new_fingerprint == old_fingerprint:
                return handle
            with self._lock:
                self._updates += 1
                derived = self._derived.pop(name, None)
                index = self._affinity.pop(old_fingerprint, None)
                if index is not None:
                    self._affinity[new_fingerprint] = index
                if derived is not None:
                    self._affinity.pop(derived[2], None)
                clients = list(self._clients)
            # stale shared blobs: the old-content pickle (and any
            # degree-weighted derivation of it) must not be resolvable
            # after the mutation — lazy re-ships publish the new content
            self._unpublish(old_fingerprint)
            if derived is not None:
                self._unpublish(derived[2])
                for client in clients:
                    if derived[2] in client.shipped:
                        client.send_unload(derived[2])
            acknowledgements = []
            for client in clients:
                if client.alive and old_fingerprint in client.shipped:
                    try:
                        acknowledgements.append((client, client.submit_update(
                            old_fingerprint, new_fingerprint,
                            insertions, deletions)))
                    except (WorkerDiedError, ServiceClosedError):
                        pass  # the respawned worker re-ships lazily
            for client, acknowledgement in acknowledgements:
                try:
                    acknowledgement.result(60.0)
                except (WorkerDiedError, ServiceClosedError):
                    pass  # failover/respawn re-ships lazily
                except BaseException:
                    # the worker could not apply the delta (or timed
                    # out): its resident copy is unknown, so stop
                    # claiming it holds the new content — the next query
                    # routed there re-ships the full mutated graph
                    with client.send_lock:
                        client.shipped.discard(new_fingerprint)
            return handle

    # -- queries -----------------------------------------------------------

    def submit(self, algorithm: str, graph: Any, *, seed: int = 0,
               reuse_preprocessing: bool = True,
               deadline: Optional[float] = None,
               retry_worker_death: Optional[bool] = None,
               **params: Any) -> PendingResult:
        """Enqueue one query; returns a :class:`PendingResult`.

        Unknown algorithms, undeclared parameters and unknown graph names
        are rejected here, in the submitting thread (and process), so the
        error surfaces immediately.  When admission control is on
        (``max_inflight_cost``), the query is priced against the routed
        worker's token budget first and may be shed with
        :class:`~repro.serve.admission.OverloadedError`.  ``deadline``
        is relative seconds; a query still queued when it passes is
        cancelled worker-side before execution.

        Queries are idempotent (same spec, graph and seed produce the
        same result), so one lost to a worker crash is transparently
        re-dispatched once to a surviving worker instead of failing with
        :class:`WorkerDiedError`.  ``retry_worker_death`` overrides the
        service-wide default per query (updates are never retried — they
        mutate worker state).
        """
        spec = registry.get(algorithm)
        merged = Session._merge_params(spec, params)
        del merged  # validation only; the worker Session re-merges defaults
        obj, fingerprint, name = self._resolve(graph)
        obj, fingerprint, name = self._adapt_weighted(
            spec, obj, fingerprint, name)
        if deadline is None:
            deadline = self.default_deadline_s
        deadline_at = (time.monotonic() + deadline
                       if deadline is not None else None)
        retries = (self._retry_worker_death if retry_worker_death is None
                   else bool(retry_worker_death))
        outer = PendingResult(deadline=deadline_at)
        self._dispatch_query(spec, obj, fingerprint, name, seed,
                             reuse_preprocessing, params, deadline_at,
                             outer, attempts_left=1 if retries else 0,
                             first=True)
        return outer

    def _dispatch_query(self, spec, obj: Any, fingerprint: str,
                        name: Optional[str], seed: int, reuse: bool,
                        params: Dict[str, Any],
                        deadline_at: Optional[float],
                        outer: PendingResult, attempts_left: int,
                        first: bool) -> None:
        """One delivery attempt: route, admit, publish, send.

        The caller-facing ``outer`` pending resolves from the attempt's
        done-callback; a :class:`WorkerDiedError` with attempts left
        re-enters here (routing picks a surviving — or respawned —
        worker) instead of resolving.  On the first attempt errors
        raise synchronously, exactly as submit always did; on re-
        dispatch they fail ``outer``.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            client = self._route(fingerprint)
        price = None
        if client.admission is not None:
            price = estimate_query_cost(
                spec,
                getattr(obj, "num_vertices", 0),
                getattr(obj, "num_edges", 0),
                # cached-state proxy: once the graph is resident on the
                # worker, repeat queries ride its warm artifact cache
                cached=fingerprint in client.shipped,
                config=self._config)
            decision, retry_after = client.admission.try_acquire(price)
            if decision == "shed":
                with self._lock:
                    self._queries_shed += 1
                raise OverloadedError(
                    f"worker {client.index} overloaded, shed "
                    f"{spec.name!r} (priced {price:.3f}s); "
                    f"retry in {retry_after}s",
                    retry_after_s=retry_after)
        if first:
            with self._lock:
                self._submitted += 1
        ship = obj
        if self._blob_store is not None:
            # ship-once becomes write-once: the message carries a tiny
            # locator; the pickle exists once in the shared store no
            # matter how many workers (or respawns or retries) resolve it
            ship = self._publish(fingerprint, obj)

        def forward(inner: PendingResult, client=client,
                    price=price) -> None:
            if price is not None and client.admission is not None:
                client.admission.release(price)
            error = inner.error
            if isinstance(error, WorkerDiedError) and attempts_left > 0:
                with self._lock:
                    retryable = not self._closed
                    if retryable:
                        self._queries_retried += 1
                if retryable:
                    try:
                        self._dispatch_query(spec, obj, fingerprint, name,
                                             seed, reuse, params,
                                             deadline_at, outer,
                                             attempts_left - 1,
                                             first=False)
                        return
                    except BaseException as retry_error:  # noqa: BLE001
                        error = retry_error
            self._account_outcome(error)
            if error is None:
                outer._resolve(inner._value)
            else:
                outer._fail(error)

        try:
            inner = client.submit_run(spec.name, fingerprint, ship, seed,
                                      reuse, params, name, None,
                                      deadline_at=deadline_at)
        except BaseException as error:
            if price is not None and client.admission is not None:
                client.admission.release(price)
            if isinstance(error, WorkerDiedError) and attempts_left > 0:
                with self._lock:
                    retryable = not self._closed
                    if retryable:
                        self._queries_retried += 1
                if retryable:
                    # _submitted was already counted above; the retry is
                    # the same query, not a new one
                    self._dispatch_query(spec, obj, fingerprint, name,
                                         seed, reuse, params, deadline_at,
                                         outer, attempts_left - 1,
                                         first=False)
                    return
            raise
        inner.add_done_callback(forward)

    def _account_outcome(self, error: Optional[BaseException]) -> None:
        with self._lock:
            if error is None:
                self._completed += 1
            else:
                self._failed += 1
                if isinstance(error, DeadlineExceededError):
                    self._deadline_exceeded += 1

    def _route(self, fingerprint: str) -> _WorkerClient:
        """Pick the worker for one query.  Caller holds the lock.

        Affinity first: the fingerprint's assigned worker, so its
        preprocessing cache hits.  A new fingerprint is assigned to the
        least-loaded worker.  When the affinity worker's run queue is
        ``spill_threshold`` deeper than the least-loaded worker's, the
        query (and the affinity) moves there instead.
        """
        alive = [c for c in self._clients if c.alive and c.accepting]
        if not alive:
            raise ServiceClosedError("all worker processes have exited")
        least = min(alive, key=lambda c: (c.inflight_runs, c.index))
        index = self._affinity.get(fingerprint)
        # scale-down may have retired the affinity index entirely
        home = (self._clients[index]
                if index is not None and index < len(self._clients)
                and self._clients[index] in alive
                else None)
        if home is None:
            self._affinity[fingerprint] = least.index
            return least
        if (home is not least
                and home.inflight_runs - least.inflight_runs
                >= self._spill_threshold):
            self._affinity[fingerprint] = least.index
            self._rebalances += 1
            return least
        self._affinity_routed += 1
        return home

    # -- graph resolution --------------------------------------------------

    def _resolve(self, graph: Any) -> Tuple[Any, str, Optional[str]]:
        """-> (graph object, content fingerprint, registered name or None)."""
        if isinstance(graph, str):
            with self._lock:
                handle = self._handles.get(graph)
                known = ", ".join(sorted(self._handles)) or "(none)"
            if handle is None:
                raise KeyError(
                    f"no graph loaded as {graph!r}; loaded: {known}")
            graph = handle
        if isinstance(graph, GraphHandle):
            obj, fingerprint = graph.resolve()
            return obj, fingerprint, graph.name
        return graph, self._fingerprints.fingerprint(graph), None

    def _adapt_weighted(self, spec, obj: Any, fingerprint: str,
                        name: Optional[str]
                        ) -> Tuple[Any, str, Optional[str]]:
        """Weighted algorithms on unweighted graphs get the paper's
        deg(u)+deg(v) weights, derived dispatcher-side once per base
        fingerprint and shipped like any other graph."""
        if spec.input_kind != "weighted" or obj is None:
            return obj, fingerprint, name
        if isinstance(obj, WeightedGraph):
            return obj, fingerprint, name
        if name is None:
            derived = degree_weighted(obj)
            return derived, graph_fingerprint(derived), None
        with self._lock:
            cached = self._derived.get(name)
            if cached is not None and cached[0] == fingerprint:
                return cached[1], cached[2], derived_weighted_name(name)
        derived = degree_weighted(obj)
        derived_fingerprint = graph_fingerprint(derived)
        with self._lock:
            self._derived[name] = (fingerprint, derived,
                                   derived_fingerprint)
        return derived, derived_fingerprint, derived_weighted_name(name)

    # -- accounting / lifecycle --------------------------------------------

    def worker_stats(self, timeout: Optional[float] = 60.0
                     ) -> List[Dict[str, Any]]:
        """Per-worker stats, index-ordered: SessionStats fields flat plus
        cache gauges.  Degrades gracefully: a hung, dead, or erroring
        worker contributes its last known snapshot with ``stale: True``
        instead of losing the healthy workers' numbers — one sick worker
        must never take down the observability of the rest.
        """

        def fetch(client: _WorkerClient):
            fresh = False
            try:
                payload = client.request_stats().result(timeout)
                fresh = True
            except Exception:  # noqa: BLE001 - hung/dead/error payload:
                payload = client.last_stats  # serve the stale snapshot
            else:
                client.last_stats = payload
            return client.index, payload, fresh

        clients = list(self._clients)
        rows: Dict[int, Tuple[Optional[Dict[str, Any]], bool]] = {}
        try:
            for index, payload, fresh in self._control.map_unordered(
                    fetch, clients):
                rows[index] = (payload, fresh)
        except ServiceClosedError:
            # the control pool is closed (service already closed): fall
            # back to the serial path, which serves last known snapshots
            for client in clients:
                index, payload, fresh = fetch(client)
                rows[index] = (payload, fresh)
        snapshots = []
        for client in clients:
            payload, fresh = rows.get(client.index, (None, False))
            payload = payload or {
                "stats": SessionStats(), "cached_preprocessings": 0,
                "cache_bytes": 0, "graphs_loaded": 0, "pid": None,
            }
            flat = dict(payload["stats"].to_dict())
            flat["worker"] = client.index
            flat["pid"] = payload.get("pid")
            flat["stale"] = not fresh
            flat["cached_preprocessings"] = payload["cached_preprocessings"]
            flat["cache_bytes"] = payload["cache_bytes"]
            flat["graphs_shipped"] = len(client.shipped)
            snapshots.append(flat)
        return snapshots

    def stats(self, timeout: Optional[float] = 60.0) -> Dict[str, Any]:
        """The merged view: GraphService's flat keys, routing counters,
        and the per-worker breakdown under ``per_worker``."""
        per_worker = self.worker_stats(timeout)
        merged = SessionStats.sum(
            SessionStats(**{f: row[f] for f in _SESSION_STAT_FIELDS})
            for row in per_worker)
        with self._lock:
            # replaced workers' last-reported counters stay in the total
            for payload in self._retired_stats:
                merged.merge(payload["stats"])
            stats: Dict[str, Any] = {
                "backend": self.backend,
                "workers": len(self._clients),
                "processes": len(self._clients),
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "queries_shed": self._queries_shed,
                "queries_retried": self._queries_retried,
                "deadline_exceeded": self._deadline_exceeded,
                "workers_scaled": self._workers_scaled,
                "workers_hung": self._workers_hung,
                "graphs_loaded": len(self._handles),
                "affinity_routed": self._affinity_routed,
                "rebalances": self._rebalances,
                "updates": self._updates,
                "workers_respawned": self._workers_respawned,
            }
            clients = list(self._clients)
        stats["stale_workers"] = [row["worker"] for row in per_worker
                                  if row.get("stale")]
        if self._max_inflight_cost is not None:
            merged_admission: Dict[str, Any] = {
                "budget": 0.0, "inflight_cost": 0.0,
                "admitted": 0, "queued": 0, "shed": 0,
            }
            for client in clients:
                if client.admission is None:
                    continue
                snap = client.admission.snapshot()
                merged_admission["budget"] += snap["budget"]
                merged_admission["inflight_cost"] += snap["inflight_cost"]
                merged_admission["admitted"] += snap["admitted"]
                merged_admission["queued"] += snap["queued"]
                merged_admission["shed"] += snap["shed"]
            stats["admission"] = merged_admission
        stats["cached_preprocessings"] = sum(
            row["cached_preprocessings"] for row in per_worker)
        stats["cache_bytes"] = sum(row["cache_bytes"] for row in per_worker)
        if self._blob_store is not None:
            # write-once fronting: a graph "ships" when its blob is
            # written to the shared store, however many workers read it
            with self._lock:
                stats["graphs_shipped"] = self._graphs_published
        else:
            stats["graphs_shipped"] = sum(
                row["graphs_shipped"] for row in per_worker)
        stats.update(merged.to_dict())
        stats["per_worker"] = per_worker
        return stats

    def close(self, wait: bool = True) -> None:
        """Stop accepting queries; in-flight queries drain when waiting."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(self._monitor_interval_s * 4 + 5.0)
        for client in self._clients:
            client.stop_accepting()
        if wait:
            for _ in self._control.map_unordered(
                    lambda client: client.drain(300.0), self._clients):
                pass
            # capture final per-worker snapshots so stats() stays
            # coherent after the processes are gone
            self.worker_stats(timeout=10.0)
        for client in self._clients:
            client.shutdown()
        self._control.close(wait=False)
        if self._blob_store is not None:
            try:
                self._blob_store.delete_prefix(self._blob_ns)
            except Exception:  # noqa: BLE001 - nodes may already be gone
                pass
            self._blob_store.close()
