"""Tests for ternary treap construction (Appendix A)."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import cycle_graph, path_graph
from repro.sequential import random_vertex_ranks
from repro.trees import build_ternary_treap


def _naive_treap_parent(num_vertices, edges, ranks):
    """Recursive definition: root = min-rank vertex; split and recurse."""
    adjacency = [[] for _ in range(num_vertices)]
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    parent = [-1] * num_vertices
    seen = [False] * num_vertices

    def component(start, banned):
        stack, members = [start], []
        local_seen = {start}
        while stack:
            x = stack.pop()
            members.append(x)
            for y in adjacency[x]:
                if y not in banned and y not in local_seen:
                    local_seen.add(y)
                    stack.append(y)
        return members

    def recurse(members, treap_parent, banned):
        if not members:
            return
        root = min(members, key=lambda v: (ranks[v], v))
        parent[root] = treap_parent
        banned = banned | {root}
        for u in adjacency[root]:
            if u in banned or u not in members:
                continue
            sub = component(u, banned)
            recurse(sub, root, banned)

    for v in range(num_vertices):
        if not seen[v]:
            members = component(v, set())
            for x in members:
                seen[x] = True
            recurse(members, -1, set())
    return parent


class TestTreapStructure:
    def test_path_treap_matches_naive(self):
        n = 12
        edges = list(path_graph(n).edges())
        ranks = random_vertex_ranks(n, seed=4)
        treap = build_ternary_treap(n, edges, ranks)
        assert treap.parent == _naive_treap_parent(n, edges, ranks)

    def test_root_is_min_rank(self):
        n = 20
        edges = list(path_graph(n).edges())
        ranks = random_vertex_ranks(n, seed=9)
        treap = build_ternary_treap(n, edges, ranks)
        assert treap.roots == [min(range(n), key=lambda v: (ranks[v], v))]

    def test_heap_order_on_ranks(self):
        n = 30
        edges = list(path_graph(n).edges())
        ranks = random_vertex_ranks(n, seed=2)
        treap = build_ternary_treap(n, edges, ranks)
        for v in range(n):
            if treap.parent[v] != -1:
                assert ranks[treap.parent[v]] <= ranks[v]

    def test_forest_input_gives_one_root_per_tree(self):
        edges = [(0, 1), (1, 2), (3, 4)]
        ranks = [0.5, 0.1, 0.9, 0.3, 0.2]
        treap = build_ternary_treap(5, edges, ranks)
        assert sorted(treap.roots) == [1, 4]

    def test_subtree_sizes_sum(self):
        n = 25
        edges = list(path_graph(n).edges())
        ranks = random_vertex_ranks(n, seed=1)
        treap = build_ternary_treap(n, edges, ranks)
        sizes = treap.subtree_sizes()
        assert sizes[treap.roots[0]] == n
        assert all(1 <= s <= n for s in sizes)

    def test_empty(self):
        treap = build_ternary_treap(0, [], [])
        assert treap.height() == 0


class TestTreapHeightBound:
    def test_height_logarithmic_on_paths(self):
        """Lemma A.1: height O(log n) w.h.p.; check a generous constant."""
        n = 2000
        edges = list(path_graph(n).edges())
        for seed in range(3):
            ranks = random_vertex_ranks(n, seed=seed)
            treap = build_ternary_treap(n, edges, ranks)
            assert treap.height() <= 8 * math.log2(n)

    def test_height_logarithmic_on_cycles_msf(self):
        # Ternary trees from cycles (after removing one edge).
        n = 1500
        edges = list(path_graph(n).edges())
        ranks = random_vertex_ranks(n, seed=42)
        treap = build_ternary_treap(n, edges, ranks)
        assert treap.height() <= 8 * math.log2(n)


@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=999),
)
@settings(max_examples=30, deadline=None)
def test_treap_matches_naive_random_trees(n, seed):
    rng = random.Random(seed)
    edges = [(rng.randrange(v), v) for v in range(1, n)]
    ranks = random_vertex_ranks(n, seed=seed)
    treap = build_ternary_treap(n, edges, ranks)
    assert treap.parent == _naive_treap_parent(n, edges, ranks)
