"""Disjoint-set union with union by rank and path compression."""

from __future__ import annotations

from typing import Dict, List


class UnionFind:
    """Classic disjoint-set forest over elements ``0..n-1``."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be non-negative")
        self._parent = list(range(n))
        self._rank = [0] * n
        self._num_sets = n

    @property
    def num_sets(self) -> int:
        return self._num_sets

    def find(self, x: int) -> int:
        """Representative of x's set (with path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of x and y; returns True if they were distinct."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._rank[rx] < self._rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if self._rank[rx] == self._rank[ry]:
            self._rank[rx] += 1
        self._num_sets -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def component_labels(self) -> List[int]:
        """Label each element by the minimum element of its set."""
        n = len(self._parent)
        min_of_root: Dict[int, int] = {}
        for x in range(n):
            root = self.find(x)
            if root not in min_of_root or x < min_of_root[root]:
                min_of_root[root] = x
        return [min_of_root[self.find(x)] for x in range(n)]
