"""Socket backend: wire protocol, placement, replication, failover."""

import pytest

from repro.distdht.backing import fetch
from repro.distdht.sockets import DHTNodeServer, SocketBackingStore


@pytest.fixture
def node():
    with DHTNodeServer() as server:
        yield server


@pytest.fixture
def cluster():
    """Two live nodes plus a replication-2 client over them."""
    with DHTNodeServer() as node_a, DHTNodeServer() as node_b:
        store = SocketBackingStore([node_a.address, node_b.address],
                                   replication=2, timeout=5.0,
                                   retries=2, backoff_s=0.01)
        try:
            yield node_a, node_b, store
        finally:
            store.close()


class TestSingleNode:
    def test_put_get_delete_contains(self, node):
        store = SocketBackingStore([node.address])
        store.put(b"k", b"record-bytes")
        assert store.get(b"k") == b"record-bytes"
        assert store.contains(b"k")
        assert store.delete(b"k")
        assert store.get(b"k") is None
        assert not store.contains(b"k")
        store.close()

    def test_batched_ops_round_trip(self, node):
        store = SocketBackingStore([node.address])
        items = [(f"k{i}".encode(), f"v{i}".encode() * 10)
                 for i in range(50)]
        store.put_many(items)
        keys = [key for key, _ in items] + [b"missing"]
        values = store.get_many(keys)
        assert values[:-1] == [record for _, record in items]
        assert values[-1] is None
        store.close()

    def test_scan_and_delete_prefix(self, node):
        store = SocketBackingStore([node.address])
        store.put_many([(b"ns|a", b"1"), (b"ns|b", b"2"), (b"other", b"3")])
        assert sorted(store.scan(b"ns|")) == [b"ns|a", b"ns|b"]
        assert store.delete_prefix(b"ns|") == 2
        assert store.get(b"other") == b"3"
        store.close()

    def test_ping_and_stats(self, node):
        store = SocketBackingStore([node.address])
        assert store.ping() == [True]
        store.put(b"k", b"v")
        stats = store.stats()
        assert stats["kind"] == "socket"
        assert stats["remote"] is True
        store.close()

    def test_address_string_form_accepted(self, node):
        host, port = node.address
        store = SocketBackingStore([f"{host}:{port}"])
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        store.close()


class TestPlacement:
    def test_placement_is_stable_across_clients(self, cluster):
        node_a, node_b, store = cluster
        other = SocketBackingStore([node_a.address, node_b.address],
                                   replication=2)
        keys = [f"key-{i}".encode() for i in range(64)]
        assert [store.replicas_for(k) for k in keys] == \
            [other.replicas_for(k) for k in keys]
        other.close()

    def test_keys_spread_over_the_ring(self, node):
        with DHTNodeServer() as node_b:
            store = SocketBackingStore([node.address, node_b.address])
            primaries = {store.replicas_for(f"key-{i}".encode())[0]
                         for i in range(256)}
            assert primaries == {0, 1}  # both nodes carry load
            store.close()

    def test_replication_capped_at_cluster_size(self, node):
        store = SocketBackingStore([node.address], replication=3)
        assert store.replication == 1
        store.close()


class TestFailover:
    def test_reads_survive_a_killed_node(self, cluster):
        """The acceptance scenario: one of two replicas dies with reads
        outstanding on pooled connections; every record stays readable."""
        node_a, node_b, store = cluster
        items = [(f"key-{i}".encode(), f"record-{i}".encode() * 5)
                 for i in range(40)]
        store.put_many(items)
        assert store.get(items[0][0]) == items[0][1]  # pools are warm
        node_a.close()  # severs established connections too
        for key, record in items:
            assert store.get(key) == record  # replica failover, per key
        values = store.get_many([key for key, _ in items])
        assert values == [record for _, record in items]
        assert store.ping() == [False, True]

    def test_writes_land_on_surviving_replicas(self, cluster):
        node_a, node_b, store = cluster
        node_b.close()
        store.put(b"after-death", b"still-written")
        assert store.get(b"after-death") == b"still-written"

    def test_every_replica_down_is_an_error(self, cluster):
        node_a, node_b, store = cluster
        store.put(b"k", b"v")
        node_a.close()
        node_b.close()
        with pytest.raises(ConnectionError):
            store.get(b"k")

    def test_locator_fetch_fails_over(self, cluster):
        node_a, node_b, store = cluster
        store.put(b"k", b"locator-payload")
        locator = store.share(b"k")
        assert locator[0] == "dht"
        node_a.close()
        assert fetch(locator) == b"locator-payload"
