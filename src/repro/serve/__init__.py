"""The serving layer: concurrent queries over long-lived Sessions.

Four pieces:

* :class:`~repro.serve.service.GraphService` — owns one thread-safe
  :class:`~repro.api.session.Session` and a bounded worker pool; queries
  run concurrently with per-run metrics isolation while sharing the
  DHT-resident preprocessing.  Scales until the GIL does not.
* :class:`~repro.serve.procpool.ProcessGraphService` — the same contract
  across N worker **processes**, each owning a private Session, with
  fingerprint-affinity routing (all queries for a graph go to the worker
  whose cache is warm, graphs pickled across the boundary once) — the
  scale-out deployment for CPU-bound traffic.
* :mod:`repro.serve.protocol` — a JSON-lines protocol (stdio or TCP) the
  ``python -m repro serve`` subcommand speaks; drives either service.
* :mod:`repro.serve.pool` — the bounded worker pool, its
  :class:`~repro.serve.pool.PendingResult` future, and
  :meth:`~repro.serve.pool.WorkerPool.map_unordered`.
"""

from repro.serve.pool import PendingResult, ServiceClosedError, WorkerPool
from repro.serve.procpool import ProcessGraphService, WorkerDiedError
from repro.serve.protocol import (
    ServiceServer,
    handle_request,
    serve_socket,
    serve_stream,
)
from repro.serve.service import GraphService, ServiceBase

__all__ = [
    "GraphService",
    "PendingResult",
    "ProcessGraphService",
    "ServiceBase",
    "ServiceClosedError",
    "ServiceServer",
    "WorkerDiedError",
    "WorkerPool",
    "handle_request",
    "serve_socket",
    "serve_stream",
]
