"""The byte-level KV contract every real DHT backend implements.

A :class:`BackingStore` maps opaque byte keys to opaque byte records.  The
:class:`~repro.distdht.store.BackedDHTStore` adapter sits above it: keys
are pickled Python keys under a per-store namespace prefix, records carry
the value pickle plus the write-time :func:`~repro.ampc.cost_model.
estimate_bytes` size (so reads never re-walk values) or a tombstone
marker (so copy-on-write overlays work across process boundaries).

Cross-process distribution goes through the ``share``/``fetch`` pair: the
writing process turns a key into a small picklable *locator*, ships the
locator (never the record), and any process resolves it with
:func:`fetch` — reading the bytes out of shared memory or off a DHT node,
with replica failover where the backend supports it.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: pickle protocol for keys and values: fixed, so two processes encoding
#: the same key always produce the same bytes
PICKLE_PROTOCOL = 4

_SIZE = struct.Struct("<q")
#: record size-field sentinel marking a tombstone (a shadow-delete in a
#: derived store's overlay)
TOMBSTONE_SIZE = -1
#: a complete tombstone record (header only, no payload)
TOMBSTONE = _SIZE.pack(TOMBSTONE_SIZE)


def encode_key(key: Any) -> bytes:
    """Deterministic byte encoding of a store key (fixed-protocol pickle)."""
    return pickle.dumps(key, PICKLE_PROTOCOL)


def decode_key(data: bytes) -> Any:
    return pickle.loads(data)


def encode_record(value: Any, size: int) -> bytes:
    """Pack ``(value, recorded size)`` into one record.

    The size is the write-time ``estimate_bytes`` of the value — the
    number every read charges — so a reader in another process never has
    to re-walk (or even unpickle) the value to account for it.
    """
    return _SIZE.pack(size) + pickle.dumps(value, PICKLE_PROTOCOL)


def decode_record(data: bytes) -> Optional[Tuple[Any, int]]:
    """-> (value, recorded size), or None for a tombstone record."""
    size = _SIZE.unpack_from(data)[0]
    if size == TOMBSTONE_SIZE:
        return None
    return pickle.loads(data[_SIZE.size:]), size


def record_size(data: bytes) -> int:
    """The recorded size field alone (no value unpickling)."""
    return _SIZE.unpack_from(data)[0]


def is_tombstone(data: bytes) -> bool:
    return _SIZE.unpack_from(data)[0] == TOMBSTONE_SIZE


def record_digest(record: bytes) -> bytes:
    """8-byte content digest of a raw record.

    The anti-entropy sweep compares these across replicas instead of
    shipping the records themselves; node servers and the repair client
    must therefore agree on this exact function.
    """
    return hashlib.blake2b(record, digest_size=8).digest()


class BackingStore:
    """Abstract byte-level KV store.

    Implementations must provide :meth:`put`, :meth:`get`, :meth:`delete`
    and :meth:`scan`; the batched and prefix operations have loop
    defaults that subclasses override when the transport can do better
    (the socket backend turns them into single round trips).
    """

    #: backends whose records live outside this process's heap (the
    #: socket backend) report True, and the Session cache then sizes
    #: their artifacts by index overhead instead of payload bytes
    remote = False

    #: human-readable backend kind ("mem" / "shm" / "socket")
    kind = "abstract"

    # -- required primitives ---------------------------------------------

    def put(self, key: bytes, record: bytes) -> None:
        raise NotImplementedError

    def get(self, key: bytes) -> Optional[bytes]:
        raise NotImplementedError

    def delete(self, key: bytes) -> bool:
        raise NotImplementedError

    def scan(self, prefix: bytes) -> List[bytes]:
        """All stored keys starting with ``prefix`` (order unspecified)."""
        raise NotImplementedError

    # -- batched / prefix defaults ---------------------------------------

    def put_many(self, items: Sequence[Tuple[bytes, bytes]]) -> None:
        for key, record in items:
            self.put(key, record)

    def get_many(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        return [self.get(key) for key in keys]

    def contains(self, key: bytes) -> bool:
        return self.get(key) is not None

    def delete_prefix(self, prefix: bytes) -> int:
        """Drop every key under ``prefix``; returns how many were live."""
        count = 0
        for key in self.scan(prefix):
            if self.delete(key):
                count += 1
        return count

    # -- cross-process distribution --------------------------------------

    def share(self, key: bytes) -> Any:
        """A small picklable locator another process resolves via fetch().

        The default locator re-reads through a reconnected store, which
        only in-process backends can satisfy; shared backends override.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot share records across processes"
        )

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Release OS resources (segments, sockets).  Idempotent."""

    def stats(self) -> Dict[str, Any]:
        return {"kind": self.kind, "remote": self.remote}

    def __enter__(self) -> "BackingStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class InMemoryBackingStore(BackingStore):
    """The reference implementation: a plain dict.

    Functionally identical to the simulated store's storage (minus the
    pickle round trip), so it doubles as the conformance oracle for the
    real backends and as a cheap ``backend="mem"`` for tests.
    """

    kind = "mem"

    def __init__(self) -> None:
        self._data: Dict[bytes, bytes] = {}

    def put(self, key: bytes, record: bytes) -> None:
        self._data[key] = record

    def get(self, key: bytes) -> Optional[bytes]:
        return self._data.get(key)

    def delete(self, key: bytes) -> bool:
        return self._data.pop(key, None) is not None

    def contains(self, key: bytes) -> bool:
        return key in self._data

    def scan(self, prefix: bytes) -> List[bytes]:
        return [key for key in self._data if key.startswith(prefix)]

    def stats(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "remote": self.remote,
            "entries": len(self._data),
            "payload_bytes": sum(len(v) for v in self._data.values()),
        }


def fetch(locator: Any) -> bytes:
    """Resolve a locator produced by some store's :meth:`share`.

    Dispatches on the locator's leading tag; each backend registers its
    own resolver.  Raises ``KeyError``/``ConnectionError`` when the
    record is gone or every replica is unreachable.
    """
    tag = locator[0]
    resolver = _FETCHERS.get(tag)
    if resolver is None:
        raise ValueError(f"unknown locator tag {tag!r}")
    return resolver(locator)


#: locator tag -> resolver; populated by the backend modules on import
_FETCHERS: Dict[str, Any] = {}


def register_fetcher(tag: str, resolver) -> None:
    _FETCHERS[tag] = resolver


def scan_decoded(store: BackingStore, prefix: bytes) -> Iterable[Any]:
    """Decode the Python keys under a namespace prefix."""
    start = len(prefix)
    for key in store.scan(prefix):
        yield decode_key(key[start:])
