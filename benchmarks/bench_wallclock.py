"""Wall-clock benchmark trajectory: how fast the simulator itself runs.

Every other benchmark in this directory reports *simulated* time — the
cost model's first-principles estimate.  This one measures the opposite
axis: real wall-clock seconds of the Python simulator executing
representative ``Session.run`` and ``GraphService`` workloads.  It is the
baseline every perf PR is measured against.

Results live in ``BENCH_wallclock.json`` at the repository root:

* ``before_s``  — the workload's wall-clock on the code *before* the
  current optimization round (recorded with ``--record before``);
* ``after_s``   — the optimized wall-clock (the default recording mode);
* ``speedup``   — ``before_s / after_s``;
* tracked workloads (the ``Session.run`` mis/matching/msf trajectories)
  gate CI: ``--check`` fails when a fresh measurement exceeds
  ``REGRESSION_FACTOR x`` the committed ``after_s``.

Usage::

    python benchmarks/bench_wallclock.py                  # full suite, record after_s
    python benchmarks/bench_wallclock.py --record before  # pre-optimization numbers
    python benchmarks/bench_wallclock.py --quick          # small CI suite
    python benchmarks/bench_wallclock.py --quick --check  # CI regression gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.ampc.cluster import ClusterConfig  # noqa: E402
from repro.analysis.datasets import load_dataset, load_weighted_dataset  # noqa: E402
from repro.api import Session  # noqa: E402
from repro.serve import GraphService  # noqa: E402

#: a fresh measurement may be at most this factor above the committed
#: after_s before --check fails (cross-machine headroom included)
REGRESSION_FACTOR = 2.0
#: absolute grace floor: tiny workloads are dominated by scheduler noise
REGRESSION_FLOOR_S = 0.75

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_wallclock.json",
)


@dataclass(frozen=True)
class Workload:
    """One named wall-clock measurement."""

    name: str
    build: Callable[[], Callable[[], float]]
    #: tracked workloads gate CI and carry the >= 2x speedup requirement
    tracked: bool = True


def _session_workload(algorithm: str, dataset: str, *, weighted: bool,
                      scale: float, seed: int = 3,
                      warm_runs: int = 3) -> Callable[[], Callable[[], float]]:
    """One cold ``Session.run`` plus ``warm_runs`` cache-served repeats.

    This is the serving-shaped profile the ROADMAP optimizes for: the
    preprocessing shuffle paid once, queries amortized behind it.
    Returns the run's simulated seconds so drift is visible next to the
    wall-clock numbers.
    """

    def build() -> Callable[[], float]:
        loader = load_weighted_dataset if weighted else load_dataset
        graph = loader(dataset, scale)

        def run() -> float:
            session = Session(ClusterConfig())
            result = session.run(algorithm, graph, seed=seed)
            for _ in range(warm_runs):
                session.run(algorithm, graph, seed=seed)
            return result.metrics["simulated_time_s"]

        return run

    return build


def _service_workload(dataset: str, *, scale: float,
                      workers: int = 4) -> Callable[[], Callable[[], float]]:
    """A concurrent GraphService burst: mixed algorithms, shared cache."""

    def build() -> Callable[[], float]:
        graph = load_dataset(dataset, scale)

        def run() -> float:
            service = GraphService(ClusterConfig(), workers=workers)
            service.load("bench", graph)
            pending = []
            for seed in range(2):
                pending.append(service.submit("mis", "bench", seed=seed))
                pending.append(service.submit("matching", "bench", seed=seed))
                pending.append(service.submit("components", "bench",
                                              seed=seed))
            total = sum(p.result().metrics["simulated_time_s"]
                        for p in pending)
            service.close()
            return total

        return run

    return build


def _suite(quick: bool) -> List[Workload]:
    """The workload set: full (committed trajectory) or quick (CI smoke).

    Both suites track mis/matching/msf ``Session.run`` on scaled-dataset
    inputs; quick shrinks the datasets so the smoke step stays in CI
    budget.
    """
    scale = 0.25 if quick else 1.0
    dataset = "OK-S"
    return [
        Workload(f"session.run/mis/{dataset}",
                 _session_workload("mis", dataset, weighted=False,
                                   scale=scale)),
        Workload(f"session.run/matching/{dataset}",
                 _session_workload("matching", dataset, weighted=False,
                                   scale=scale)),
        Workload(f"session.run/msf/{dataset}",
                 _session_workload("msf", dataset, weighted=True,
                                   scale=scale)),
        Workload(f"service.mixed/{dataset}",
                 _service_workload(dataset, scale=scale), tracked=False),
    ]


def _measure(workload: Workload, repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` wall-clock (input building excluded)."""
    run = workload.build()
    best = float("inf")
    simulated = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        simulated = run()
        best = min(best, time.perf_counter() - start)
    return {"wall_s": round(best, 4),
            "simulated_time_s": round(simulated, 6)}


def _load_report(path: str) -> Dict:
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    return {"schema": 1, "unit": "seconds",
            "regression_factor": REGRESSION_FACTOR, "suites": {}}


def _save_report(report: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _record(report: Dict, suite_name: str, measured: Dict[str, Dict],
            tracked: Dict[str, bool], field: str) -> None:
    suite = report["suites"].setdefault(suite_name, {"workloads": {}})
    for name, numbers in measured.items():
        entry = suite["workloads"].setdefault(name, {})
        entry[field] = numbers["wall_s"]
        entry["simulated_time_s"] = numbers["simulated_time_s"]
        entry["tracked"] = tracked[name]
        if entry.get("before_s") and entry.get("after_s"):
            entry["speedup"] = round(entry["before_s"] / entry["after_s"], 2)


def _check(report: Dict, suite_name: str,
           measured: Dict[str, Dict], tracked: Dict[str, bool]) -> int:
    """Compare fresh numbers against the committed after_s; 0 = pass."""
    suite = report["suites"].get(suite_name, {"workloads": {}})
    failures = []
    for name, numbers in measured.items():
        committed = suite["workloads"].get(name, {}).get("after_s")
        entry = suite["workloads"].setdefault(name, {})
        entry["last_check_s"] = numbers["wall_s"]
        if committed is None or not tracked[name]:
            continue
        limit = max(committed * REGRESSION_FACTOR, REGRESSION_FLOOR_S)
        if numbers["wall_s"] > limit:
            failures.append(
                f"{name}: {numbers['wall_s']:.3f}s exceeds "
                f"{limit:.3f}s ({REGRESSION_FACTOR}x committed "
                f"{committed:.3f}s)"
            )
    for failure in failures:
        print(f"REGRESSION  {failure}")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small datasets (the CI smoke suite)")
    parser.add_argument("--record", choices=("before", "after"),
                        default="after",
                        help="which trajectory field to write (default "
                             "after; use before on pre-optimization code)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed after_s and "
                             "fail on >%.1fx regression" % REGRESSION_FACTOR)
    parser.add_argument("--repeats", type=int, default=None,
                        help="measurements per workload (best-of; default "
                             "3 full / 2 quick)")
    parser.add_argument("--output", default=BENCH_PATH,
                        help="report path (default: BENCH_wallclock.json)")
    args = parser.parse_args(argv)

    suite_name = "quick" if args.quick else "full"
    repeats = args.repeats or (2 if args.quick else 3)
    workloads = _suite(args.quick)

    measured: Dict[str, Dict] = {}
    tracked = {w.name: w.tracked for w in workloads}
    for workload in workloads:
        measured[workload.name] = _measure(workload, repeats)
        flag = "tracked" if workload.tracked else "info   "
        print(f"{flag}  {workload.name:36s} "
              f"{measured[workload.name]['wall_s']:8.3f}s wall  "
              f"{measured[workload.name]['simulated_time_s']:10.3f}s simulated")

    report = _load_report(args.output)
    if args.check:
        status = _check(report, suite_name, measured, tracked)
        _save_report(report, args.output)
        print("wall-clock check:", "FAIL" if status else "OK")
        return status
    _record(report, suite_name, measured, tracked, f"{args.record}_s")
    _save_report(report, args.output)
    print(f"recorded {args.record}_s for suite {suite_name!r} "
          f"-> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
