"""Tests for edge-list I/O round-trips."""

from repro.graph import Graph, WeightedGraph, cycle_graph
from repro.graph.generators import random_weighted
from repro.graph.io import (
    read_edge_list,
    read_weighted_edge_list,
    write_edge_list,
    write_weighted_edge_list,
)


def test_unweighted_round_trip(tmp_path):
    graph = cycle_graph(12)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    loaded = read_edge_list(path)
    assert loaded.num_vertices == graph.num_vertices
    assert sorted(loaded.edges()) == sorted(graph.edges())


def test_weighted_round_trip(tmp_path):
    graph = random_weighted(cycle_graph(10), seed=3)
    path = tmp_path / "graph.wtx"
    write_weighted_edge_list(graph, path)
    loaded = read_weighted_edge_list(path)
    assert sorted(loaded.edges()) == sorted(graph.edges())


def test_isolated_vertices_preserved_via_header(tmp_path):
    graph = Graph(6)
    graph.add_edge(0, 1)
    path = tmp_path / "sparse.txt"
    write_edge_list(graph, path)
    loaded = read_edge_list(path)
    assert loaded.num_vertices == 6


def test_reader_skips_comments_and_self_loops(tmp_path):
    path = tmp_path / "manual.txt"
    path.write_text("# a comment\n0 1\n1 1\n2 0\n\n")
    loaded = read_edge_list(path)
    assert loaded.num_edges == 2
    assert loaded.num_vertices == 3


def test_directed_duplicates_symmetrize(tmp_path):
    path = tmp_path / "directed.txt"
    path.write_text("0 1\n1 0\n1 2\n")
    loaded = read_edge_list(path)
    assert loaded.num_edges == 2


def test_weighted_reader_defaults_missing_weight(tmp_path):
    path = tmp_path / "mixed.txt"
    path.write_text("0 1 2.5\n1 2\n")
    loaded = read_weighted_edge_list(path)
    assert loaded.weight(0, 1) == 2.5
    assert loaded.weight(1, 2) == 1.0
