"""Tests for the validation predicates themselves."""

from repro.graph import Graph, cycle_graph, path_graph
from repro.sequential import (
    is_forest,
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_spanning_forest,
)
from repro.sequential.validate import components_equal


class TestIndependentSet:
    def test_accepts_independent(self):
        assert is_independent_set(path_graph(4), {0, 2})

    def test_rejects_adjacent(self):
        assert not is_independent_set(path_graph(4), {0, 1})

    def test_maximal_requires_domination(self):
        graph = path_graph(5)
        assert not is_maximal_independent_set(graph, {0})  # 3, 4 undominated
        assert is_maximal_independent_set(graph, {0, 2, 4})


class TestMatching:
    def test_accepts_disjoint_edges(self):
        assert is_matching(path_graph(4), [(0, 1), (2, 3)])

    def test_rejects_shared_vertex(self):
        assert not is_matching(path_graph(4), [(0, 1), (1, 2)])

    def test_rejects_non_edges(self):
        assert not is_matching(path_graph(4), [(0, 2)])

    def test_maximal_matching(self):
        graph = path_graph(5)
        assert not is_maximal_matching(graph, [(0, 1)])  # (2,3) addable
        assert is_maximal_matching(graph, [(0, 1), (2, 3)])
        assert is_maximal_matching(graph, [(1, 2), (3, 4)])


class TestForest:
    def test_accepts_acyclic(self):
        assert is_forest(4, [(0, 1), (1, 2)])

    def test_rejects_cycle(self):
        assert not is_forest(3, [(0, 1), (1, 2), (2, 0)])

    def test_spanning_forest_requires_full_span(self):
        graph = cycle_graph(4)
        assert is_spanning_forest(graph, [(0, 1), (1, 2), (2, 3)])
        assert not is_spanning_forest(graph, [(0, 1), (2, 3)])  # 2 trees, 1 CC

    def test_spanning_forest_rejects_foreign_edges(self):
        graph = path_graph(4)
        assert not is_spanning_forest(graph, [(0, 3), (1, 2), (0, 1)])


class TestComponentsEqual:
    def test_same_partition_different_labels(self):
        assert components_equal([0, 0, 2, 2], [7, 7, 9, 9])

    def test_different_partitions(self):
        assert not components_equal([0, 0, 2, 2], [0, 1, 2, 2])
        assert not components_equal([0, 1, 2, 2], [0, 0, 2, 2])

    def test_length_mismatch(self):
        assert not components_equal([0], [0, 0])
