"""BackedDHTStore/BackedDerivedDHTStore: accounting parity with the
simulated stores, namespace lifetime, and lineage folding."""

import gc

import pytest

from repro.ampc.dht import DHTService, DHTStore, StoreSealedError
from repro.distdht.backing import InMemoryBackingStore
from repro.distdht.shm import SharedMemoryBackingStore
from repro.distdht.sockets import DHTNodeServer, SocketBackingStore
from repro.distdht.store import BackedDerivedDHTStore, BackedDHTStore

SHARDS = 4


def _accounting(store):
    """Everything the cost model observes about a store."""
    return {
        "total_entries": store.total_entries,
        "total_value_bytes": store.total_value_bytes,
        "shard_reads": list(store.shard_reads),
        "sealed": store.sealed,
    }


def _drive(store):
    """A fixed op sequence exercising writes, overwrites and reads."""
    observations = []
    observations.append(store.write(("v", 1), (1, "payload")))
    observations.append(store.write_many(
        [(("v", i), (i, [i] * i)) for i in range(2, 7)]))
    observations.append(store.write(("v", 1), (1, "replaced")))  # overwrite
    store.seal()
    observations.append(store.lookup(("v", 3)))
    observations.append(store.lookup(("v", 99)))
    observations.append(store.lookup_with_size(("v", 4)))
    observations.append(store.lookup_many(
        [("v", 2), ("v", 404), ("v", 6)]))
    observations.append(store.contains(("v", 5)))
    observations.append(sorted(store.keys()))
    return observations


@pytest.fixture(params=["mem", "shm"])
def backing(request):
    if request.param == "mem":
        store = InMemoryBackingStore()
    else:
        store = SharedMemoryBackingStore()
    with store:
        yield store


class TestParityWithSimulatedStore:
    def test_identical_observations_and_accounting(self, backing):
        simulated = DHTStore("s", SHARDS)
        backed = BackedDHTStore("s", SHARDS, backing=backing)
        assert _drive(simulated) == _drive(backed)
        assert _accounting(simulated) == _accounting(backed)

    def test_sealed_store_rejects_writes(self, backing):
        backed = BackedDHTStore("s", SHARDS, backing=backing)
        backed.write("k", 1)
        backed.seal()
        with pytest.raises(StoreSealedError):
            backed.write("k", 2)

    def test_partial_commit_on_inestimable_value(self, backing):
        """write_many failing mid-batch commits the completed prefix with
        accounting and physical records in lockstep — like the simulator."""
        simulated = DHTStore("s", SHARDS)
        backed = BackedDHTStore("s", SHARDS, backing=backing)

        def items():
            yield "a", (1, 2)
            yield "b", object()  # estimate_bytes cannot size this

        for store in (simulated, backed):
            with pytest.raises(TypeError):
                store.write_many(items())
            store.seal()
        assert _accounting(simulated) == _accounting(backed)
        assert backed.lookup("a") == (1, 2)
        assert backed.lookup("b") is None

    def test_derived_store_parity(self, backing):
        def build(parent_cls, child_factory):
            parent = parent_cls("p", SHARDS)
            parent.write_many([(i, i * 10) for i in range(8)])
            parent.seal()
            child = child_factory(parent)
            child.write(3, "patched")
            child.write(100, "new")
            child.delete(5)        # shadow-delete of a parent key
            child.delete(100)      # delete of an overlay-only key
            child.write(5, "back")  # resurrect the shadow-deleted key
            child.seal()
            reads = [child.lookup(k) for k in (0, 3, 5, 100, 7)]
            return reads, _accounting(child), sorted(child.keys())

        simulated = build(DHTStore, lambda p: p.derive("d"))
        backed = build(
            lambda name, shards: BackedDHTStore(name, shards,
                                                backing=backing),
            lambda p: p.derive("d"))
        assert simulated == backed

    def test_derive_on_backed_store_yields_backed_child(self, backing):
        parent = BackedDHTStore("p", SHARDS, backing=backing)
        parent.write("k", 1)
        parent.seal()
        child = parent.derive()
        assert isinstance(child, BackedDerivedDHTStore)
        assert child.backing is backing
        child.seal()
        grandchild = child.derive()
        assert isinstance(grandchild, BackedDerivedDHTStore)

    def test_values_round_trip_by_copy(self, backing):
        """The one documented difference: lookups return equal copies,
        not the written object itself."""
        backed = BackedDHTStore("s", SHARDS, backing=backing)
        value = {"nested": [1, 2, 3]}
        backed.write("k", value)
        backed.seal()
        fetched = backed.lookup("k")
        assert fetched == value
        assert fetched is not value


class TestNamespaceLifetime:
    def test_store_gc_releases_backing_records(self, backing):
        store = BackedDHTStore("ephemeral", SHARDS, backing=backing)
        store.write_many([(i, i) for i in range(10)])
        store.seal()
        namespace = store._ns
        assert backing.scan(namespace)
        del store
        gc.collect()
        assert backing.scan(namespace) == []

    def test_release_is_explicit_and_idempotent(self, backing):
        store = BackedDHTStore("s", SHARDS, backing=backing)
        store.write("k", 1)
        assert backing.scan(store._ns)
        store.release()
        assert backing.scan(store._ns) == []
        store.release()

    def test_two_stores_never_collide(self, backing):
        first = BackedDHTStore("same-name", SHARDS, backing=backing)
        second = BackedDHTStore("same-name", SHARDS, backing=backing)
        first.write("k", "first")
        second.write("k", "second")
        first.seal()
        second.seal()
        assert first.lookup("k") == "first"
        assert second.lookup("k") == "second"


class TestFolding:
    def test_folded_flattens_a_chain_with_identical_content(self, backing):
        base = BackedDHTStore("ranks", SHARDS, backing=backing)
        base.write_many([(i, i * 2) for i in range(12)])
        base.seal()
        chain = base
        for generation in range(4):
            chain = chain.derive()
            chain.write(generation, f"gen{generation}")
            chain.delete(11 - generation)
            chain.seal()
        folded = chain.folded()
        assert not isinstance(folded, BackedDerivedDHTStore)
        assert isinstance(folded, BackedDHTStore)
        assert folded.sealed
        assert sorted(folded.keys()) == sorted(chain.keys())
        assert folded.total_entries == chain.total_entries
        assert folded.total_value_bytes == chain.total_value_bytes
        for key in folded.keys():
            assert folded.lookup(key) == chain.lookup(key)


class TestSocketBackedStore:
    def test_parity_against_simulated_over_real_nodes(self):
        with DHTNodeServer() as node:
            backing = SocketBackingStore([node.address])
            simulated = DHTStore("s", SHARDS)
            backed = BackedDHTStore("s", SHARDS, backing=backing)
            assert _drive(simulated) == _drive(backed)
            assert _accounting(simulated) == _accounting(backed)
            backing.close()

    def test_remote_backing_shrinks_cache_residency(self):
        with DHTNodeServer() as node:
            backing = SocketBackingStore([node.address])
            backed = BackedDHTStore("s", SHARDS, backing=backing)
            backed.write_many([(i, [i] * 50) for i in range(10)])
            backed.seal()
            simulated = DHTStore("s", SHARDS)
            simulated.write_many([(i, [i] * 50) for i in range(10)])
            simulated.seal()
            # payloads live on the node, not in this process
            assert backed.cache_resident_bytes() \
                < simulated.cache_resident_bytes()
            backing.close()


class TestServiceIntegration:
    def test_dht_service_creates_backed_stores(self, backing):
        service = DHTService(SHARDS, backing=backing)
        store = service.create("ranks")
        assert isinstance(store, BackedDHTStore)
        store.write("k", 42)
        store.seal()
        assert store.lookup("k") == 42

    def test_dht_service_without_backing_is_simulated(self):
        service = DHTService(SHARDS)
        store = service.create("ranks")
        assert type(store) is DHTStore
