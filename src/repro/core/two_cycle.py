"""The 1-vs-2-Cycle problem in AMPC (Section 5.6).

The canonical MPC-hardness problem: decide whether the input is one cycle
of length n or two cycles of length n/2.  Under the 1-vs-2-Cycle conjecture
this needs Omega(log n) MPC rounds; the AMPC algorithm solves it in O(1):

1. write the cycle adjacency to the DHT (the algorithm's single shuffle);
2. sample each vertex with probability ~n^{-eps/2}; every sampled vertex
   walks along the cycle via adaptive lookups until it reaches the next
   sampled vertex (or returns to itself);
3. contract to the sampled vertices and solve the tiny contracted graph on
   a single machine: the number of connected components is the number of
   cycles.

If some cycle received no sample (the walks then cover fewer than n
vertices in total), the sampling probability is doubled and the round
re-run — the practical completeness guard.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.dht import DHTStore
from repro.ampc.metrics import Metrics
from repro.ampc.runtime import AMPCRuntime
from repro.api.registry import AlgorithmSpec, ParamSpec, register_algorithm
from repro.core.ranks import hash_rank
from repro.dataflow.dofn import DoFn
from repro.graph.graph import Graph


@dataclass
class TwoCycleResult:
    """Output of the AMPC 1-vs-2-Cycle algorithm."""

    #: number of cycles found (1 or 2 for the paper's instances)
    num_cycles: int
    metrics: Metrics
    #: how many vertices were sampled in the successful attempt
    num_sampled: int = 0
    #: sampling attempts (1 unless a cycle had no sample)
    attempts: int = 0
    #: AMPC rounds: the preparation round (possibly cache-served) plus
    #: one walk round per attempt
    rounds: int = 0


class _CycleWalk(DoFn):
    """Walk the cycle from a sampled vertex to the next sampled vertex.

    Walks go in **both** directions: vertex ids carry no consistent cycle
    orientation, so one-directional walks could leave segments between
    adjacent samples uncovered.  Two-directional walks traverse every edge
    of a sampled cycle exactly twice, making coverage checkable: the step
    total equals 2n exactly when every cycle contains a sample.
    """

    def __init__(self, store, sampled: Set[int], walk_budget: int):
        self._store = store
        self._sampled = sampled
        self._budget = walk_budget

    def process(self, element, ctx):
        start, neighbors = element
        for first in neighbors:
            previous, current = start, first
            steps = 1
            truncated = False
            while current != start and current not in self._sampled:
                if steps >= self._budget:
                    yield ("truncated", start, current)
                    truncated = True
                    break
                fetched = ctx.lookup(self._store, current)
                nxt = fetched[0] if fetched[0] != previous else fetched[1]
                previous, current = current, nxt
                steps += 1
            if not truncated:
                yield ("link", start, current)
                yield ("steps", start, steps)


def _verify_cycle_graph(graph: Graph) -> None:
    if graph.num_vertices == 0:
        raise ValueError("empty graph")
    for v in graph.vertices():
        if graph.degree(v) != 2:
            raise ValueError(
                f"vertex {v} has degree {graph.degree(v)}; the 1-vs-2-Cycle "
                "problem takes disjoint unions of cycles"
            )


@dataclass
class PreparedTwoCycle:
    """The DHT-resident cycle adjacency (seed-independent)."""

    store: DHTStore


def prepare_two_cycle(graph: Graph, *,
                      runtime: Optional[AMPCRuntime] = None,
                      config: Optional[ClusterConfig] = None,
                      seed: int = 0) -> PreparedTwoCycle:
    """The single shuffle: place + write the cycle adjacency into the DHT.

    ``seed`` is accepted for interface uniformity but unused — only the
    sampling (not the adjacency) is seeded.
    """
    del seed
    _verify_cycle_graph(graph)
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    with metrics.phase("KV-Write"):
        nodes = runtime.pipeline.from_items(
            [(v, graph.neighbors(v)) for v in graph.vertices()]
        ).repartition(lambda record: record[0], name="place-cycle")
        store = runtime.new_store("cycle-adjacency")
        runtime.write_store(nodes, store,
                            key_fn=lambda record: record[0],
                            value_fn=lambda record: record[1])
    runtime.next_round()
    return PreparedTwoCycle(store=store)


def ampc_one_vs_two_cycle(graph: Graph, *,
                          runtime: Optional[AMPCRuntime] = None,
                          config: Optional[ClusterConfig] = None,
                          seed: int = 0,
                          sample_probability: Optional[float] = None,
                          walk_budget: Optional[int] = None,
                          max_attempts: int = 16,
                          prepared: Optional[PreparedTwoCycle] = None
                          ) -> TwoCycleResult:
    """Count the cycles of a disjoint-union-of-cycles graph in O(1) rounds."""
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    if prepared is None:
        # prepare_two_cycle validates the graph shape itself.
        prepared = prepare_two_cycle(graph, runtime=runtime)
    else:
        _verify_cycle_graph(graph)
    store = prepared.store
    rounds_before = metrics.rounds
    n = graph.num_vertices
    probability = sample_probability or max(4.0 / n, n ** -0.5)

    attempts = 0
    while True:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError("sampling never covered every cycle")
        sampled = {
            v for v in graph.vertices()
            if hash_rank(seed, attempts, v) < probability
        }
        if not sampled:
            probability = min(1.0, probability * 2)
            continue
        budget = walk_budget or max(
            16, math.ceil(8 * math.log(n + 1) / probability)
        )
        with metrics.phase("CycleWalks"):
            walkers = runtime.pipeline.from_items(
                [(v, graph.neighbors(v)) for v in sorted(sampled)]
            )
            outputs = walkers.par_do(
                _CycleWalk(store, sampled, budget), name="cycle-walks"
            ).collect()
        runtime.next_round()

        truncated = [item for item in outputs if item[0] == "truncated"]
        links = [(a, b) for tag, a, b in outputs if tag == "link"]
        covered = sum(steps for tag, _, steps in outputs if tag == "steps")
        if truncated or covered < 2 * n:
            # Some cycle had no sample (or samples too sparse): retry denser.
            probability = min(1.0, probability * 2)
            continue

        # Solve the contracted graph on a single machine.
        with metrics.phase("SolveContracted"):
            runtime.pipeline.run_on_driver(len(links))
            num_cycles = _count_components(links)
        return TwoCycleResult(num_cycles=num_cycles, metrics=metrics,
                              num_sampled=len(sampled), attempts=attempts,
                              rounds=metrics.rounds - rounds_before + 1)


def _count_components(links: List[Tuple[int, int]]) -> int:
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    vertices = set()
    for a, b in links:
        vertices.add(a)
        vertices.add(b)
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra
    return len({find(v) for v in vertices})


# ---------------------------------------------------------------------------
# Registry spec (the Session/CLI entry point)
# ---------------------------------------------------------------------------


def _summarize(result: TwoCycleResult, graph: Graph) -> Dict[str, int]:
    return {
        "output_size": result.num_cycles,
        "attempts": result.attempts,
        "num_sampled": result.num_sampled,
        "rounds": result.rounds,
    }


def _describe(result: TwoCycleResult, graph: Graph, params) -> str:
    return (f"number of cycles: {result.num_cycles} "
            f"(sampled {result.num_sampled} vertices, "
            f"{result.attempts} attempt(s))")


register_algorithm(AlgorithmSpec(
    name="two-cycle",
    summary="count cycles (1-vs-2-Cycle input)",
    input_kind="cycle",
    run=ampc_one_vs_two_cycle,
    prepare=prepare_two_cycle,
    summarize=_summarize,
    describe=_describe,
    params=(
        ParamSpec("sample_probability", float, None,
                  "initial per-vertex sampling probability "
                  "(default ~n^-0.5)"),
        ParamSpec("walk_budget", int, None,
                  "per-walk step budget before the attempt is retried"),
    ),
    prep_seed_sensitive=False,  # only the sampling is seeded
))
