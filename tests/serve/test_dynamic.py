"""Dynamic-graph serving: the ``update`` op and worker respawn.

Updates flow through every serving layer — thread service, JSON-lines
protocol, process pool — and the process pool ships **deltas by
fingerprint pair** (never re-pickling the graph) and respawns crashed
workers in place.
"""

import io
import json
import os
import time

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.api import Session
from repro.graph.generators import erdos_renyi_gnm
from repro.serve import GraphService, ProcessGraphService, serve_stream

CONFIG = ClusterConfig(num_machines=4)
PROCESSES = int(os.environ.get("REPRO_SERVE_PROCESSES", "2"))


def _graph():
    return erdos_renyi_gnm(30, 80, seed=6)


def _batch(graph, count=3):
    edges = list(graph.edges())
    return [(u, v) for u, v in edges[:count]]


class TestGraphServiceUpdate:
    def test_update_then_query_matches_scratch(self):
        with GraphService(CONFIG, workers=2) as service:
            graph = _graph()
            service.load("g", graph)
            service.query("mis", "g", seed=1)
            deletions = _batch(graph)
            handle = service.update("g", deletions=deletions)
            assert handle.num_edges == 77
            result = service.query("mis", "g", seed=1)
            stats = service.stats()
            assert stats["incremental_updates"] == 1
            assert stats["full_prepares"] == 1
            scratch = Session(CONFIG).run("mis", graph, seed=1)
            assert (result.output.independent_set
                    == scratch.output.independent_set)

    def test_update_unknown_graph_raises(self):
        with GraphService(CONFIG, workers=1) as service:
            with pytest.raises(KeyError):
                service.update("nope", deletions=[(0, 1)])

    def test_update_invalidates_degree_weighted_derivation(self):
        with GraphService(CONFIG, workers=2) as service:
            graph = _graph()
            service.load("g", graph)
            service.query("msf", "g", seed=1)  # builds g#degree-weighted
            deletions = _batch(graph)
            service.update("g", deletions=deletions)
            result = service.query("msf", "g", seed=1)
            from repro.graph.generators import degree_weighted
            scratch = Session(CONFIG).run("msf", degree_weighted(graph),
                                          seed=1)
            assert result.output.forest == scratch.output.forest


class TestProtocolUpdate:
    def test_stream_update_round_trip(self):
        graph = _graph()
        edges = [[u, v] for u, v in graph.edges()]
        requests = [
            {"op": "load", "name": "g", "edges": edges, "id": 1},
            {"op": "run", "algorithm": "mis", "graph": "g", "seed": 1,
             "id": 2},
            {"op": "update", "graph": "g", "deletions": edges[:3],
             "insertions": [], "id": 3},
            {"op": "run", "algorithm": "mis", "graph": "g", "seed": 1,
             "id": 4},
            {"op": "stats", "id": 5},
            {"op": "shutdown", "id": 6},
        ]
        output = io.StringIO()
        with GraphService(CONFIG, workers=2) as service:
            serve_stream(
                service,
                io.StringIO("\n".join(json.dumps(r) for r in requests)
                            + "\n"),
                output)
        responses = [json.loads(line)
                     for line in output.getvalue().splitlines()]
        assert [r["ok"] for r in responses] == [True] * 6
        update = responses[2]
        assert update["edges"] == len(edges) - 3
        assert update["deletions"] == 3
        assert update["fingerprint"] != responses[0]["fingerprint"]
        assert responses[4]["stats"]["incremental_updates"] == 1
        # the post-update run really ran on the mutated graph
        for u, v in edges[:3]:
            graph.remove_edge(u, v)
        scratch = Session(CONFIG).run("mis", graph, seed=1)
        assert (responses[3]["result"]["summary"]["output_size"]
                == len(scratch.output.independent_set))

    def test_update_requires_arrays(self):
        with GraphService(CONFIG, workers=1) as service:
            service.load("g", _graph())
            from repro.serve.protocol import handle_request
            response = handle_request(
                service, {"op": "update", "graph": "g", "deletions": "x"})
            assert not response["ok"]


class TestProcpoolUpdate:
    def test_delta_ships_by_fingerprint_pair(self):
        with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
            graph = _graph()
            service.load("g", graph)
            service.query("mis", "g", seed=1, timeout=300)
            shipped = service.stats(timeout=60)["graphs_shipped"]
            deletions = _batch(graph)
            handle = service.update("g", deletions=deletions)
            assert handle.fingerprint != handle.ancestors[-1][1]
            result = service.query("mis", "g", seed=1, timeout=300)
            stats = service.stats(timeout=60)
            # the mutated graph was NOT re-pickled to the worker
            assert stats["graphs_shipped"] == shipped
            assert stats["updates"] == 1
            assert stats["incremental_updates"] == 1
            scratch = Session(CONFIG).run("mis", graph, seed=1)
            assert (result.output.independent_set
                    == scratch.output.independent_set)

    def test_update_before_any_query_ships_lazily(self):
        with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
            graph = _graph()
            service.load("g", graph)
            service.update("g", deletions=_batch(graph))
            result = service.query("mis", "g", seed=1, timeout=300)
            scratch = Session(CONFIG).run("mis", graph, seed=1)
            assert (result.output.independent_set
                    == scratch.output.independent_set)

    def test_update_unknown_graph_raises(self):
        with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
            with pytest.raises(KeyError):
                service.update("nope", deletions=[(0, 1)])


class TestWorkerRespawn:
    def test_dead_worker_is_replaced_and_reshipped(self):
        with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
            graph = _graph()
            service.load("g", graph)
            warm = service.query("mis", "g", seed=0, timeout=300)
            victim = next(c for c in service._clients if c.shipped)
            index = victim.index
            victim.process.terminate()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                replacement = service._clients[index]
                if replacement is not victim and replacement.alive:
                    break
                time.sleep(0.05)
            replacement = service._clients[index]
            assert replacement is not victim, "worker was not respawned"
            # the pool is back at full strength and the graph re-ships
            # lazily on the next query routed to the replacement
            result = service.query("mis", "g", seed=0, timeout=300)
            assert (result.output.independent_set
                    == warm.output.independent_set)
            stats = service.stats(timeout=60)
            assert stats["workers_respawned"] == 1
            assert stats["processes"] == PROCESSES
            alive = [c for c in service._clients if c.alive]
            assert len(alive) == PROCESSES

    def test_respawned_worker_serves_updates(self):
        with ProcessGraphService(CONFIG, processes=PROCESSES) as service:
            graph = _graph()
            service.load("g", graph)
            service.query("mis", "g", seed=0, timeout=300)
            victim = next(c for c in service._clients if c.shipped)
            index = victim.index
            victim.process.terminate()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if (service._clients[index] is not victim
                        and service._clients[index].alive):
                    break
                time.sleep(0.05)
            # updates skip the dead resident set; the next query ships
            # the already-mutated graph
            service.update("g", deletions=_batch(graph))
            result = service.query("mis", "g", seed=0, timeout=300)
            scratch = Session(CONFIG).run("mis", graph, seed=0)
            assert (result.output.independent_set
                    == scratch.output.independent_set)
