"""Tests for metrics and phase attribution."""

from repro.ampc import Metrics


def test_initial_counters_zero():
    metrics = Metrics()
    summary = metrics.summary()
    assert all(value == 0 for value in summary.values())


def test_charge_time_unattributed():
    metrics = Metrics()
    metrics.charge_time(1.5)
    assert metrics.simulated_time_s == 1.5
    assert metrics.phases.seconds["(unattributed)"] == 1.5


def test_phase_attribution():
    metrics = Metrics()
    with metrics.phase("SortGraph"):
        metrics.charge_time(2.0)
    with metrics.phase("PrimSearch"):
        metrics.charge_time(3.0)
    assert metrics.phases.seconds == {"SortGraph": 2.0, "PrimSearch": 3.0}
    assert metrics.phases.order == ["SortGraph", "PrimSearch"]
    assert metrics.phases.total() == 5.0


def test_nested_phases_charge_innermost():
    metrics = Metrics()
    with metrics.phase("outer"):
        metrics.charge_time(1.0)
        with metrics.phase("inner"):
            metrics.charge_time(2.0)
        metrics.charge_time(4.0)
    assert metrics.phases.seconds["outer"] == 5.0
    assert metrics.phases.seconds["inner"] == 2.0


def test_repeated_phase_accumulates():
    metrics = Metrics()
    for _ in range(3):
        with metrics.phase("loop"):
            metrics.charge_time(1.0)
    assert metrics.phases.seconds["loop"] == 3.0
    assert metrics.phases.order == ["loop"]


def test_kv_bytes_total():
    metrics = Metrics()
    metrics.kv_read_bytes = 100
    metrics.kv_write_bytes = 50
    assert metrics.kv_bytes == 150


def test_cache_hit_rate():
    metrics = Metrics()
    assert metrics.cache_hit_rate() == 0.0
    metrics.cache_hits = 3
    metrics.cache_misses = 1
    assert metrics.cache_hit_rate() == 0.75
