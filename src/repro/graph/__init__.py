"""Graph substrate: data structures, generators, properties and transforms.

This package provides the in-memory graph representations that every other
layer of the reproduction builds on.  Graphs are undirected, with vertices
identified by dense integers ``0..n-1``.  Weighted graphs carry one float
weight per undirected edge and expose a *strict total order* on edges (weight
with deterministic tie-breaking) so that minimum spanning forests are unique,
matching the assumption used throughout Section 3 of the paper.
"""

from repro.graph.graph import Graph, WeightedGraph, edge_key
from repro.graph.generators import (
    barabasi_albert_graph,
    chung_lu_graph,
    complete_graph,
    cycle_graph,
    degree_weighted,
    disjoint_union,
    erdos_renyi_gnm,
    grid_graph,
    path_graph,
    random_spanning_tree_graph,
    star_graph,
    two_cycles,
)
from repro.graph.line_graph import line_graph, line_graph_size
from repro.graph.properties import (
    GraphSummary,
    connected_component_sizes,
    connected_components,
    diameter,
    diameter_lower_bound,
    is_connected,
    summarize,
)
from repro.graph.ternarize import TernarizedGraph, ternarize

__all__ = [
    "Graph",
    "WeightedGraph",
    "edge_key",
    "barabasi_albert_graph",
    "chung_lu_graph",
    "complete_graph",
    "cycle_graph",
    "degree_weighted",
    "disjoint_union",
    "erdos_renyi_gnm",
    "grid_graph",
    "path_graph",
    "random_spanning_tree_graph",
    "star_graph",
    "two_cycles",
    "line_graph",
    "line_graph_size",
    "GraphSummary",
    "connected_component_sizes",
    "connected_components",
    "diameter",
    "diameter_lower_bound",
    "is_connected",
    "summarize",
    "TernarizedGraph",
    "ternarize",
]
