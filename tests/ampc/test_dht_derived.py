"""Derived (copy-on-write) DHT stores: the patch-in-place primitive.

A derived child overlays a sealed parent: writes and deletes land in the
overlay, reads fall through, and the child's aggregate accounting always
matches a from-scratch store with the same final content — while the
parent (which another cache entry may still serve) never changes at all.
"""

import pytest

from repro.ampc.dht import DHTStore, StoreSealedError


def _store(entries, num_shards=4, sealed=True):
    store = DHTStore("base", num_shards)
    for key, value in entries:
        store.write(key, value)
    if sealed:
        store.seal()
    return store


def _snapshot(store):
    return {key: store._entry(key, store.shard_of(key))
            for key in store.keys()}


class TestDerivation:
    def test_derive_requires_sealed_parent(self):
        store = _store([(1, "a")], sealed=False)
        with pytest.raises(StoreSealedError):
            store.derive()

    def test_child_reads_fall_through(self):
        parent = _store([(1, (2, 3)), (2, (1,)), (3, ())])
        child = parent.derive()
        assert child.lookup(1) == (2, 3)
        assert child.lookup(9) is None
        assert child.contains(2)
        values, size = child.lookup_many([1, 2, 9])
        assert values == [(2, 3), (1,), None]
        assert size > 0

    def test_child_reads_never_charge_the_parent(self):
        parent = _store([(1, "a"), (2, "b")])
        reads_before = list(parent.shard_reads)
        child = parent.derive()
        child.lookup(1)
        child.lookup_many([1, 2])
        child.contains(2)
        child.lookup_with_size(1)
        assert parent.shard_reads == reads_before
        assert sum(child.shard_reads) == 5

    def test_overlay_write_shadows_without_mutating_parent(self):
        parent = _store([(1, (2, 3)), (2, (1,))])
        before = _snapshot(parent)
        bytes_before = parent.total_value_bytes
        child = parent.derive()
        child.write(1, (9, 9, 9))
        child.write(7, (1,))
        assert child.lookup(1) == (9, 9, 9)
        assert child.lookup(7) == (1,)
        assert parent.lookup(1) == (2, 3)
        assert parent.lookup(7) is None
        assert _snapshot(parent) == before
        assert parent.total_value_bytes == bytes_before

    def test_accounting_matches_a_from_scratch_store(self):
        parent = _store([(k, (k, k + 1)) for k in range(10)])
        child = parent.derive()
        child.write(3, (0,))          # shadow with a smaller value
        child.write(99, (1, 2, 3))    # brand new key
        child.delete(5)               # tombstone a parent key
        child.write(4, (4, 5))        # overwrite with identical content
        child.delete(99)              # delete an overlay-only key
        child.write(5, (5,))          # resurrect a tombstoned key
        final = {key: child.lookup(key) for key in child.keys()}
        rebuilt = _store(sorted(final.items()), sealed=False)
        assert child.total_entries == rebuilt.total_entries == len(final)
        assert child.total_value_bytes == rebuilt.total_value_bytes
        assert len(child) == rebuilt.total_entries

    def test_delete_semantics(self):
        parent = _store([(1, "a"), (2, "b")])
        child = parent.derive()
        assert child.delete(1) is True
        assert child.delete(1) is False      # already tombstoned
        assert child.delete(42) is False     # never existed
        assert child.lookup(1) is None
        assert not child.contains(1)
        assert parent.lookup(1) == "a"
        assert sorted(child.keys()) == [2]

    def test_lookup_with_size_reports_live_entry(self):
        parent = _store([(1, (2, 3))])
        child = parent.derive()
        value, size = child.lookup_with_size(1)
        assert value == (2, 3)
        assert size == parent.lookup_with_size(1)[1]
        child.write(1, (2, 3, 4, 5))
        assert child.lookup_with_size(1)[1] > size

    def test_chained_derivation(self):
        parent = _store([(1, "a"), (2, "b")])
        child = parent.derive()
        child.write(2, "B")
        child.write(3, "c")
        child.seal()
        grandchild = child.derive()
        grandchild.delete(1)
        grandchild.write(4, "d")
        assert grandchild.lookup(2) == "B"   # child overlay
        assert grandchild.lookup(1) is None  # own tombstone
        assert grandchild.lookup(3) == "c"
        assert sorted(grandchild.keys()) == [2, 3, 4]
        assert parent.lookup(1) == "a"
        # names keep a single +delta tag across generations
        assert grandchild.name.count("+delta") == 1

    def test_sealed_child_rejects_writes_and_deletes(self):
        child = _store([(1, "a")]).derive()
        child.seal()
        with pytest.raises(StoreSealedError):
            child.write(2, "b")
        with pytest.raises(StoreSealedError):
            child.delete(1)
        assert child.lookup(1) == "a"

    def test_strict_rounds_inherited(self):
        store = DHTStore("base", 2, strict_rounds=True)
        store.write(1, "a")
        store.seal()
        child = store.derive()
        with pytest.raises(StoreSealedError):
            child.lookup(1)  # unsealed child, strict mode
        child.seal()
        assert child.lookup(1) == "a"

    def test_write_many_returns_total_bytes(self):
        parent = _store([(1, "a")])
        child = parent.derive()
        total = child.write_many([(1, "xyz"), (2, "pq")])
        assert total == (child.lookup_with_size(1)[1]
                         + child.lookup_with_size(2)[1])
