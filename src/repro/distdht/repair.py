"""Anti-entropy for the socket DHT: digest replicas, copy divergence.

Hinted handoff and read-repair (see :mod:`repro.distdht.sockets`) heal
the differences the client *witnesses*.  This module heals the ones it
doesn't: :func:`repair_store` asks every node for per-key record digests
(one DIGEST frame each), compares each key across its replica set, and
copies the winning record onto the replicas that are missing it or hold
something else — looping until a full pass finds every digest equal.

Conflict resolution is **tombstone-wins**: a delete marker on any
replica beats a live record everywhere (the delete happened; the live
copy is the replica that missed it).  Otherwise the first holder in
replica order wins — records are immutable under the sealed-store
discipline, so differing live records only occur mid-write and converge
on the next pass.

Everything here moves raw backing-store bytes, strictly below the
:class:`~repro.distdht.store.BackedDHTStore` accounting boundary:
simulated metrics cannot observe a repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.distdht.backing import TOMBSTONE, record_digest


def _namespace_label(key: bytes) -> str:
    """The ``BackedDHTStore`` namespace a raw key belongs to.

    Namespaces look like ``s<pid>.<n>|<store name>|`` (see
    :func:`repro.distdht.store._fresh_namespace`); keys written outside
    the adapter report as ``(raw)``.
    """
    first = key.find(b"|")
    if first < 0:
        return "(raw)"
    second = key.find(b"|", first + 1)
    if second < 0:
        return "(raw)"
    return key[:second + 1].decode("ascii", "replace")


@dataclass
class RepairReport:
    """What one :func:`repair_store` sweep did.

    ``converged`` is True only when a full digest pass found every
    reachable replica equal — the sweep's success criterion.  A report
    with ``nodes_unreachable`` or ``copy_failures`` can still converge
    on the *reachable* part of the cluster.
    """

    prefix: bytes = b""
    rounds: int = 0
    keys_checked: int = 0
    keys_copied: int = 0
    tombstones_copied: int = 0
    nodes_unreachable: int = 0
    copy_failures: int = 0
    converged: bool = False
    #: per-namespace breakdown: {namespace: {"checked": n, "copied": m}}
    namespaces: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "prefix": self.prefix.decode("utf-8", "replace"),
            "rounds": self.rounds,
            "keys_checked": self.keys_checked,
            "keys_copied": self.keys_copied,
            "tombstones_copied": self.tombstones_copied,
            "nodes_unreachable": self.nodes_unreachable,
            "copy_failures": self.copy_failures,
            "converged": self.converged,
            "namespaces": {name: dict(counts)
                           for name, counts in self.namespaces.items()},
        }


def repair_store(store, *, prefix: bytes = b"",
                 max_rounds: int = 4) -> RepairReport:
    """Converge a :class:`~repro.distdht.sockets.SocketBackingStore`'s
    replicas for every key under ``prefix``.

    Each round: digest every node, pick a winner per divergent key
    (tombstone-wins, else first holder in replica order), copy it to the
    replicas that disagree.  A round that finds nothing to copy proves
    convergence; ``max_rounds`` bounds pathological churn (concurrent
    writers) rather than normal operation, which needs two rounds — one
    that copies and one that verifies.
    """
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    report = RepairReport(prefix=prefix)
    tomb_digest = record_digest(TOMBSTONE)
    node_count = len(store.nodes)
    for round_index in range(max_rounds):
        report.rounds = round_index + 1
        digests: List[Optional[Dict[bytes, bytes]]] = []
        for index in range(node_count):
            try:
                digests.append(store.node_digest(index, prefix))
            except ConnectionError:
                digests.append(None)
        report.nodes_unreachable = sum(1 for d in digests if d is None)
        if report.nodes_unreachable == node_count:
            return report  # nobody answered; nothing to compare
        keys: set = set()
        for node_digests in digests:
            if node_digests:
                keys.update(node_digests)
        report.keys_checked = max(report.keys_checked, len(keys))
        checked: Dict[str, int] = {}
        copies: List[Tuple[bytes, int, List[int]]] = []
        for key in sorted(keys):
            label = _namespace_label(key)
            checked[label] = checked.get(label, 0) + 1
            views = [(index, digests[index].get(key))
                     for index in store.replicas_for(key)
                     if digests[index] is not None]
            holders = [(index, digest) for index, digest in views
                       if digest is not None]
            if not holders:
                # Every reachable *replica* lacks the key, so it came
                # from an off-replica node (replication reconfigured
                # between runs): that node is the copy source.
                holders = [(index, node_digests[key])
                           for index, node_digests in enumerate(digests)
                           if node_digests is not None
                           and key in node_digests]
            winner = next(((index, digest) for index, digest in holders
                           if digest == tomb_digest), holders[0])
            source, winning_digest = winner
            targets = [index for index, digest in views
                       if digest != winning_digest]
            if targets:
                copies.append((key, source, targets))
        for label, count in checked.items():
            bucket = report.namespaces.setdefault(
                label, {"checked": 0, "copied": 0})
            bucket["checked"] = count
        if not copies:
            report.converged = True
            return report
        for key, source, targets in copies:
            try:
                record = store.node_get_record(source, key)
            except ConnectionError:
                report.copy_failures += 1
                continue
            if record is None:
                continue  # raced a concurrent delete_prefix; next round
            label = _namespace_label(key)
            for target in targets:
                try:
                    store.node_put_record(target, key, record)
                except ConnectionError:
                    report.copy_failures += 1
                    continue
                report.keys_copied += 1
                if record == TOMBSTONE:
                    report.tombstones_copied += 1
                bucket = report.namespaces.setdefault(
                    label, {"checked": 0, "copied": 0})
                bucket["copied"] += 1
    return report  # max_rounds exhausted without a clean verify pass
