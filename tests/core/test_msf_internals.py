"""Unit tests for the MSF pipeline internals."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampc import AMPCRuntime, ClusterConfig
from repro.core.msf import (
    _default_budget,
    _kruskal_records,
    _order_normalized,
    _records_to_graph,
    truncated_prim_round,
)
from repro.core.ranks import vertex_ranks
from repro.graph import WeightedGraph, ternarize
from repro.graph.generators import erdos_renyi_gnm, random_weighted
from repro.graph.graph import edge_key
from repro.sequential import kruskal_msf
from repro.trees.treap import build_ternary_treap

CONFIG = ClusterConfig(num_machines=4)


class TestOrderNormalization:
    def test_preserves_msf(self):
        graph = random_weighted(erdos_renyi_gnm(30, 80, seed=1), seed=1)
        normalized = _order_normalized(graph)
        assert kruskal_msf(graph) == kruskal_msf(normalized)

    def test_weights_are_distinct_rank_indices(self):
        graph = WeightedGraph.from_edges(
            4, [(0, 1, 5.0), (1, 2, 5.0), (2, 3, 1.0)])
        normalized = _order_normalized(graph)
        weights = sorted(w for _, _, w in normalized.edges())
        assert weights == [0.0, 1.0, 2.0]
        # Lightest edge gets rank 0; ties resolve by endpoints.
        assert normalized.weight(2, 3) == 0.0
        assert normalized.weight(0, 1) == 1.0


class TestRecordsToGraph:
    def test_collapses_parallel_edges_to_min(self):
        records = [
            (5.0, 0, 1, "a", "b"),
            (2.0, 2, 3, "a", "b"),  # lighter parallel super-edge wins
            (7.0, 4, 5, "b", "c"),
        ]
        graph, id_map = _records_to_graph(records)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        # The surviving a-b representative is the original edge (2, 3).
        locals_sorted = sorted(id_map.items())
        assert (2, 3) in id_map.values()
        assert (0, 1) not in id_map.values()

    def test_drops_self_loops(self):
        records = [(1.0, 0, 1, "x", "x"), (2.0, 2, 3, "x", "y")]
        graph, _ = _records_to_graph(records)
        assert graph.num_edges == 1

    def test_rank_index_weights(self):
        records = [(9.0, 0, 1, "a", "b"), (3.0, 2, 3, "b", "c")]
        graph, _ = _records_to_graph(records)
        assert sorted(w for _, _, w in graph.edges()) == [0.0, 1.0]


class TestKruskalRecords:
    def test_basic_forest(self):
        records = [
            (1.0, 0, 1, "a", "b"),
            (2.0, 1, 2, "b", "c"),
            (3.0, 0, 2, "a", "c"),  # closes a cycle: rejected
        ]
        assert _kruskal_records(records) == [(0, 1), (1, 2)]

    def test_tie_break_by_original_edge(self):
        records = [
            (1.0, 4, 5, "a", "b"),
            (1.0, 0, 1, "a", "b"),  # same weight, earlier original edge
        ]
        assert _kruskal_records(records) == [(0, 1)]


class TestDefaultBudget:
    def test_monotone_in_n(self):
        assert _default_budget(16, 0.5) <= _default_budget(4096, 0.5)

    def test_epsilon_scaling(self):
        assert _default_budget(4096, 0.25) < _default_budget(4096, 1.0)

    def test_minimum_two(self):
        assert _default_budget(0, 0.5) == 2
        assert _default_budget(1, 0.5) == 2


class TestTruncatedPrimRound:
    def _run(self, n, m, seed, budget=None):
        graph = random_weighted(erdos_renyi_gnm(n, m, seed=seed), seed=seed)
        tern = ternarize(_order_normalized(graph))
        runtime = AMPCRuntime(config=CONFIG)
        budget = budget or _default_budget(tern.graph.num_vertices, 0.5)
        return tern, runtime, truncated_prim_round(
            tern.graph, runtime=runtime, seed=seed, budget=budget)

    def test_prim_edges_subset_of_msf(self):
        tern, _, (prim_edges, _, __) = self._run(60, 120, seed=2)
        msf = set(kruskal_msf(tern.graph))
        assert prim_edges <= msf

    def test_contraction_shrinks_by_budget_factor(self):
        """Lemma 3.3 at unit-test scale."""
        tern, _, (_, __, contracted_n) = self._run(400, 800, seed=3)
        t_n = tern.graph.num_vertices
        budget = _default_budget(t_n, 0.5)
        assert contracted_n < t_n / (budget / 4)

    def test_query_cost_bounded_by_treap_subtrees(self):
        """Lemma A.2: total Prim queries <= c * sum of treap subtree sizes
        (equivalently, of vertex depths)."""
        graph = random_weighted(erdos_renyi_gnm(200, 400, seed=4), seed=4)
        tern = ternarize(_order_normalized(graph))
        t_graph = tern.graph
        runtime = AMPCRuntime(config=CONFIG)
        truncated_prim_round(t_graph, runtime=runtime, seed=4,
                             budget=t_graph.num_vertices)  # no truncation
        queries = runtime.metrics.kv_reads
        forest = kruskal_msf(t_graph)
        ranks = vertex_ranks(t_graph.num_vertices, seed=4)
        treap = build_ternary_treap(t_graph.num_vertices, forest, ranks)
        subtree_total = sum(treap.subtree_sizes())
        assert queries <= 3 * subtree_total

    def test_contracted_records_carry_original_edges(self):
        tern, _, (prim_edges, contracted, __) = self._run(40, 80, seed=5)
        edge_set = {edge_key(u, v) for u, v, _ in tern.graph.edges()}
        for w, ou, ov, cu, cv in contracted:
            assert edge_key(ou, ov) in edge_set
            assert cu != cv


@given(st.integers(min_value=4, max_value=20),
       st.integers(min_value=0, max_value=200))
@settings(max_examples=15, deadline=None)
def test_order_normalization_property(n, seed):
    m = min(3 * n, n * (n - 1) // 2)
    graph = random_weighted(erdos_renyi_gnm(n, m, seed=seed), seed=seed)
    assert kruskal_msf(graph) == kruskal_msf(_order_normalized(graph))
