"""Multi-host socket backend: binary KV protocol, ring placement, healing.

One :class:`DHTNodeServer` is one storage node — a threaded TCP server
over an in-memory byte map, speaking a length-prefixed binary protocol
(one op byte, a little-endian u32 payload length, then the payload; the
response mirrors it with a status byte).  ``python -m repro dht-server``
runs one as a standalone process.

:class:`SocketBackingStore` is the client: keys place onto nodes by
**consistent hashing** (each node projected onto the ring at
``VNODES`` points via :func:`~repro.ampc.hashing.stable_hash`, a key
served by the first ``replication`` distinct nodes clockwise of its hash),
connections are **pooled** per node and reused across requests, transient
failures **retry with exponential backoff**, and reads **fail over** to
the next replica when a node is unreachable or misses the key — a killed
node mid-query costs a reconnect, not the query, as long as one replica
survives.

Replicas also *converge*, not just survive:

* **Node health / circuit breaker** — ``failure_threshold`` consecutive
  request failures mark a node down; replica walks then skip it (one
  bounded fast-fail instead of a retry storm per key) and a background
  prober PINGs it every ``probe_interval_s`` until it answers again.
* **Hinted handoff** — a write whose replica is down (or fails) is
  parked as a *hint* on a reachable peer (HINT/TAKE_HINTS frames) and
  replayed onto the node when the prober sees it return.  Deletes
  write :data:`~repro.distdht.backing.TOMBSTONE` marker records, so a
  delete a replica missed cannot resurrect on a later failover read.
* **Read-repair** — a read answered by a later replica writes the
  record back to the earlier replicas that missed it.
* **Anti-entropy** — :meth:`SocketBackingStore.repair` (DIGEST frames,
  see :mod:`repro.distdht.repair`) compares per-key digests across
  replicas and copies records until they agree; it runs automatically
  when a node rejoins and is exposed as the ``dht-repair`` CLI verb.

All of this happens strictly below the
:class:`~repro.distdht.store.BackedDHTStore` accounting boundary, so
repair traffic never shows up in simulated metrics.
"""

from __future__ import annotations

import json
import random
import socket
import socketserver
import struct
import threading
import time
from bisect import bisect_right
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.ampc.hashing import stable_hash
from repro.distdht.backing import (
    TOMBSTONE,
    BackingStore,
    record_digest,
    register_fetcher,
)
from repro.distdht.chaos import BlackholeError, ChaosInjector

# -- wire format ------------------------------------------------------------

_HEADER = struct.Struct("<BI")   # (op | status, payload length)
_U32 = struct.Struct("<I")

OP_PUT = 1
OP_GET = 2
OP_DELETE = 3
OP_CONTAINS = 4
OP_SCAN = 5
OP_DELETE_PREFIX = 6
OP_MPUT = 7
OP_MGET = 8
OP_PING = 9
OP_STATS = 10
OP_HINT = 11
OP_TAKE_HINTS = 12
OP_DIGEST = 13
OP_TOMBSTONE = 14

STATUS_OK = 0
STATUS_MISSING = 1
STATUS_ERROR = 2

#: virtual nodes per physical node on the consistent-hash ring
VNODES = 64

#: ceiling on a single retry backoff sleep, whatever the attempt count
DEFAULT_MAX_BACKOFF_S = 2.0

#: consecutive request failures before the health registry marks a node
#: down (0 disables the breaker entirely)
DEFAULT_FAILURE_THRESHOLD = 3

#: how often the background prober PINGs down nodes (0 = manual
#: :meth:`SocketBackingStore.probe_now` only)
DEFAULT_PROBE_INTERVAL_S = 0.5

#: hint-entry kind tags (first byte of a hint's stored key)
_HINT_PUT = b"P"
_HINT_PREFIX_DELETE = b"X"


def _recv_exact(sock: socket.socket, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send_frame(sock: socket.socket, tag: int, payload: bytes) -> None:
    sock.sendall(_HEADER.pack(tag, len(payload)) + payload)


def _recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    header = _recv_exact(sock, _HEADER.size)
    tag, length = _HEADER.unpack(header)
    return tag, _recv_exact(sock, length) if length else b""


def _pack_chunks(chunks: Sequence[bytes]) -> bytes:
    parts = [_U32.pack(len(chunks))]
    for chunk in chunks:
        parts.append(_U32.pack(len(chunk)))
        parts.append(chunk)
    return b"".join(parts)


def _unpack_chunks(payload: bytes) -> List[bytes]:
    count = _U32.unpack_from(payload, 0)[0]
    chunks = []
    offset = _U32.size
    for _ in range(count):
        length = _U32.unpack_from(payload, offset)[0]
        offset += _U32.size
        chunks.append(payload[offset:offset + length])
        offset += length
    return chunks


def _pack_pairs(pairs: Sequence[Tuple[bytes, bytes]]) -> bytes:
    chunks: List[bytes] = []
    for first, second in pairs:
        chunks.extend((first, second))
    return _pack_chunks(chunks)


def _unpack_pairs(payload: bytes) -> List[Tuple[bytes, bytes]]:
    chunks = _unpack_chunks(payload)
    return [(chunks[i], chunks[i + 1]) for i in range(0, len(chunks), 2)]


# -- server -----------------------------------------------------------------


class _NodeHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # one connection, many requests
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while True:
            try:
                op, payload = _recv_frame(self.request)
            except (ConnectionError, OSError):
                return
            try:
                chaos = getattr(self.server, "chaos", None)
                if chaos is not None:
                    chaos.before_request()
                status, reply = self._dispatch(op, payload, self.server)
            except BlackholeError:
                # Drop the request unanswered and kill the connection:
                # the client sees a reset mid-frame, like a half-dead
                # node that still accepts connects but never replies.
                try:
                    self.request.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                return
            except Exception as error:  # noqa: BLE001 - report, stay up
                status, reply = STATUS_ERROR, str(error).encode("utf-8")
            try:
                _send_frame(self.request, status, reply)
            except OSError:
                return

    @staticmethod
    def _dispatch(op: int, payload: bytes,
                  server: "_NodeServer") -> Tuple[int, bytes]:
        data: Dict[bytes, bytes] = server.data
        lock = server.data_lock
        if op == OP_PUT:
            klen = _U32.unpack_from(payload, 0)[0]
            key = payload[_U32.size:_U32.size + klen]
            value = payload[_U32.size + klen:]
            with lock:
                data[key] = value
            return STATUS_OK, b""
        if op == OP_GET:
            with lock:
                value = data.get(payload)
            if value is None:
                return STATUS_MISSING, b""
            return STATUS_OK, value
        if op == OP_DELETE:
            with lock:
                found = data.pop(payload, None) is not None
            return STATUS_OK, b"\x01" if found else b"\x00"
        if op == OP_TOMBSTONE:
            # A replicated delete: leave a marker so a replica that
            # missed the delete can never resurrect the key on failover
            # reads, and so anti-entropy propagates the delete itself.
            with lock:
                prior = data.get(payload)
                data[payload] = TOMBSTONE
            found = prior is not None and prior != TOMBSTONE
            return STATUS_OK, b"\x01" if found else b"\x00"
        if op == OP_CONTAINS:
            with lock:
                found = data.get(payload) not in (None, TOMBSTONE)
            return STATUS_OK, b"\x01" if found else b"\x00"
        if op == OP_SCAN:
            with lock:
                keys = [key for key, value in data.items()
                        if key.startswith(payload) and value != TOMBSTONE]
            return STATUS_OK, _pack_chunks(keys)
        if op == OP_DELETE_PREFIX:
            with lock:
                doomed = [key for key in data if key.startswith(payload)]
                for key in doomed:
                    del data[key]
            return STATUS_OK, _U32.pack(len(doomed))
        if op == OP_MPUT:
            items = _unpack_chunks(payload)
            with lock:
                for index in range(0, len(items), 2):
                    data[items[index]] = items[index + 1]
            return STATUS_OK, b""
        if op == OP_MGET:
            keys = _unpack_chunks(payload)
            with lock:
                found = [data.get(key) for key in keys]
            return STATUS_OK, _pack_chunks(
                [b"" if value is None else b"\x01" + value
                 for value in found])
        if op == OP_HINT:
            chunks = _unpack_chunks(payload)
            target = chunks[0]
            with lock:
                bucket = server.hints.setdefault(target, {})
                for index in range(1, len(chunks), 2):
                    bucket[chunks[index]] = chunks[index + 1]
            return STATUS_OK, _U32.pack((len(chunks) - 1) // 2)
        if op == OP_TAKE_HINTS:
            with lock:
                bucket = server.hints.pop(payload, {})
            return STATUS_OK, _pack_pairs(list(bucket.items()))
        if op == OP_DIGEST:
            with lock:
                pairs = [(key, record_digest(value))
                         for key, value in data.items()
                         if key.startswith(payload)]
            return STATUS_OK, _pack_pairs(pairs)
        if op == OP_PING:
            return STATUS_OK, b"pong"
        if op == OP_STATS:
            with lock:
                stats = {
                    "entries": len(data),
                    "payload_bytes": sum(len(v) for v in data.values()),
                    "tombstones": sum(1 for v in data.values()
                                      if v == TOMBSTONE),
                    "hints_held": sum(len(bucket)
                                      for bucket in server.hints.values()),
                }
            return STATUS_OK, json.dumps(stats).encode("utf-8")
        return STATUS_ERROR, f"unknown op {op}".encode("utf-8")


class _NodeServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._open_requests = set()
        self._open_lock = threading.Lock()
        #: optional ChaosInjector consulted per request (None = inert)
        self.chaos: Optional[ChaosInjector] = None

    def process_request(self, request, client_address):
        with self._open_lock:
            self._open_requests.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request):
        with self._open_lock:
            self._open_requests.discard(request)
        super().shutdown_request(request)

    def sever_connections(self) -> None:
        """Hard-close every live connection (what a real kill does).

        Without this an in-process close() would leave established
        handler threads happily serving pooled client connections, and
        'kill a node' tests would not actually kill anything.
        """
        with self._open_lock:
            requests = list(self._open_requests)
        for request in requests:
            try:
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass


class DHTNodeServer:
    """One standalone DHT storage node (``python -m repro dht-server``)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._server = _NodeServer((host, port), _NodeHandler)
        self._server.data = {}
        self._server.data_lock = threading.Lock()
        #: hints parked here for other nodes: target address bytes
        #: (``b"host:port"``) -> {kind-prefixed key -> payload}
        self._server.hints = {}
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return host, port

    @property
    def chaos(self) -> Optional[ChaosInjector]:
        """The active fault injector, or None when the node is clean."""
        return self._server.chaos

    def inject_chaos(self, *, latency_s: Optional[float] = None,
                     error_rate: Optional[float] = None,
                     blackhole: Optional[bool] = None,
                     seed: int = 0) -> ChaosInjector:
        """Arm (or reconfigure) fault injection on this live node.

        See :class:`~repro.distdht.chaos.ChaosInjector` for the knobs.
        Safe while serving; returns the injector for introspection.
        """
        injector = self._server.chaos
        if injector is None:
            injector = ChaosInjector(seed=seed)
            self._server.chaos = injector
        injector.configure(latency_s=latency_s, error_rate=error_rate,
                           blackhole=blackhole)
        return injector

    def heal(self) -> None:
        """Clear all injected faults; the node serves cleanly again."""
        injector = self._server.chaos
        if injector is not None:
            injector.heal()

    def sever_connections(self) -> None:
        """Hard-close every live connection without stopping the node.

        Chaos-harness sibling of :meth:`inject_chaos`: every pooled
        client connection dies at once (as on a node restart), but the
        listener keeps accepting, so clients reconnect and recover.
        """
        self._server.sever_connections()

    def start(self) -> "DHTNodeServer":
        """Serve on a background thread (tests / embedded use)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-dht-node-{self.address[1]}", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._server.serve_forever()

    def close(self) -> None:
        self._server.shutdown()
        self._server.sever_connections()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(5.0)

    def __enter__(self) -> "DHTNodeServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- client -----------------------------------------------------------------


class _NodeClient:
    """Pooled connections to one node, with retry and backoff.

    Backoff is exponential with **full jitter** and a ceiling: attempt
    ``i`` sleeps ``uniform(0, min(max_backoff_s, backoff_s * 2**i))``.
    Without the jitter every pooled client of a restarted node retries in
    lockstep and reconnects stampede the node; the cap keeps large retry
    budgets from sleeping for minutes.  ``rng`` is any object with a
    ``uniform(a, b)`` method — tests pass a seeded :class:`random.Random`
    to make the schedule deterministic.
    """

    def __init__(self, host: str, port: int, *, timeout: float,
                 retries: int, backoff_s: float, pool_size: int,
                 max_backoff_s: float = DEFAULT_MAX_BACKOFF_S,
                 rng: Optional[random.Random] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.pool_size = pool_size
        self._rng = rng if rng is not None else random.Random()
        self._pool: List[socket.socket] = []
        self._lock = threading.Lock()

    def _backoff_delay(self, attempt: int) -> float:
        """The jittered sleep before retry ``attempt + 1``."""
        ceiling = min(self.max_backoff_s, self.backoff_s * (2 ** attempt))
        return self._rng.uniform(0.0, ceiling)

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _checkout(self) -> Optional[socket.socket]:
        with self._lock:
            if self._pool:
                return self._pool.pop()
        return None

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if len(self._pool) < self.pool_size:
                self._pool.append(sock)
                return
        try:
            sock.close()
        except OSError:
            pass

    def request(self, op: int, payload: bytes) -> Tuple[int, bytes]:
        """One request/response round trip; retries transient failures.

        A pooled connection that fails is dropped and replaced; after
        ``retries`` fresh-connection failures the ConnectionError
        propagates (the caller's replica failover takes it from there).
        """
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            sock = self._checkout()
            fresh = sock is None
            try:
                if sock is None:
                    sock = self._connect()
                _send_frame(sock, op, payload)
                status, reply = _recv_frame(sock)
            except (OSError, ConnectionError) as error:
                last_error = error
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
                # A dirty pooled socket (server restarted between
                # requests) deserves an immediate fresh-connection try;
                # fresh-connection failures back off before retrying.
                if fresh and attempt < self.retries:
                    time.sleep(self._backoff_delay(attempt))
                continue
            self._checkin(sock)
            if status == STATUS_ERROR:
                raise RuntimeError(
                    f"dht node {self.host}:{self.port}: "
                    f"{reply.decode('utf-8', 'replace')}")
            return status, reply
        raise ConnectionError(
            f"dht node {self.host}:{self.port} unreachable: {last_error}")

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, []
        for sock in pool:
            try:
                sock.close()
            except OSError:
                pass


def _fetch_dht(locator) -> bytes:
    """Resolve a ``("dht", ((host, port), ...), key)`` locator.

    Tries each replica in placement order over a transient connection;
    the record must exist (and not be tombstoned) on some reachable
    replica.
    """
    _tag, nodes, key = locator
    last_error: Optional[Exception] = None
    for host, port in nodes:
        client = _NodeClient(host, port, timeout=10.0, retries=1,
                             backoff_s=0.05, pool_size=0)
        try:
            status, reply = client.request(OP_GET, key)
        except ConnectionError as error:
            last_error = error
            continue
        finally:
            client.close()
        if status == STATUS_OK and reply != TOMBSTONE:
            return reply
        last_error = KeyError(f"record {key!r} missing on {host}:{port}")
    raise last_error if last_error is not None else KeyError(key)


register_fetcher("dht", _fetch_dht)


class _HealthRegistry:
    """Per-node circuit breaker state shared by every client operation.

    ``threshold`` consecutive request failures open the circuit (the
    node is *down*); any success closes it again.  A threshold of 0
    disables the breaker — no node is ever marked down.
    """

    def __init__(self, count: int, threshold: int):
        self._threshold = threshold
        self._lock = threading.Lock()
        self._failures = [0] * count
        self._down = [False] * count
        self._down_since = [0.0] * count

    def note_failure(self, index: int) -> bool:
        """Record one failure; True when this one marks the node down."""
        if self._threshold <= 0:
            return False
        with self._lock:
            self._failures[index] += 1
            if (not self._down[index]
                    and self._failures[index] >= self._threshold):
                self._down[index] = True
                self._down_since[index] = time.monotonic()
                return True
        return False

    def note_success(self, index: int) -> bool:
        """Record one success; True when the node just came back up."""
        with self._lock:
            self._failures[index] = 0
            if self._down[index]:
                self._down[index] = False
                return True
        return False

    def is_down(self, index: int) -> bool:
        with self._lock:
            return self._down[index]

    def down_indexes(self) -> List[int]:
        with self._lock:
            return [i for i, down in enumerate(self._down) if down]

    def snapshot(self) -> List[Dict[str, Any]]:
        now = time.monotonic()
        with self._lock:
            return [
                {
                    "down": down,
                    "consecutive_failures": failures,
                    "down_for_s": round(now - since, 3) if down else 0.0,
                }
                for down, failures, since
                in zip(self._down, self._failures, self._down_since)
            ]


class SocketBackingStore(BackingStore):
    """Client-side view of a DHT node cluster.

    ``nodes`` is a non-empty list of ``(host, port)`` pairs (or
    ``"host:port"`` strings).  ``replication`` copies each record onto
    that many distinct ring-successive nodes; any reachable replica
    serves reads, which is what lets a query survive a killed node.

    Self-healing knobs (all per-store, defaults on):

    * ``failure_threshold`` — consecutive failures before a node is
      marked down and skipped in replica walks (0 disables).
    * ``probe_interval_s`` — background PING cadence for down nodes;
      0 means probe only via explicit :meth:`probe_now` calls.
    * ``hinted_handoff`` — park writes for down/failed replicas on a
      reachable peer, replayed on rejoin.
    * ``read_repair`` — write a failover read's record back to the
      earlier replicas that missed it.
    * ``repair_on_rejoin`` — run a full anti-entropy :meth:`repair`
      sweep whenever a down node comes back.
    """

    kind = "socket"
    remote = True

    _COUNTER_NAMES = (
        "fast_fails", "hints_parked", "hints_replayed", "read_repairs",
        "probes", "nodes_marked_down", "nodes_recovered", "auto_repairs",
    )

    def __init__(self, nodes: Sequence[Any], *, replication: int = 1,
                 timeout: float = 10.0, retries: int = 2,
                 backoff_s: float = 0.05, pool_size: int = 2,
                 max_backoff_s: float = DEFAULT_MAX_BACKOFF_S,
                 backoff_rng: Optional[random.Random] = None,
                 failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
                 probe_interval_s: float = DEFAULT_PROBE_INTERVAL_S,
                 hinted_handoff: bool = True,
                 read_repair: bool = True,
                 repair_on_rejoin: bool = True):
        if not nodes:
            raise ValueError("need at least one dht node")
        parsed = []
        for node in nodes:
            if isinstance(node, str):
                host, _, port = node.rpartition(":")
                parsed.append((host or "127.0.0.1", int(port)))
            else:
                parsed.append((str(node[0]), int(node[1])))
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.nodes: List[Tuple[str, int]] = parsed
        self.replication = min(replication, len(parsed))
        self._clients = [
            _NodeClient(host, port, timeout=timeout, retries=retries,
                        backoff_s=backoff_s, pool_size=pool_size,
                        max_backoff_s=max_backoff_s, rng=backoff_rng)
            for host, port in parsed
        ]
        # Consistent-hash ring: VNODES points per node, stable across
        # processes (stable_hash), so every client and every locator
        # agrees on placement without coordination.
        ring: List[Tuple[int, int]] = []
        for index, (host, port) in enumerate(parsed):
            for vnode in range(VNODES):
                ring.append((stable_hash(f"{host}:{port}#{vnode}"), index))
        ring.sort()
        self._ring = ring
        self._ring_hashes = [point[0] for point in ring]
        # -- self-healing state -------------------------------------------
        self.failure_threshold = failure_threshold
        self.probe_interval_s = probe_interval_s
        self.hinted_handoff = hinted_handoff
        self.read_repair = read_repair
        self.repair_on_rejoin = repair_on_rejoin
        #: callbacks invoked (with the node index) after a rejoined node
        #: has had its hints replayed and its auto-repair run
        self.on_rejoin: List[Callable[[int], None]] = []
        self._health = _HealthRegistry(len(parsed), failure_threshold)
        self._state_lock = threading.Lock()
        self._counters = {name: 0 for name in self._COUNTER_NAMES}
        self._pending_rejoin: List[int] = []
        self._probe_stop = threading.Event()
        self._probe_lock = threading.RLock()
        self._prober: Optional[threading.Thread] = None

    # -- placement --------------------------------------------------------

    def replicas_for(self, key: bytes) -> List[int]:
        """Node indexes serving ``key``, primary first (ring walk)."""
        position = bisect_right(self._ring_hashes, stable_hash(key))
        replicas: List[int] = []
        for step in range(len(self._ring)):
            index = self._ring[(position + step) % len(self._ring)][1]
            if index not in replicas:
                replicas.append(index)
                if len(replicas) == self.replication:
                    break
        return replicas

    # -- node health ------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._state_lock:
            self._counters[name] += amount

    def _note_failure(self, index: int) -> None:
        if self._health.note_failure(index):
            self._count("nodes_marked_down")
            self._ensure_prober()

    def _note_success(self, index: int) -> None:
        if self._health.note_success(index):
            self._count("nodes_recovered")
            with self._state_lock:
                self._pending_rejoin.append(index)
            # someone has to run the rejoin work (hint replay, repair):
            # the prober if configured, else the next probe_now() call
            self._ensure_prober()

    def _partition(self, replicas: Sequence[int]) -> Tuple[List[int],
                                                           List[int]]:
        """Split a replica walk into (attempt-now, known-down).

        When *every* replica is marked down the walk attempts all of
        them anyway (half-open: the only way back up without a prober).
        """
        up = [i for i in replicas if not self._health.is_down(i)]
        if not up:
            return list(replicas), []
        if len(up) == len(replicas):
            return up, []
        down = [i for i in replicas if i not in up]
        return up, down

    # -- prober -----------------------------------------------------------

    def _ensure_prober(self) -> None:
        if self.probe_interval_s <= 0 or self._probe_stop.is_set():
            return
        with self._state_lock:
            if self._prober is not None and self._prober.is_alive():
                return
            self._prober = threading.Thread(
                target=self._probe_loop, name="repro-dht-prober",
                daemon=True)
            self._prober.start()

    def _probe_loop(self) -> None:
        while not self._probe_stop.wait(self.probe_interval_s):
            try:
                self.probe_now()
            except Exception:  # noqa: BLE001 - the prober must survive
                pass

    def probe_now(self) -> List[int]:
        """PING every down node once; run rejoin work for recoveries.

        Returns the indexes of nodes that came back this call.  Tests
        (and stores built with ``probe_interval_s=0``) call this instead
        of waiting for the background prober.
        """
        with self._probe_lock:
            recovered: List[int] = []
            for index in self._health.down_indexes():
                self._count("probes")
                try:
                    self._clients[index].request(OP_PING, b"")
                except (ConnectionError, RuntimeError):
                    continue
                if self._health.note_success(index):
                    self._count("nodes_recovered")
                    recovered.append(index)
            with self._state_lock:
                pending, self._pending_rejoin = self._pending_rejoin, []
            for index in pending:
                if index not in recovered:
                    recovered.append(index)
            for index in recovered:
                self._on_rejoin(index)
            return recovered

    def _on_rejoin(self, index: int) -> None:
        """A down node answered again: replay its hints, then repair.

        Hint replay runs first so parked deletes (tombstones) and
        prefix-drops land before anti-entropy compares digests —
        otherwise the sweep would copy the stale records right back.
        """
        try:
            self._replay_hints_for(index)
        except Exception:  # noqa: BLE001 - rejoin is best-effort
            pass
        if self.repair_on_rejoin:
            try:
                self.repair()
                self._count("auto_repairs")
            except Exception:  # noqa: BLE001
                pass
        for callback in list(self.on_rejoin):
            try:
                callback(index)
            except Exception:  # noqa: BLE001
                pass

    # -- hinted handoff ---------------------------------------------------

    def _hint_target(self, index: int) -> bytes:
        host, port = self.nodes[index]
        return f"{host}:{port}".encode("ascii")

    def _park_hints(self, target_index: int,
                    entries: Sequence[Tuple[bytes, bytes]]) -> bool:
        """Park write intents for an unreachable node on a peer.

        Entries are ``(kind-prefixed key, payload)`` pairs; best-effort
        (a cluster where *no* peer is reachable simply loses the hints,
        exactly as the pre-hint code lost the replica copy).
        """
        if not entries or not self.hinted_handoff or len(self._clients) < 2:
            return False
        chunks: List[bytes] = [self._hint_target(target_index)]
        for kind_key, payload in entries:
            chunks.extend((kind_key, payload))
        frame = _pack_chunks(chunks)
        order = [(target_index + step) % len(self._clients)
                 for step in range(1, len(self._clients))]
        candidates = ([i for i in order if not self._health.is_down(i)]
                      + [i for i in order if self._health.is_down(i)])
        for index in candidates:
            try:
                self._clients[index].request(OP_HINT, frame)
            except ConnectionError:
                self._note_failure(index)
                continue
            self._note_success(index)
            self._count("hints_parked", len(entries))
            return True
        return False

    def _replay_hints_for(self, index: int) -> int:
        """Collect and apply every peer's parked hints for one node."""
        target = self._hint_target(index)
        replayed = 0
        for holder, client in enumerate(self._clients):
            if holder == index or self._health.is_down(holder):
                continue
            try:
                _status, reply = client.request(OP_TAKE_HINTS, target)
            except ConnectionError:
                self._note_failure(holder)
                continue
            self._note_success(holder)
            pairs = _unpack_pairs(reply)
            if not pairs:
                continue
            puts = [(kind_key[1:], payload) for kind_key, payload in pairs
                    if kind_key[:1] == _HINT_PUT]
            prefixes = [kind_key[1:] for kind_key, _payload in pairs
                        if kind_key[:1] == _HINT_PREFIX_DELETE]
            try:
                if puts:
                    self._clients[index].request(OP_MPUT, _pack_pairs(puts))
                # prefix-drops last: a namespace released while its
                # node was down must win over that namespace's writes
                for prefix in prefixes:
                    self._clients[index].request(OP_DELETE_PREFIX, prefix)
            except ConnectionError:
                self._note_failure(index)
                self._park_hints(index, pairs)  # it vanished again
                break
            replayed += len(pairs)
        if replayed:
            self._count("hints_replayed", replayed)
        return replayed

    # -- anti-entropy -----------------------------------------------------

    def repair(self, prefix: bytes = b"", *, max_rounds: int = 4):
        """Anti-entropy sweep: converge replicas under ``prefix``.

        See :func:`repro.distdht.repair.repair_store`; returns its
        :class:`~repro.distdht.repair.RepairReport`.
        """
        from repro.distdht.repair import repair_store
        return repair_store(self, prefix=prefix, max_rounds=max_rounds)

    # direct single-node accessors for the repair module (no failover,
    # tombstones returned verbatim) -------------------------------------

    def node_digest(self, index: int, prefix: bytes = b"") \
            -> Dict[bytes, bytes]:
        """``{key: record digest}`` for one node's keys under prefix."""
        try:
            _status, reply = self._clients[index].request(OP_DIGEST, prefix)
        except ConnectionError:
            self._note_failure(index)
            raise
        self._note_success(index)
        return dict(_unpack_pairs(reply))

    def node_get_record(self, index: int, key: bytes) -> Optional[bytes]:
        try:
            status, reply = self._clients[index].request(OP_GET, key)
        except ConnectionError:
            self._note_failure(index)
            raise
        self._note_success(index)
        return reply if status == STATUS_OK else None

    def node_put_record(self, index: int, key: bytes,
                        record: bytes) -> None:
        payload = _U32.pack(len(key)) + key + record
        try:
            self._clients[index].request(OP_PUT, payload)
        except ConnectionError:
            self._note_failure(index)
            raise
        self._note_success(index)

    # -- read repair ------------------------------------------------------

    def _repair_back(self, key: bytes, record: bytes,
                     indexes: Sequence[int]) -> None:
        payload = _U32.pack(len(key)) + key + record
        for index in indexes:
            try:
                self._clients[index].request(OP_PUT, payload)
            except ConnectionError:
                self._note_failure(index)
                continue
            self._note_success(index)
            self._count("read_repairs")

    # -- BackingStore -----------------------------------------------------

    def put(self, key: bytes, record: bytes) -> None:
        payload = _U32.pack(len(key)) + key + record
        attempt, skipped = self._partition(self.replicas_for(key))
        if skipped:
            self._count("fast_fails", len(skipped))
        reached = 0
        failed: List[int] = []
        last_error: Optional[Exception] = None
        for index in attempt:
            try:
                self._clients[index].request(OP_PUT, payload)
            except ConnectionError as error:
                last_error = error
                self._note_failure(index)
                failed.append(index)
                continue
            self._note_success(index)
            reached += 1
        if not reached:
            raise ConnectionError(
                f"no replica reachable for write: {last_error}")
        for index in skipped + failed:
            self._park_hints(index, [(_HINT_PUT + key, record)])

    def put_many(self, items: Sequence[Tuple[bytes, bytes]]) -> None:
        """Group items by replica node: one MPUT round trip per node."""
        per_node: Dict[int, List[bytes]] = {}
        hints: Dict[int, List[Tuple[bytes, bytes]]] = {}
        for key, record in items:
            attempt, skipped = self._partition(self.replicas_for(key))
            if skipped:
                self._count("fast_fails", len(skipped))
            for index in attempt:
                per_node.setdefault(index, []).extend((key, record))
            for index in skipped:
                hints.setdefault(index, []).append(
                    (_HINT_PUT + key, record))
        reached = 0
        last_error: Optional[Exception] = None
        for index, chunks in per_node.items():
            try:
                self._clients[index].request(OP_MPUT, _pack_chunks(chunks))
            except ConnectionError as error:
                last_error = error
                self._note_failure(index)
                hints.setdefault(index, []).extend(
                    (_HINT_PUT + chunks[i], chunks[i + 1])
                    for i in range(0, len(chunks), 2))
                continue
            self._note_success(index)
            reached += 1
        if per_node and not reached:
            raise ConnectionError(
                f"no replica reachable for batch write: {last_error}")
        for index, entries in hints.items():
            self._park_hints(index, entries)

    def get(self, key: bytes) -> Optional[bytes]:
        attempt, skipped = self._partition(self.replicas_for(key))
        if skipped:
            self._count("fast_fails", len(skipped))
        last_error: Optional[Exception] = None
        answered = False
        stale: List[int] = []   # up replicas that answered "missing"
        boundary = len(attempt)
        for position, index in enumerate(attempt + skipped):
            if answered and position >= boundary:
                break  # an up replica already answered authoritatively
            try:
                status, reply = self._clients[index].request(OP_GET, key)
            except ConnectionError as error:
                last_error = error
                self._note_failure(index)
                continue  # read failover: next replica
            self._note_success(index)
            answered = True
            if status != STATUS_OK:
                stale.append(index)
                continue  # miss failover: a later replica may hold it
            if reply == TOMBSTONE:
                return None  # the delete marker is authoritative
            if stale and self.read_repair:
                self._repair_back(key, reply, stale)
            return reply
        if answered:
            return None
        raise ConnectionError(
            f"every replica unreachable for read: {last_error}")

    def get_many(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        """Batched read with per-key replica failover.

        Round-based: every unresolved key is batched into one MGET per
        *next* replica node, so keys whose node just failed (or missed)
        advance together to the following replica — never back through
        the node that failed, and never one-by-one.
        """
        count = len(keys)
        results: List[Optional[bytes]] = [None] * count
        if not count:
            return results
        orders: List[List[int]] = []
        boundaries: List[int] = []  # where each key's down-tail starts
        for key in keys:
            attempt, skipped = self._partition(self.replicas_for(key))
            if skipped:
                self._count("fast_fails", len(skipped))
            orders.append(attempt + skipped)
            boundaries.append(len(attempt))
        ranks = [0] * count
        answered = [False] * count
        stale: List[List[int]] = [[] for _ in range(count)]
        errors: List[Optional[Exception]] = [None] * count
        repairs: Dict[int, List[Tuple[bytes, bytes]]] = {}
        active = list(range(count))
        while active:
            batches: Dict[int, List[int]] = {}
            for position in active:
                rank = ranks[position]
                exhausted = (rank >= len(orders[position])
                             or (answered[position]
                                 and rank >= boundaries[position]))
                if exhausted:
                    if not answered[position]:
                        raise ConnectionError(
                            "every replica unreachable for read: "
                            f"{errors[position]}")
                    continue  # authoritative miss: stays None
                batches.setdefault(orders[position][rank],
                                   []).append(position)
            active = []
            for index, positions in batches.items():
                try:
                    _status, reply = self._clients[index].request(
                        OP_MGET,
                        _pack_chunks([keys[p] for p in positions]))
                except ConnectionError as error:
                    self._note_failure(index)
                    for position in positions:
                        errors[position] = error
                        ranks[position] += 1
                        active.append(position)
                    continue
                self._note_success(index)
                for position, chunk in zip(positions,
                                           _unpack_chunks(reply)):
                    answered[position] = True
                    if not chunk:
                        stale[position].append(index)
                        ranks[position] += 1
                        active.append(position)
                        continue
                    value = chunk[1:]
                    if value == TOMBSTONE:
                        continue  # deleted: resolved as None
                    if stale[position] and self.read_repair:
                        for target in stale[position]:
                            repairs.setdefault(target, []).append(
                                (keys[position], value))
                    results[position] = value
        for index, items in repairs.items():
            try:
                self._clients[index].request(OP_MPUT, _pack_pairs(items))
            except ConnectionError:
                self._note_failure(index)
                continue
            self._note_success(index)
            self._count("read_repairs", len(items))
        return results

    def contains(self, key: bytes) -> bool:
        attempt, skipped = self._partition(self.replicas_for(key))
        if skipped:
            self._count("fast_fails", len(skipped))
        last_error: Optional[Exception] = None
        answered = False
        boundary = len(attempt)
        for position, index in enumerate(attempt + skipped):
            if answered and position >= boundary:
                break
            try:
                _status, reply = self._clients[index].request(
                    OP_CONTAINS, key)
            except ConnectionError as error:
                last_error = error
                self._note_failure(index)
                continue
            self._note_success(index)
            answered = True
            if reply == b"\x01":
                return True
        if answered:
            return False
        raise ConnectionError(
            f"every replica unreachable for contains: {last_error}")

    def delete(self, key: bytes) -> bool:
        attempt, skipped = self._partition(self.replicas_for(key))
        if skipped:
            self._count("fast_fails", len(skipped))
        found = False
        reached = 0
        failed: List[int] = []
        last_error: Optional[Exception] = None
        for index in attempt:
            try:
                _status, reply = self._clients[index].request(
                    OP_TOMBSTONE, key)
            except ConnectionError as error:
                last_error = error
                self._note_failure(index)
                failed.append(index)
                continue
            self._note_success(index)
            reached += 1
            found = found or reply == b"\x01"
        if not reached:
            raise ConnectionError(
                f"every replica unreachable for delete: {last_error}")
        for index in skipped + failed:
            self._park_hints(index, [(_HINT_PUT + key, TOMBSTONE)])
        return found

    def scan(self, prefix: bytes) -> List[bytes]:
        seen = set()
        reached = 0
        last_error: Optional[Exception] = None
        up = [i for i in range(len(self._clients))
              if not self._health.is_down(i)]
        down = [i for i in range(len(self._clients))
                if self._health.is_down(i)]
        if down:
            self._count("fast_fails", len(down))
        for phase in (up, down):
            if reached and phase is down:
                break
            for index in phase:
                try:
                    _status, reply = self._clients[index].request(
                        OP_SCAN, prefix)
                except ConnectionError as error:
                    last_error = error
                    self._note_failure(index)
                    continue
                self._note_success(index)
                reached += 1
                seen.update(_unpack_chunks(reply))
        if not reached:
            raise ConnectionError(
                f"every node unreachable for scan: {last_error}")
        return list(seen)

    def delete_prefix(self, prefix: bytes) -> int:
        dropped = 0
        unreached: List[int] = []
        for index, client in enumerate(self._clients):
            if self._health.is_down(index):
                self._count("fast_fails")
                unreached.append(index)
                continue
            try:
                _status, reply = client.request(OP_DELETE_PREFIX, prefix)
            except ConnectionError:
                self._note_failure(index)
                unreached.append(index)
                continue
            self._note_success(index)
            dropped = max(dropped, _U32.unpack(reply)[0])
        # a namespace released while a node is down would otherwise leak
        # (and anti-entropy would copy it back on rejoin): park the drop
        for index in unreached:
            self._park_hints(index, [(_HINT_PREFIX_DELETE + prefix, b"")])
        return dropped

    def share(self, key: bytes) -> Tuple[str, Tuple, bytes]:
        """-> ``("dht", replica (host, port) pairs, key)``.

        Self-contained: the fetching process connects straight to the
        replicas, so a locator survives the sharing store being closed —
        and a dead primary, thanks to the replica walk in the fetcher.
        """
        replicas = tuple(self.nodes[index]
                         for index in self.replicas_for(key))
        return ("dht", replicas, key)

    def ping(self) -> List[bool]:
        """Liveness of each node, index-aligned with ``nodes``."""
        alive = []
        for index, client in enumerate(self._clients):
            try:
                client.request(OP_PING, b"")
            except ConnectionError:
                self._note_failure(index)
                alive.append(False)
                continue
            self._note_success(index)
            alive.append(True)
        return alive

    def close(self) -> None:
        self._probe_stop.set()
        with self._state_lock:
            prober = self._prober
        if (prober is not None and prober.is_alive()
                and prober is not threading.current_thread()):
            prober.join(2.0)
        for client in self._clients:
            client.close()

    def health(self) -> Dict[str, Any]:
        """Breaker state per node plus the self-healing counters."""
        nodes = []
        for (host, port), state in zip(self.nodes, self._health.snapshot()):
            state["node"] = f"{host}:{port}"
            nodes.append(state)
        with self._state_lock:
            counters = dict(self._counters)
        return {"nodes": nodes, "counters": counters}

    def stats(self) -> Dict[str, Any]:
        per_node = []
        for client in self._clients:
            try:
                _status, reply = client.request(OP_STATS, b"")
                per_node.append(json.loads(reply.decode("utf-8")))
            except ConnectionError:
                per_node.append(None)
        return {
            "kind": self.kind,
            "remote": self.remote,
            "nodes": [f"{host}:{port}" for host, port in self.nodes],
            "replication": self.replication,
            "per_node": per_node,
            "health": self.health(),
        }
