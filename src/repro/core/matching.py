"""AMPC Maximal Matching (Section 4 / Section 5.4).

Two algorithms, both computing the lexicographically-first maximal matching
for hashed edge ranks (so they agree with each other and with the
sequential greedy reference):

* :func:`ampc_maximal_matching` — Theorem 2 part 2 as the paper implements
  it (Section 5.4): one shuffle builds the *edge-permuted graph* (each
  vertex's incident edges sorted by rank), it is written to the DHT, and a
  per-vertex query process resolves edges adaptively.  The per-machine
  cache stores one entry per **vertex** — either its matched partner or
  the highest-rank incident edge already known unmatched — exactly the
  cache the paper describes.  An optional per-search budget runs the
  multi-round vertex-truncated theory schedule.

* :func:`ampc_matching_phases` — Theorem 2 part 1 (Algorithm 4): peel
  O(log log Delta) levels; at each level run GreedyMM on the rank-sampled
  subgraph ``H_i`` (equivalently, MIS on its line graph — Proposition 4.2)
  and drop matched vertices.  The rank threshold ``Delta^{-0.5^i}`` knocks
  the maximum degree down to ``O(sqrt(Delta_i) log n)`` per Lemma 4.4.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.columnar import ColumnarRecords
from repro.ampc.dht import DHTStore
from repro.ampc.metrics import Metrics
from repro.ampc.runtime import AMPCRuntime
from repro.ampc.vector import HAVE_NUMPY, hash_ranks, np, placement_ids
from repro.api.incremental import patch_records, touched_vertices
from repro.api.registry import AlgorithmSpec, ParamSpec, register_algorithm
from repro.core.ranks import hash_rank
from repro.dataflow.columnar import (charge_map_stage, partition_boxed,
                                     roundrobin_counts, write_columnar_store)
from repro.dataflow.dofn import DoFn, MachineContext
from repro.graph.graph import Graph, edge_key

EdgeId = Tuple[int, int]

#: vertex cache states (the per-vertex cache of Section 5.4)
_MATCHED = "matched"
_SEARCHED = "searched"

_PARKED = object()

#: per-store memo of :meth:`_IsInMM._lower_incident` results.  The merge is
#: pure *uncharged* compute over values read from one sealed store, so its
#: result is reusable across machines and across runs against the same
#: store object (the Session serves cached artifacts by identity) without
#: moving any metric.  Weak keys: evicting an artifact frees its memo.
_LOWER_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: per-store memo of whole vertex-search outcomes.  Against a *sealed*
#: plain sim store, a ParDo stage's element sequence per machine is a
#: deterministic function of (store content, seed, budget, machine
#: count), and so is the evolution of the per-machine cache across that
#: sequence — so the outcome of element ``i`` on machine ``m`` and its
#: exact charge profile (cache hits, KV reads/bytes, per-shard
#: contention bumps) can be replayed verbatim on a later run.  Keyed by
#: (seed, budget) then (machine, index, vertex); any divergence in the
#: sequence simply misses the memo and records fresh.
_SEARCH_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


@dataclass
class MatchingResult:
    """Output of an AMPC maximal matching run."""

    matching: Set[EdgeId]
    metrics: Metrics
    rounds: int = 0
    #: Algorithm 4 only: matchings found per peeling level
    level_sizes: List[int] = field(default_factory=list)


def _edge_rank(seed: int, u: int, v: int) -> float:
    a, b = edge_key(u, v)
    return hash_rank(seed, a, b)


def _edge_order(seed: int, u: int, v: int) -> Tuple[float, int, int]:
    """Strict total order on edges: rank, then canonical endpoints."""
    a, b = edge_key(u, v)
    return (hash_rank(seed, a, b), a, b)


def _permuted_incident(vertex: int, neighbors: Sequence[int],
                       seed: int) -> Tuple[Tuple[float, int], ...]:
    """Incident edges of ``vertex`` as (rank, neighbor), rank-ascending."""
    incident = [(_edge_rank(seed, vertex, u), u) for u in neighbors]
    incident.sort(key=lambda pair: (pair[0],) + edge_key(vertex, pair[1]))
    return tuple(incident)


class _IsInMM(DoFn):
    """The vertex query process of Theorem 2 part 2.

    For each vertex, walk its incident edges in rank order; each edge is
    resolved by the recursive edge process (an edge joins the matching iff
    no lower-rank incident edge does).  Stops at the first matched edge.
    """

    def __init__(self, store: DHTStore, seed: int, *,
                 resolved_store: Optional[DHTStore] = None,
                 budget: Optional[int] = None):
        self._store = store
        self._seed = seed
        self._resolved_store = resolved_store
        self._budget = budget
        self._cache: Optional[Dict[int, tuple]] = None
        try:
            self._lower_memo = _LOWER_MEMO.setdefault(store, {})
        except TypeError:  # a store that cannot be weakly referenced
            self._lower_memo = {}
        self._search_memo = None
        if resolved_store is None and type(store) is DHTStore:
            try:
                per_store = _SEARCH_MEMO.setdefault(store, {})
            except TypeError:
                per_store = None
            if per_store is not None:
                self._search_memo = per_store.setdefault((seed, budget), {})
        self._elem_index = 0

    def start_machine(self, ctx: MachineContext) -> None:
        self._cache = {} if ctx.caching_enabled else None
        self._elem_index = 0

    def process(self, element, ctx):
        vertex, incident = element
        # whole-element replay only holds with the per-machine cache on
        # (its evolution is part of the recorded charge profile)
        memo = self._search_memo if self._cache is not None else None
        if memo is None:
            outcome = self._vertex_search(vertex, incident, ctx)
        else:
            index = self._elem_index
            self._elem_index = index + 1
            # the machine count pins the whole partition layout, and with
            # it the cache-evolution prefix the recorded charges assume
            key = (ctx.cluster.config.num_machines, ctx.machine_id, index,
                   vertex)
            entry = memo.get(key)
            shard_reads = self._store.shard_reads
            if entry is not None:
                outcome, hits, reads, read_bytes, shard_deltas = entry
                work = ctx.work
                work.cache_hits += hits
                work.kv_reads += reads
                work.kv_read_bytes += read_bytes
                for shard, delta in shard_deltas:
                    shard_reads[shard] += delta
            else:
                work = ctx.work
                hits0 = work.cache_hits
                reads0 = work.kv_reads
                bytes0 = work.kv_read_bytes
                shards0 = list(shard_reads)
                outcome = self._vertex_search(vertex, incident, ctx)
                memo[key] = (
                    outcome,
                    work.cache_hits - hits0,
                    work.kv_reads - reads0,
                    work.kv_read_bytes - bytes0,
                    tuple((shard, after - before) for shard, (after, before)
                          in enumerate(zip(shard_reads, shards0))
                          if after != before),
                )
        if outcome is _PARKED:
            yield ("parked", vertex, incident)
        elif outcome is not None:
            # Each matched edge is reported by both endpoints; the driver's
            # result set deduplicates.
            yield ("matched", vertex, outcome)

    # -- vertex state ------------------------------------------------------

    def _vertex_state(self, vertex: int, ctx: MachineContext):
        if self._cache is not None and vertex in self._cache:
            ctx.note_cache_hit()
            return self._cache[vertex]
        if self._resolved_store is not None:
            state = ctx.lookup(self._resolved_store, vertex)
            if state is not None:
                state = tuple(state)
                if self._cache is not None:
                    self._cache[vertex] = state
                return state
        return None

    def _set_matched(self, u: int, v: int, rank: float) -> None:
        if self._cache is not None:
            self._cache[u] = (_MATCHED, v, rank)
            self._cache[v] = (_MATCHED, u, rank)

    def _raise_searched(self, vertex: int, rank: float) -> None:
        """Record: every edge of ``vertex`` with rank <= ``rank`` is out."""
        if self._cache is None:
            return
        state = self._cache.get(vertex)
        if state is not None and state[0] == _MATCHED:
            return
        if state is None or state[1] < rank:
            self._cache[vertex] = (_SEARCHED, rank)

    def _edge_status_from_states(self, rank: float, a: int, b: int,
                                 ctx: MachineContext) -> Optional[bool]:
        """Resolve edge (a, b) from vertex states alone, if possible."""
        cache = self._cache
        if cache is not None and self._resolved_store is None:
            # hot configuration (cache on, no resolved overlay): the state
            # can only come from the cache, so consult it directly —
            # charge-identical to the general loop below
            work = ctx.work
            for x, y in ((a, b), (b, a)):
                state = cache.get(x)
                if state is None:
                    continue
                work.cache_hits += 1
                if state[0] == _MATCHED:
                    return state[1] == y and state[2] == rank
                if rank <= state[1]:  # state[0] is _SEARCHED
                    return False
            return None
        for x, y in ((a, b), (b, a)):
            state = self._vertex_state(x, ctx)
            if state is None:
                continue
            if state[0] == _MATCHED:
                return state[1] == y and state[2] == rank
            if state[0] == _SEARCHED and rank <= state[1]:
                return False
        return None

    # -- the edge query process (iterative recursion) -----------------------

    def _fetch_incident_pair(self, a: int, b: int, ctx: MachineContext,
                             counter):
        """Both endpoints' incident lists in one batched KV read.

        The edge process always needs both lists before it can merge the
        lower-rank edges, so the two keys are known up front — the
        batching seam of Section 5.3.  Charges (reads, bytes, budget
        counter) are identical to two single ``ctx.lookup`` calls.
        """
        counter[0] += 2
        incident_a, incident_b = ctx.lookup_many(self._store, (a, b))
        return incident_a or (), incident_b or ()

    def _lower_incident(self, rank: float, a: int, b: int,
                        incident_a, incident_b) -> List[Tuple[float, int, int]]:
        """Incident edges of a and b with order below edge (a, b), merged
        ascending by the global edge order.

        Pure uncharged compute — memoized by :meth:`_lower_with_charge`,
        which owns the paired KV fetch this merge consumes.
        """
        me = _edge_order(self._seed, a, b)
        merged = []
        for endpoint, incident in ((a, incident_a), (b, incident_b)):
            for r, u in incident:
                # inline edge_key: this loop touches every incident edge
                # below the query edge, twice per resolved edge
                order = ((r, endpoint, u) if endpoint < u
                         else (r, u, endpoint))
                if order < me:
                    merged.append((order, endpoint, u))
                else:
                    # Incident lists are rank-sorted: everything after is
                    # above this edge.
                    break
        merged.sort()
        previous = None
        result = []
        for order, x, y in merged:
            if order != previous:
                previous = order
                result.append((order[0], x, y))
        return result

    def _lower_with_charge(self, rank: float, a: int, b: int,
                           ctx: MachineContext, counter):
        """Memoized :meth:`_lower_incident`, with the paired fetch charged.

        First touch of an edge (per store) runs the real batched read and
        merge, then records the merge result together with the fetch's
        charge profile — read bytes and the two shard ids — which is a
        pure function of the sealed store's recorded entry sizes.  Every
        later touch replays *exactly* that charge (2 reads, same bytes,
        same per-shard contention bumps) without re-fetching values it
        would only re-merge.  The result is orientation-independent:
        every entry's sort key ``(rank, canonical edge)`` is unique, so
        the concatenation order of a's and b's contributions never shows.
        """
        memo_key = (a, b) if a < b else (b, a)
        entry = self._lower_memo.get(memo_key)
        if entry is not None:
            lower, read_bytes, shard_a, shard_b = entry
            if read_bytes is not None:
                counter[0] += 2
                work = ctx.work
                work.kv_reads += 2
                work.kv_read_bytes += read_bytes
                shard_reads = self._store.shard_reads
                shard_reads[shard_a] += 1
                shard_reads[shard_b] += 1
                return lower
        incident_a, incident_b = self._fetch_incident_pair(a, b, ctx,
                                                           counter)
        lower = self._lower_incident(rank, a, b, incident_a, incident_b)
        store = self._store
        if type(store) is DHTStore:
            # plain sim store: entry sizes and shard placement are frozen
            # in-process state, so the charge profile can be replayed
            # without going through the store (backed/derived stores keep
            # the real read on every touch)
            shard_a = store.shard_of(a)
            shard_b = store.shard_of(b)
            read_bytes = (16 + store._sizes[shard_a].get(a, 0)
                          + store._sizes[shard_b].get(b, 0))
            self._lower_memo[memo_key] = (lower, read_bytes,
                                          shard_a, shard_b)
        else:
            self._lower_memo[memo_key] = (lower, None, None, None)
        return lower

    def _resolve_edge(self, rank: float, a: int, b: int,
                      ctx: MachineContext, counter) -> object:
        """True if edge (a, b) is in the matching; _PARKED on budget."""
        if self._cache is not None and self._resolved_store is None:
            return self._resolve_edge_fast(rank, a, b, ctx, counter)
        known = self._edge_status_from_states(rank, a, b, ctx)
        if known is not None:
            return known
        # Frame: [rank, a, b, lower_edges, index]
        frames = [[rank, a, b,
                   self._lower_with_charge(rank, a, b, ctx, counter), 0]]
        returning: Optional[bool] = None
        while frames:
            if self._budget is not None and counter[0] > self._budget:
                return _PARKED
            frame = frames[-1]
            erank, ea, eb, lower, index = frame
            if returning is not None:
                child_in, returning = returning, None
                if child_in:
                    frames.pop()
                    returning = False
                    continue
                index += 1
                frame[4] = index
            descended = False
            while index < len(lower):
                crank, ca, cb = lower[index]
                known = self._edge_status_from_states(crank, ca, cb, ctx)
                if known is True:
                    frames.pop()
                    returning = False
                    descended = True
                    break
                if known is False:
                    index += 1
                    frame[4] = index
                    continue
                if self._budget is not None and counter[0] > self._budget:
                    return _PARKED
                frames.append([crank, ca, cb,
                               self._lower_with_charge(crank, ca, cb, ctx,
                                                       counter), 0])
                descended = True
                break
            if descended:
                continue
            # No lower-rank incident edge in the matching: this edge joins.
            self._set_matched(ea, eb, erank)
            frames.pop()
            returning = True
        return returning

    def _resolve_edge_fast(self, rank: float, a: int, b: int,
                           ctx: MachineContext, counter) -> object:
        """:meth:`_resolve_edge` for the hot configuration (per-machine
        cache on, no resolved-store overlay).

        Same descent, same charges, same cache transitions — but the
        per-child state probe and the memoized fetch-charge replay are
        inlined, because this loop is where the whole query phase spends
        its time and the method-call overhead alone is measurable.
        """
        cache = self._cache
        work = ctx.work
        memo = self._lower_memo
        store = self._store
        shard_reads = store.shard_reads
        budget = self._budget
        # edge status of (a, b) from cached vertex states alone
        state = cache.get(a)
        if state is not None:
            work.cache_hits += 1
            if state[0] == _MATCHED:
                return state[1] == b and state[2] == rank
            if rank <= state[1]:  # state[0] is _SEARCHED
                return False
        state = cache.get(b)
        if state is not None:
            work.cache_hits += 1
            if state[0] == _MATCHED:
                return state[1] == a and state[2] == rank
            if rank <= state[1]:
                return False
        memo_key = (a, b) if a < b else (b, a)
        entry = memo.get(memo_key)
        if entry is not None and entry[1] is not None:
            lower, read_bytes, shard_a, shard_b = entry
            counter[0] += 2
            work.kv_reads += 2
            work.kv_read_bytes += read_bytes
            shard_reads[shard_a] += 1
            shard_reads[shard_b] += 1
        else:
            lower = self._lower_with_charge(rank, a, b, ctx, counter)
        # Frame: [rank, a, b, lower_edges, index]
        frames = [[rank, a, b, lower, 0]]
        returning: Optional[bool] = None
        while frames:
            if budget is not None and counter[0] > budget:
                return _PARKED
            frame = frames[-1]
            erank, ea, eb, lower, index = frame
            if returning is not None:
                child_in, returning = returning, None
                if child_in:
                    frames.pop()
                    returning = False
                    continue
                index += 1
                frame[4] = index
            descended = False
            while index < len(lower):
                crank, ca, cb = lower[index]
                known = None
                check_other = True
                state = cache.get(ca)
                if state is not None:
                    work.cache_hits += 1
                    if state[0] == _MATCHED:
                        known = state[1] == cb and state[2] == crank
                        check_other = False
                    elif crank <= state[1]:
                        known = False
                        check_other = False
                if check_other:
                    state = cache.get(cb)
                    if state is not None:
                        work.cache_hits += 1
                        if state[0] == _MATCHED:
                            known = state[1] == ca and state[2] == crank
                        elif crank <= state[1]:
                            known = False
                if known is True:
                    frames.pop()
                    returning = False
                    descended = True
                    break
                if known is False:
                    index += 1
                    frame[4] = index
                    continue
                if budget is not None and counter[0] > budget:
                    return _PARKED
                memo_key = (ca, cb) if ca < cb else (cb, ca)
                entry = memo.get(memo_key)
                if entry is not None and entry[1] is not None:
                    clower, read_bytes, shard_a, shard_b = entry
                    counter[0] += 2
                    work.kv_reads += 2
                    work.kv_read_bytes += read_bytes
                    shard_reads[shard_a] += 1
                    shard_reads[shard_b] += 1
                else:
                    clower = self._lower_with_charge(crank, ca, cb, ctx,
                                                     counter)
                frames.append([crank, ca, cb, clower, 0])
                descended = True
                break
            if descended:
                continue
            # No lower-rank incident edge in the matching: this edge joins.
            cache[ea] = (_MATCHED, eb, erank)
            cache[eb] = (_MATCHED, ea, erank)
            frames.pop()
            returning = True
        return returning

    # -- the vertex process --------------------------------------------------

    def _vertex_search(self, vertex: int, incident, ctx: MachineContext):
        """Matched edge of ``vertex`` or None; _PARKED on budget."""
        fast = self._cache is not None and self._resolved_store is None
        state = self._vertex_state(vertex, ctx)
        if state is not None:
            if state[0] == _MATCHED:
                return edge_key(vertex, state[1])
            if state[0] == _SEARCHED and state[1] >= 1.0:
                return None
        counter = [0]
        resolve = self._resolve_edge_fast if fast else self._resolve_edge
        for rank, neighbor in incident:
            status = resolve(rank, vertex, neighbor, ctx, counter)
            if status is _PARKED:
                return _PARKED
            if status:
                return edge_key(vertex, neighbor)
            self._raise_searched(vertex, rank)
        self._raise_searched(vertex, 1.0)
        return None


@dataclass
class PreparedMatching:
    """The DHT-resident edge-permuted graph (Section 5.4 preprocessing)."""

    seed: int
    #: ``(vertex, rank-sorted incident edges)`` records
    records: List[Tuple[int, Tuple[Tuple[float, int], ...]]]
    store: DHTStore
    #: ``(num_machines, per-record machine ids)`` precomputed by the
    #: columnar prepare (None on the boxed path) — lets runs on the same
    #: cluster shape re-place records without re-hashing every key
    machines: Optional[Tuple[int, object]] = None


def _prepare_matching_columnar(graph, runtime: AMPCRuntime,
                               seed: int) -> PreparedMatching:
    """Columnar twin of :func:`prepare_matching`: same charges, flat arrays.

    The edge-permuted graph is one vectorized rank pass plus one lexsort
    over the CSR edge columns; see :func:`repro.core.mis._prepare_mis_columnar`
    for the record-order reasoning (identical here).
    """
    metrics = runtime.metrics
    cluster = runtime.cluster
    num_machines = cluster.config.num_machines
    csr = graph.csr()
    n = csr.num_vertices

    with metrics.phase("PermuteGraph"):
        indptr = np.asarray(csr.indptr)
        dst = np.asarray(csr.indices)
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        edge_ranks = hash_ranks(seed, lo, hi)
        keys = np.arange(n, dtype=np.int64)
        machines = placement_ids(keys, num_machines)
        record_order = np.lexsort((keys, keys % num_machines, machines))
        vertex_pos = np.empty(n, dtype=np.int64)
        vertex_pos[record_order] = np.arange(n, dtype=np.int64)
        # incident lists sort by (rank,) + edge_key(v, u), rank-ascending
        edge_order = np.lexsort((hi, lo, edge_ranks, vertex_pos[src]))
        counts = np.diff(indptr)
        out_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts[record_order], out=out_indptr[1:])
        records = ColumnarRecords.ragged(
            keys[record_order], out_indptr,
            edge_ranks[edge_order], dst[edge_order])
        record_machines = machines[record_order]
        charge_map_stage(cluster, roundrobin_counts(n, num_machines))
        cluster.charge_shuffle(records.total_element_bytes())

    with metrics.phase("KV-Write"):
        store = runtime.new_store("mm-permuted-graph")
        write_columnar_store(cluster, store, records, record_machines)
    runtime.next_round()
    return PreparedMatching(seed=seed, records=records.items(), store=store,
                            machines=(num_machines, record_machines))


def prepare_matching(graph: Graph, *,
                     runtime: Optional[AMPCRuntime] = None,
                     config: Optional[ClusterConfig] = None,
                     seed: int = 0) -> PreparedMatching:
    """The matching preprocessing: permute edges by rank, write to the DHT.

    One shuffle plus the KV-write round — cacheable across runs.
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    if HAVE_NUMPY and hasattr(graph, "csr"):
        return _prepare_matching_columnar(graph, runtime, seed)
    metrics = runtime.metrics

    # Round 1: the one shuffle — the edge-permuted (rank-sorted) graph.
    with metrics.phase("PermuteGraph"):
        nodes = runtime.pipeline.from_items(
            [(v, graph.neighbors(v)) for v in graph.vertices()]
        )
        permuted = nodes.map_elements(
            lambda record: (record[0],
                            _permuted_incident(record[0], record[1], seed)),
            name="permute-edges",
        )
        permuted = permuted.repartition(lambda record: record[0],
                                        name="place-permuted-graph")

    with metrics.phase("KV-Write"):
        store = runtime.new_store("mm-permuted-graph")
        runtime.write_store(permuted, store,
                            key_fn=lambda record: record[0],
                            value_fn=lambda record: record[1])
    runtime.next_round()
    return PreparedMatching(seed=seed, records=permuted.collect(),
                            store=store)


def update_matching(prepared: PreparedMatching, graph: Graph, *,
                    runtime: Optional[AMPCRuntime] = None,
                    config: Optional[ClusterConfig] = None,
                    seed: int = 0,
                    insertions=(), deletions=()) -> PreparedMatching:
    """Patch the DHT-resident edge-permuted graph after an edge batch.

    Edge ranks are a pure function of the endpoints and seed, so only the
    batch endpoints' rank-sorted incident lists change; they are rewritten
    into a derived copy-on-write child of the sealed store in O(batch).
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    if prepared.seed != seed:
        raise ValueError(
            f"prepared input was built for seed {prepared.seed}, "
            f"this update uses seed {seed}"
        )
    metrics = runtime.metrics
    touched = touched_vertices(insertions, deletions)
    with metrics.phase("PatchPermutedGraph"):
        patch = runtime.pipeline.from_items(
            [(v, _permuted_incident(v, graph.neighbors(v), seed))
             for v in touched]
        ).repartition(lambda record: record[0], name="place-permuted-patch")
    with metrics.phase("KV-Patch"):
        store = runtime.derive_store(prepared.store)
        runtime.write_store(patch, store,
                            key_fn=lambda record: record[0],
                            value_fn=lambda record: record[1])
    runtime.next_round()
    return PreparedMatching(seed=seed,
                            records=patch_records(prepared.records,
                                                  patch.collect()),
                            store=store)


def ampc_maximal_matching(graph: Graph, *,
                          runtime: Optional[AMPCRuntime] = None,
                          config: Optional[ClusterConfig] = None,
                          seed: int = 0,
                          search_budget: Optional[int] = None,
                          max_rounds: int = 64,
                          prepared: Optional[PreparedMatching] = None
                          ) -> MatchingResult:
    """Theorem 2 part 2: O(1)-round maximal matching via vertex searches.

    Without ``search_budget`` this is the 2-round practical implementation
    of Section 5.4; with it, the n^epsilon-truncated multi-round schedule.
    A ``prepared`` artifact (from :func:`prepare_matching`) skips the
    preprocessing shuffle and KV-write.
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    if prepared is None:
        prepared = prepare_matching(graph, runtime=runtime, seed=seed)
    elif prepared.seed != seed:
        raise ValueError(
            f"prepared input was built for seed {prepared.seed}, "
            f"this run uses seed {seed}"
        )
    store = prepared.store
    rounds_before = metrics.rounds
    if (prepared.machines is not None and prepared.machines[0]
            == runtime.cluster.config.num_machines):
        permuted = partition_boxed(runtime.pipeline, prepared.records,
                                   prepared.machines[1])
    else:
        permuted = runtime.pipeline.from_items(
            prepared.records, key_fn=lambda record: record[0]
        )

    matching: Set[EdgeId] = set()
    pending = permuted
    resolved_store: Optional[DHTStore] = None
    budget = search_budget
    if budget is not None:
        # A vertex must always be able to re-scan its incident list.
        budget = max(budget, 2 * graph.max_degree() + 2)
    rounds_used = 0
    while True:
        rounds_used += 1
        if rounds_used > max_rounds:
            raise RuntimeError(
                f"matching did not converge within {max_rounds} rounds"
            )
        with metrics.phase("IsInMM"):
            outcome = pending.par_do(
                _IsInMM(store, seed, resolved_store=resolved_store,
                        budget=budget),
                name="is-in-mm",
            )
        parked_records = []
        for tag, vertex, payload in outcome.collect():
            if tag == "matched":
                matching.add(payload)
            else:
                parked_records.append((vertex, payload))
        if budget is None or not parked_records:
            runtime.next_round()
            break
        with metrics.phase("CommitStates"):
            states = _vertex_states(graph, matching,
                                    {v for v, _ in parked_records}, seed)
            states_pcoll = runtime.pipeline.from_items(states)
            next_store = runtime.new_store(f"mm-states-r{rounds_used}")
            runtime.write_store(states_pcoll, next_store,
                                key_fn=lambda kv: kv[0],
                                value_fn=lambda kv: kv[1])
            resolved_store = next_store
        runtime.next_round()
        pending = runtime.pipeline.from_items(parked_records)

    # Round 1 is the preparation (possibly cache-served); the rest queried.
    return MatchingResult(matching=matching, metrics=metrics,
                          rounds=metrics.rounds - rounds_before + 1)


def _vertex_states(graph: Graph, matching: Set[EdgeId],
                   parked: Set[int], seed: int) -> List[Tuple[int, tuple]]:
    """Vertex states known after a truncated round (committed to the DHT)."""
    states: List[Tuple[int, tuple]] = []
    matched_partner: Dict[int, Tuple[int, float]] = {}
    for u, v in matching:
        rank = _edge_rank(seed, u, v)
        matched_partner[u] = (v, rank)
        matched_partner[v] = (u, rank)
    for vertex in graph.vertices():
        if vertex in matched_partner:
            partner, rank = matched_partner[vertex]
            states.append((vertex, (_MATCHED, partner, rank)))
        elif vertex not in parked:
            # Its search completed without finding a matched edge.
            states.append((vertex, (_SEARCHED, 1.0)))
    return states


# ---------------------------------------------------------------------------
# Theorem 2 part 1: Algorithm 4 (degree peeling in O(log log Delta) levels)
# ---------------------------------------------------------------------------


def _level_subgraph(graph: Graph, alive: Set[int], level: int, seed: int,
                    delta: int, log_n: float) -> Optional[Graph]:
    """The rank-sampled subgraph ``H_level`` of Algorithm 4, or None when
    the residual graph has no edges left."""
    residual, degree = _residual(graph, alive)
    if not residual:
        return None
    if degree > 10 * log_n:
        threshold = delta ** -(0.5 ** level)
        subgraph_edges = [
            edge for edge in _residual_edges(residual)
            if _edge_rank(seed, *edge) <= threshold
        ]
    else:
        subgraph_edges = list(_residual_edges(residual))
    level_graph = Graph(graph.num_vertices)
    for u, v in subgraph_edges:
        level_graph.add_edge(u, v)
    return level_graph


@dataclass
class PreparedMatchingPhases:
    """Algorithm 4 preprocessing: the level-1 sampled subgraph, staged.

    Only level 1 is known before any matching completes (later levels
    depend on which vertices matched), so the cacheable artifact is the
    level-1 subgraph plus its DHT-resident edge-permuted form — the
    PermuteGraph shuffle and KV-write every query would otherwise repeat.
    """

    seed: int
    level_graph: Optional[Graph]
    inner: Optional[PreparedMatching]


def prepare_matching_phases(graph: Graph, *,
                            runtime: Optional[AMPCRuntime] = None,
                            config: Optional[ClusterConfig] = None,
                            seed: int = 0) -> PreparedMatchingPhases:
    """Stage the level-1 sampled subgraph of Algorithm 4 into the DHT."""
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    n = graph.num_vertices
    delta = graph.max_degree()
    if delta == 0:
        return PreparedMatchingPhases(seed=seed, level_graph=None, inner=None)
    log_n = math.log(max(n, 2))
    level_graph = _level_subgraph(graph, set(graph.vertices()), 1, seed,
                                  delta, log_n)
    if level_graph is None:
        return PreparedMatchingPhases(seed=seed, level_graph=None, inner=None)
    inner = prepare_matching(level_graph, runtime=runtime, seed=seed)
    return PreparedMatchingPhases(seed=seed, level_graph=level_graph,
                                  inner=inner)


def ampc_matching_phases(graph: Graph, *,
                         runtime: Optional[AMPCRuntime] = None,
                         config: Optional[ClusterConfig] = None,
                         seed: int = 0,
                         prepared: Optional[PreparedMatchingPhases] = None
                         ) -> MatchingResult:
    """Algorithm 4: maximal matching by O(log log Delta) sampled levels.

    Level i keeps only the edges of rank at most ``Delta^{-0.5^i}`` (once
    the residual degree exceeds ``10 log n``), finds their greedy maximal
    matching via the MIS-on-line-graph query process of Proposition 4.2
    (the same query machinery as :func:`ampc_maximal_matching`, restricted
    to the sampled subgraph), and removes matched vertices.  A
    ``prepared`` artifact (from :func:`prepare_matching_phases`) serves
    level 1 from the cached DHT-resident subgraph.
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    n = graph.num_vertices
    delta = graph.max_degree()
    if delta == 0:
        return MatchingResult(matching=set(), metrics=metrics, rounds=0)
    if prepared is None:
        prepared = prepare_matching_phases(graph, runtime=runtime, seed=seed)
    elif prepared.seed != seed:
        raise ValueError(
            f"prepared input was built for seed {prepared.seed}, "
            f"this run uses seed {seed}"
        )
    log_n = math.log(max(n, 2))
    levels = max(1, math.ceil(math.log2(max(2.0, math.log2(max(delta, 2))))) + 1)
    rounds_before = metrics.rounds

    alive = set(graph.vertices())
    matching: Set[EdgeId] = set()
    level_sizes: List[int] = []
    for level in range(1, levels + 1):
        if level == 1 and prepared.level_graph is not None:
            level_graph: Optional[Graph] = prepared.level_graph
            inner = prepared.inner
        else:
            level_graph = _level_subgraph(graph, alive, level, seed,
                                          delta, log_n)
            inner = None
        if level_graph is None:
            break
        with metrics.phase(f"Level{level}"):
            level_result = ampc_maximal_matching(
                level_graph, runtime=runtime, seed=seed, prepared=inner
            )
        matched = level_result.matching
        level_sizes.append(len(matched))
        matching.update(matched)
        for u, v in matched:
            alive.discard(u)
            alive.discard(v)
    # Final sweep: the loop above is maximal w.h.p. (Lemma 4.5); guard
    # against the low-probability leftover deterministically.
    residual, degree = _residual(graph, alive)
    if residual:
        leftover = Graph(n)
        for u, v in _residual_edges(residual):
            leftover.add_edge(u, v)
        with metrics.phase("Cleanup"):
            tail = ampc_maximal_matching(leftover, runtime=runtime, seed=seed)
        matching.update(tail.matching)
        level_sizes.append(len(tail.matching))
    # Logical rounds: the level-1 preparation round (possibly cache-served)
    # plus everything executed after it — stable across cache states.
    return MatchingResult(matching=matching, metrics=metrics,
                          rounds=metrics.rounds - rounds_before + 1,
                          level_sizes=level_sizes)


def _residual(graph: Graph, alive: Set[int]):
    """Adjacency of the graph induced on ``alive`` + its max degree."""
    residual: Dict[int, List[int]] = {}
    degree = 0
    for v in alive:
        neighbors = [u for u in graph.neighbors(v) if u in alive]
        if neighbors:
            residual[v] = neighbors
            degree = max(degree, len(neighbors))
    return residual, degree


def _residual_edges(residual: Dict[int, List[int]]):
    for v, neighbors in residual.items():
        for u in neighbors:
            if v < u:
                yield (v, u)


# ---------------------------------------------------------------------------
# Registry spec (the Session/CLI entry point)
# ---------------------------------------------------------------------------


def _summarize(result: MatchingResult, graph: Graph) -> Dict[str, int]:
    return {"output_size": len(result.matching), "rounds": result.rounds}


def _describe(result: MatchingResult, graph: Graph, params) -> str:
    return (f"maximal matching: {len(result.matching)} edges "
            f"({result.rounds} rounds)")


register_algorithm(AlgorithmSpec(
    name="matching",
    summary="maximal matching",
    input_kind="graph",
    run=ampc_maximal_matching,
    prepare=prepare_matching,
    update=update_matching,
    summarize=_summarize,
    describe=_describe,
    params=(
        ParamSpec("search_budget", int, None,
                  "per-search KV lookup budget (runs the truncated "
                  "multi-round theory schedule)"),
    ),
    prep_seed_sensitive=True,  # edge ranks depend on the seed
))


def _summarize_phases(result: MatchingResult, graph: Graph) -> Dict[str, int]:
    return {"output_size": len(result.matching),
            "levels": len(result.level_sizes),
            "rounds": result.rounds}


def _describe_phases(result: MatchingResult, graph: Graph, params) -> str:
    return (f"maximal matching (Algorithm 4): {len(result.matching)} edges "
            f"over {len(result.level_sizes)} level(s)")


register_algorithm(AlgorithmSpec(
    name="matching-phases",
    summary="maximal matching via O(log log Δ) peeling levels (Algorithm 4)",
    input_kind="graph",
    run=ampc_matching_phases,
    prepare=prepare_matching_phases,
    summarize=_summarize_phases,
    describe=_describe_phases,
    prep_seed_sensitive=True,  # the level-1 sample depends on edge ranks
))
