#!/usr/bin/env bash
# Overload stress: a TCP serve front end (--processes 2) under admission
# control takes a concurrent burst priced ~4x past its queue ceiling.
# The burst must stay bounded — the tail sheds with a structured
# overloaded error carrying a retry-after hint, the admitted head
# completes, and the service recovers to serve follow-up traffic.
#
# CI runs this; it is also a local smoke test:
#
#     bash scripts/ci_overload_stress.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

PORT=${PORT:-7180}

# Per-worker budget: one cold mis query on the burst's graph shape fits,
# a second queues, the rest shed.  16 distinct graphs make every burst
# query price cold (repeat queries on a shipped graph are ~free).
BUDGET=$(python - <<'PY'
from repro.ampc.cluster import ClusterConfig
from repro.api import registry
from repro.serve import estimate_query_cost

print(estimate_query_cost(registry.get("mis"), 40, 100, cached=False,
                          config=ClusterConfig(num_machines=4)) * 1.2)
PY
)

python -m repro serve --machines 4 --processes 2 \
  --max-inflight-cost "$BUDGET" --port "$PORT" &
SERVER=$!
trap 'kill -TERM ${SERVER:-} 2>/dev/null || true' EXIT
for _ in $(seq 50); do
  python - "$PORT" <<'PY' 2>/dev/null && break || sleep 0.2
import socket, sys
socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=1).close()
PY
done

timeout 300 python - "$PORT" <<'PY'
import json
import socket
import sys
import threading

from repro.graph.generators import erdos_renyi_gnm

PORT = int(sys.argv[1])
BURST = 16


def ask(stream, request):
    stream.write(json.dumps(request) + "\n")
    stream.flush()
    return json.loads(stream.readline())


def one_query(index, responses):
    # own connection per query: the burst is concurrent, not pipelined
    graph = erdos_renyi_gnm(40, 100, seed=index)
    with socket.create_connection(("127.0.0.1", PORT), timeout=120) as conn:
        stream = conn.makefile("rw", encoding="utf-8")
        loaded = ask(stream, {"op": "load", "name": f"g{index}",
                              "edges": [[u, v] for u, v in graph.edges()]})
        assert loaded["ok"], loaded
        responses[index] = ask(stream, {"op": "run", "algorithm": "mis",
                                        "graph": f"g{index}",
                                        "seed": index, "id": index})


responses = [None] * BURST
threads = [threading.Thread(target=one_query, args=(index, responses))
           for index in range(BURST)]
for thread in threads:
    thread.start()
for thread in threads:
    thread.join(300)
assert all(r is not None for r in responses), "burst queries hung"

served = [r for r in responses if r["ok"]]
shed = [r for r in responses if r.get("overloaded")]
other = [r for r in responses if not r["ok"] and not r.get("overloaded")]
assert not other, f"non-structured failures: {other}"
assert served, "overload shed the whole burst, nothing served"
assert shed, "a 4x burst shed nothing -- admission control is asleep"
assert all(r["retry_after_s"] > 0 for r in shed), shed
assert all("overloaded" in r["error"] for r in shed), shed

# Recovery: after the burst drains, the same service serves fresh work,
# the shed counter is on the books, and no inflight cost leaks.
with socket.create_connection(("127.0.0.1", PORT), timeout=60) as conn:
    stream = conn.makefile("rw", encoding="utf-8")
    follow_up = ask(stream, {"op": "run", "algorithm": "matching",
                             "graph": f"g{served[0]['id']}", "seed": 99})
    assert follow_up["ok"], follow_up
    stats = ask(stream, {"op": "stats"})["stats"]
    assert stats["queries_shed"] == len(shed), stats
    assert stats["completed"] == len(served) + 1, stats
    admission = stats["admission"]
    assert admission["inflight_cost"] == 0.0, admission
    ask(stream, {"op": "shutdown"})

print(f"overload stress ok: {len(served)} served, {len(shed)} shed "
      f"with retry hints, recovered and drained cleanly")
PY

wait "$SERVER" 2>/dev/null || true
trap - EXIT
echo "OVERLOAD-STRESS-OK"
