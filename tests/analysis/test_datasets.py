"""Tests for the scaled dataset registry."""

import pytest

from repro.analysis.datasets import (
    DATASET_NAMES,
    build_dataset,
    cycle_instance,
    dataset_spec,
    load_dataset,
    load_weighted_dataset,
)
from repro.graph.properties import connected_component_sizes


# Small scale keeps these tests fast; structure is scale-invariant.
SCALE = 0.25


class TestRegistry:
    def test_five_datasets(self):
        assert DATASET_NAMES == ["OK-S", "TW-S", "FS-S", "CW-S", "HL-S"]

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            dataset_spec("nope")

    def test_specs_carry_paper_stats(self):
        for name in DATASET_NAMES:
            spec = dataset_spec(name)
            assert spec.paper.num_vertices > 1e6
            assert spec.paper.num_edges > spec.paper.num_vertices

    def test_size_ordering(self):
        graphs = {name: load_dataset(name, scale=SCALE)
                  for name in DATASET_NAMES}
        sizes = [graphs[name].num_edges for name in DATASET_NAMES]
        assert sizes == sorted(sizes)

    def test_component_structure(self):
        ok = load_dataset("OK-S", scale=SCALE)
        tw = load_dataset("TW-S", scale=SCALE)
        cw = load_dataset("CW-S", scale=SCALE)
        assert len(connected_component_sizes(ok)) == 1
        assert len(connected_component_sizes(tw)) == 2
        assert len(connected_component_sizes(cw)) == 23

    def test_hub_skew(self):
        """CW-S must have the most extreme hubs relative to average degree
        (the join-skew driver of Section 5.3)."""
        cw = load_dataset("CW-S", scale=SCALE)
        ok = load_dataset("OK-S", scale=SCALE)
        cw_ratio = cw.max_degree() / (2 * cw.num_edges / cw.num_vertices)
        ok_ratio = ok.max_degree() / (2 * ok.num_edges / ok.num_vertices)
        assert cw_ratio > ok_ratio

    def test_deterministic(self):
        a = build_dataset(dataset_spec("OK-S"), scale=SCALE)
        b = build_dataset(dataset_spec("OK-S"), scale=SCALE)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_cache_returns_same_object(self):
        a = load_dataset("OK-S", scale=SCALE)
        b = load_dataset("OK-S", scale=SCALE)
        assert a is b

    def test_weighted_uses_degree_rule(self):
        graph = load_dataset("OK-S", scale=SCALE)
        weighted = load_weighted_dataset("OK-S", scale=SCALE)
        u, v, w = next(iter(weighted.edges()))
        assert w == float(graph.degree(u) + graph.degree(v))

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_dataset(dataset_spec("OK-S"), scale=0)


class TestCycleInstances:
    def test_single_cycle(self):
        graph = cycle_instance(50, two=False, seed=1)
        assert graph.num_vertices == 100
        sizes = connected_component_sizes(graph)
        assert list(sizes.values()) == [100]

    def test_two_cycles(self):
        graph = cycle_instance(50, two=True, seed=1)
        sizes = connected_component_sizes(graph)
        assert sorted(sizes.values()) == [50, 50]

    def test_all_degree_two(self):
        graph = cycle_instance(40, two=True, seed=2)
        assert all(graph.degree(v) == 2 for v in graph.vertices())
