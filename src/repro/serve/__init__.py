"""The serving layer: concurrent queries over long-lived Sessions.

Five pieces:

* :class:`~repro.serve.service.GraphService` — owns one thread-safe
  :class:`~repro.api.session.Session` and a bounded worker pool; queries
  run concurrently with per-run metrics isolation while sharing the
  DHT-resident preprocessing.  Scales until the GIL does not.
* :class:`~repro.serve.procpool.ProcessGraphService` — the same contract
  across N worker **processes**, each owning a private Session, with
  fingerprint-affinity routing (all queries for a graph go to the worker
  whose cache is warm, graphs pickled across the boundary once) — the
  scale-out deployment for CPU-bound traffic, with autoscaling and
  hung-worker replacement.
* :mod:`repro.serve.admission` — load-adaptive admission control: every
  query is priced via the cost model before it runs, held against a
  token budget with a peak-hold load estimator, and shed with a
  structured retry-after hint when the service is overloaded.
* :mod:`repro.serve.protocol` — a JSON-lines protocol (stdio or TCP) the
  ``python -m repro serve`` subcommand speaks; drives either service.
* :mod:`repro.serve.pool` — the bounded worker pool, its
  :class:`~repro.serve.pool.PendingResult` future (cancellable, with
  queue-wait deadlines), and
  :meth:`~repro.serve.pool.WorkerPool.map_unordered`.
"""

from repro.serve.admission import (
    AdmissionController,
    OverloadedError,
    PeakHoldLoadEstimator,
    estimate_query_cost,
)
from repro.serve.pool import (
    CancelledError,
    DeadlineExceededError,
    PendingResult,
    ServiceClosedError,
    WorkerPool,
)
from repro.serve.procpool import ProcessGraphService, WorkerDiedError
from repro.serve.protocol import (
    ServiceServer,
    handle_request,
    serve_socket,
    serve_stream,
)
from repro.serve.service import GraphService, ServiceBase

__all__ = [
    "AdmissionController",
    "CancelledError",
    "DeadlineExceededError",
    "GraphService",
    "OverloadedError",
    "PeakHoldLoadEstimator",
    "PendingResult",
    "ProcessGraphService",
    "ServiceBase",
    "ServiceClosedError",
    "ServiceServer",
    "WorkerDiedError",
    "WorkerPool",
    "estimate_query_cost",
    "handle_request",
    "serve_socket",
    "serve_stream",
]
