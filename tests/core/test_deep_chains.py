"""Deep-dependency robustness: the query processes use explicit stacks.

A path whose ranks decrease monotonically toward one end forces the MIS /
matching query processes into their worst-case dependency depth (O(n));
the iterative implementations must handle it without recursion limits,
with and without the caching optimization.
"""

import sys

from repro.ampc import ClusterConfig
from repro.core import ampc_maximal_matching, ampc_mis, vertex_ranks
from repro.core.ranks import hash_rank
from repro.graph import path_graph
from repro.graph.graph import edge_key
from repro.sequential import greedy_matching, greedy_mis

CONFIG = ClusterConfig(num_machines=2)
DEPTH = 3000  # well beyond the default interpreter recursion limit


def test_depth_exceeds_recursion_limit():
    assert DEPTH > sys.getrecursionlimit()


def test_mis_on_deep_chain_cached():
    graph = path_graph(DEPTH)
    result = ampc_mis(graph, config=CONFIG, seed=2)
    expected = greedy_mis(graph, vertex_ranks(DEPTH, 2))
    assert result.independent_set == expected


def test_mis_on_deep_chain_uncached():
    graph = path_graph(DEPTH)
    config = CONFIG.with_overrides(caching=False)
    result = ampc_mis(graph, config=config, seed=2)
    expected = greedy_mis(graph, vertex_ranks(DEPTH, 2))
    assert result.independent_set == expected


def test_matching_on_deep_chain():
    graph = path_graph(DEPTH)
    result = ampc_maximal_matching(graph, config=CONFIG, seed=2)
    ranks = {
        edge_key(u, v): hash_rank(2, *edge_key(u, v))
        for u, v in graph.edges()
    }
    assert result.matching == greedy_matching(graph, ranks)
