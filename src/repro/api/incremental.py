"""Shared helpers for incremental (batch-dynamic) preprocessing hooks.

An :class:`~repro.api.registry.AlgorithmSpec` whose prepared artifact is a
set of adjacency-style records can implement ``update(prepared, graph, *,
runtime, seed, insertions, deletions)``: recompute only the records of the
vertices (or edges) the batch touched, write them into a derived
copy-on-write child of the artifact's sealed DHT store, and splice them
into the driver-side record list.  These helpers cover the splice and the
touched-set extraction; cost is proportional to the batch (plus one flat
copy of the record list), never to the edge count.

``insertions`` / ``deletions`` are the raw journal batch: they may overlap
(an edge removed and re-added in one batch appears in both), so hooks must
treat them as *touched* sets and recompute from the mutated graph — never
replay them blindly.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Sequence, Tuple

from repro.graph.graph import edge_key

__all__ = ["touched_vertices", "touched_edges", "patch_records"]


def touched_vertices(insertions: Iterable[Sequence],
                     deletions: Iterable[Sequence]) -> List[int]:
    """Sorted endpoints appearing in the batch (weights ignored)."""
    touched = set()
    for edge in insertions:
        touched.add(edge[0])
        touched.add(edge[1])
    for edge in deletions:
        touched.add(edge[0])
        touched.add(edge[1])
    return sorted(touched)


def touched_edges(insertions: Iterable[Sequence],
                  deletions: Iterable[Sequence]) -> List[Tuple[int, int]]:
    """Sorted canonical ``(u, v)`` keys of every edge in the batch."""
    touched = {edge_key(edge[0], edge[1]) for edge in insertions}
    touched.update(edge_key(edge[0], edge[1]) for edge in deletions)
    return sorted(touched)


def patch_records(records: Sequence, patched: Iterable,
                  removed: Iterable = (),
                  key: Callable[[Any], Any] = lambda record: record[0]
                  ) -> List:
    """Splice ``patched`` records into ``records``, dropping ``removed``.

    Surviving records keep their positions (replacements land in place);
    records for keys the old list did not contain append at the end in
    input order.  ``key`` extracts each record's identity — the vertex id
    for ``(vertex, payload)`` records, the canonical endpoint pair for
    edge records.  Returns a new list; the input is never mutated (the old
    prepared artifact may still serve another cache entry).
    """
    replacements = {}
    order: List = []
    for record in patched:
        record_key = key(record)
        if record_key not in replacements:
            order.append(record_key)
        replacements[record_key] = record
    dropped = set(removed)
    for record_key in dropped:
        replacements.pop(record_key, None)
    out: List = []
    for record in records:
        record_key = key(record)
        if record_key in dropped:
            continue
        replacement = replacements.pop(record_key, None)
        if replacement is not None:
            out.append(replacement)
        else:
            out.append(record)
    out.extend(replacements[record_key] for record_key in order
               if record_key in replacements)
    return out
