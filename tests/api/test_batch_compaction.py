"""Delta compaction in GraphHandle.apply_batch.

A churny stream frequently deletes an edge and re-inserts it in one
batch.  Matching 1:1 delete+re-insert pairs are logical no-ops and are
collapsed *before* any mutation or journaling, so they cost nothing: no
journal growth, no fingerprint advance, no ``update``-hook work on the
next run.  Real changes (weight changes, unpaired rows) survive intact.
"""

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.api import Session
from repro.api.session import _compact_batch
from repro.graph.generators import erdos_renyi_gnm
from repro.graph.graph import Graph, WeightedGraph

CONFIG = ClusterConfig(num_machines=4)


def _graph():
    g = Graph(6)
    for u, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:
        g.add_edge(u, v)
    return g


def _weighted():
    g = WeightedGraph(6)
    for u, v, w in [(0, 1, 1.5), (1, 2, 2.5), (2, 3, 3.5)]:
        g.add_edge(u, v, w)
    return g


class TestCompactBatchUnit:
    def test_matching_pair_compacts_to_nothing(self):
        insertions, deletions = _compact_batch(
            _graph(), [(0, 1)], [(0, 1)])
        assert insertions == []
        assert deletions == []

    def test_orientation_does_not_matter(self):
        insertions, deletions = _compact_batch(
            _graph(), [(1, 0)], [(0, 1)])
        assert insertions == []
        assert deletions == []

    def test_unpaired_rows_survive(self):
        insertions, deletions = _compact_batch(
            _graph(), [(0, 1), (4, 5)], [(0, 1), (2, 3)])
        assert insertions == [(4, 5)]
        assert deletions == [(2, 3)]

    def test_weighted_pair_compacts_only_at_the_same_weight(self):
        graph = _weighted()
        insertions, deletions = _compact_batch(
            graph, [(0, 1, 1.5)], [(0, 1)])
        assert insertions == []
        assert deletions == []
        # a re-insert at a different weight is a real weight change
        insertions, deletions = _compact_batch(
            graph, [(0, 1, 9.0)], [(0, 1)])
        assert insertions == [(0, 1, 9.0)]
        assert deletions == [(0, 1)]

    def test_ambiguous_multi_insert_is_left_alone(self):
        # the same edge inserted twice: order could matter, so the pair
        # matching refuses to guess (validation rejects such batches at
        # apply time anyway; the compactor must stay conservative)
        insertions, deletions = _compact_batch(
            _graph(), [(0, 1), (0, 1)], [(0, 1)])
        assert insertions == [(0, 1), (0, 1)]
        assert deletions == [(0, 1)]

    def test_empty_sides_short_circuit(self):
        graph = _graph()
        assert _compact_batch(graph, [(4, 5)], []) == ([(4, 5)], [])
        assert _compact_batch(graph, [], [(0, 1)]) == ([], [(0, 1)])


class TestApplyBatchIntegration:
    def test_noop_batch_leaves_fingerprint_and_journal_alone(self):
        graph = erdos_renyi_gnm(20, 40, seed=3)
        session = Session(CONFIG)
        handle = session.load("g", graph)
        fingerprint = handle.fingerprint
        version = graph.content_version
        edges = [tuple(e[:2]) for e in sorted(graph.edges())[:4]]
        handle.apply_batch(insertions=edges, deletions=edges)
        assert handle.fingerprint == fingerprint
        assert graph.content_version == version

    def test_mixed_batch_applies_only_the_real_changes(self):
        graph = _graph()
        session = Session(CONFIG)
        handle = session.load("g", graph)
        fingerprint = handle.fingerprint
        # (0,1) delete+re-insert compacts away; (2,3) delete and (4,5)
        # insert are real
        handle.apply_batch(insertions=[(0, 1), (4, 5)],
                           deletions=[(0, 1), (2, 3)])
        assert graph.has_edge(0, 1)
        assert graph.has_edge(4, 5)
        assert not graph.has_edge(2, 3)
        assert handle.fingerprint != fingerprint

    def test_compacted_noop_still_hits_the_preprocessing_cache(self):
        graph = erdos_renyi_gnm(20, 40, seed=3)
        session = Session(CONFIG)
        handle = session.load("g", graph)
        session.run("mis", "g", seed=1)
        edges = [tuple(e[:2]) for e in sorted(graph.edges())[:3]]
        handle.apply_batch(insertions=edges, deletions=edges)
        again = session.run("mis", "g", seed=1)
        # unchanged content: full cache hit, not even an incremental patch
        assert again.preprocessing_reused
        assert session.stats.preprocessing_hits == 1
        assert session.stats.incremental_updates == 0

    def test_validation_still_runs_before_compaction(self):
        graph = _graph()
        session = Session(CONFIG)
        handle = session.load("g", graph)
        with pytest.raises(KeyError, match="absent edge"):
            handle.apply_batch(insertions=[(4, 5)], deletions=[(4, 5)])

    def test_weighted_same_weight_pair_is_a_noop(self):
        graph = _weighted()
        session = Session(CONFIG)
        handle = session.load("g", graph)
        fingerprint = handle.fingerprint
        handle.apply_batch(insertions=[(0, 1, 1.5)], deletions=[(0, 1)])
        assert handle.fingerprint == fingerprint
        assert graph.weight(0, 1) == 1.5

    def test_weighted_weight_change_is_applied(self):
        graph = _weighted()
        session = Session(CONFIG)
        handle = session.load("g", graph)
        fingerprint = handle.fingerprint
        handle.apply_batch(insertions=[(0, 1, 9.0)], deletions=[(0, 1)])
        assert graph.weight(0, 1) == 9.0
        assert handle.fingerprint != fingerprint
