"""GraphService: the serving layer over one Session.

The paper's production setting is a serving system: the DHT-resident graph
outlives any single query and many queries are answered against it
concurrently.  :class:`GraphService` is that system in miniature — it owns
one thread-safe :class:`~repro.api.session.Session` and a bounded
:class:`~repro.serve.pool.WorkerPool`, so:

* graphs are registered once (``service.load("web", graph)``) and queried
  by name from then on;
* every query runs on its **own** runtime — per-run metrics never bleed
  across concurrent queries; only sealed DHT stores are shared;
* the shared preprocessing is prepared exactly once per (stage, graph,
  seed-class) even under concurrent misses, and every later query takes
  the cache hit;
* queries on a name whose algorithm needs weights get the paper's default
  ``deg(u) + deg(v)`` weighting automatically (as the CLI does).

::

    with GraphService(ClusterConfig(num_machines=10), workers=4) as service:
        service.load("web", graph)
        pending = [service.submit("mis", "web", seed=s) for s in range(8)]
        results = [p.result() for p in pending]
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.ampc.cluster import ClusterConfig
from repro.ampc.faults import FaultPlan
from repro.api import registry
from repro.api.result import RunResult
from repro.api.session import GraphHandle, Session
from repro.graph.generators import degree_weighted
from repro.graph.graph import WeightedGraph
from repro.serve.admission import (AdmissionController, OverloadedError,
                                   estimate_query_cost)
from repro.serve.pool import (DeadlineExceededError, PendingResult,
                              ServiceClosedError, WorkerPool)

#: registration suffix for the automatic deg(u)+deg(v) weighted derivation
DERIVED_WEIGHTED_SUFFIX = "#degree-weighted"


def derived_weighted_name(name: str) -> str:
    """Registration name of a graph's automatic degree-weighted derivation."""
    return f"{name}{DERIVED_WEIGHTED_SUFFIX}"


class ServiceBase:
    """The serving front-end contract shared by every dispatcher.

    A service — whether it runs queries on a thread pool over one shared
    :class:`~repro.api.session.Session` (:class:`GraphService`) or routes
    them to per-process Sessions
    (:class:`~repro.serve.procpool.ProcessGraphService`) — exposes the
    same surface: ``load``/``unload``/``graphs``, ``submit`` returning a
    :class:`~repro.serve.pool.PendingResult`, synchronous ``query``,
    ``stats`` and ``close``.  The JSON-lines protocol drives either
    implementation through this contract.
    """

    def algorithms(self) -> List[str]:
        """Names this service can run (the registry's, in order)."""
        return registry.names()

    def submit(self, algorithm: str, graph: Any, *, seed: int = 0,
               reuse_preprocessing: bool = True,
               deadline: Optional[float] = None,
               **params: Any) -> PendingResult:
        """Enqueue one query.  ``deadline`` is relative seconds from now:
        a query still queued when it passes is cancelled before execution
        and fails with
        :class:`~repro.serve.pool.DeadlineExceededError`.  An overloaded
        service sheds at submit time with
        :class:`~repro.serve.admission.OverloadedError`.
        """
        raise NotImplementedError

    def update(self, name: str, insertions: Any = (),
               deletions: Any = ()) -> "GraphHandle":
        """Apply an edge batch to the graph registered as ``name``.

        Deletions apply first, then insertions (``(u, v)`` pairs; weighted
        graphs take ``(u, v, w)`` insertion triples).  The graph's
        fingerprint chain-updates in O(batch) and later queries patch
        cached DHT-resident artifacts through the registered ``update``
        hooks instead of re-preparing from scratch.  Not synchronized with
        in-flight queries on the same graph — sequence an update after the
        queries whose results you still expect against the old content.
        """
        raise NotImplementedError

    def query(self, algorithm: str, graph: Any, *, seed: int = 0,
              timeout: Optional[float] = None,
              **params: Any) -> RunResult:
        """Synchronous convenience: submit and wait for the result."""
        return self.submit(algorithm, graph, seed=seed,
                           **params).result(timeout)

    def close(self, wait: bool = True) -> None:
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class GraphService(ServiceBase):
    """A long-lived, concurrent front end over one Session."""

    def __init__(self, config: Optional[ClusterConfig] = None, *,
                 workers: int = 4,
                 max_pending: int = 0,
                 fault_plan: Optional[FaultPlan] = None,
                 strict_rounds: bool = False,
                 max_cache_bytes: Optional[int] = None,
                 backend: Any = "sim",
                 dht_nodes: Optional[List[Any]] = None,
                 replication: int = 1,
                 max_chain_generations: Optional[int] = None,
                 session: Optional[Session] = None,
                 max_inflight_cost: Optional[float] = None,
                 admission_queue_factor: float = 2.0,
                 admission_decay_s: float = 5.0,
                 default_deadline_s: Optional[float] = None):
        #: whether close() owns the session's backing resources (it does
        #: unless the caller injected an externally managed session)
        self._owns_session = session is None
        self.session = session or Session(
            config,
            fault_plan=fault_plan,
            strict_rounds=strict_rounds,
            max_cache_bytes=max_cache_bytes,
            backend=backend,
            dht_nodes=dht_nodes,
            replication=replication,
            max_chain_generations=max_chain_generations,
        )
        self._pool = WorkerPool(workers, max_pending=max_pending)
        self._lock = threading.Lock()
        #: serializes update() batches — concurrent updates to one graph
        #: must not interleave mutations (version bumps and journal
        #: records are not atomic); update-vs-query ordering remains the
        #: caller's to sequence
        self._update_lock = threading.Lock()
        #: strong references to pinned graphs (Session handles are weak;
        #: a serving daemon owns the graphs loaded into it)
        self._pinned: Dict[str, Any] = {}
        #: per-name degree-weighted derivations: name -> (base
        #: fingerprint, derived handle); rebuilt when the base re-loads
        self._derived: Dict[str, Any] = {}
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._queries_shed = 0
        self._deadline_exceeded = 0
        self._closed = False
        #: queries lacking an explicit deadline inherit this one (seconds)
        self.default_deadline_s = default_deadline_s
        #: admission gate; ``max_inflight_cost`` is the per-worker token
        #: budget (cost-model simulated seconds), so the service-level
        #: budget scales with the pool
        self._admission: Optional[AdmissionController] = None
        if max_inflight_cost is not None:
            self._admission = AdmissionController(
                max_inflight_cost * self._pool.workers,
                queue_factor=admission_queue_factor,
                decay_half_life_s=admission_decay_s)

    # -- graph registry ----------------------------------------------------

    def load(self, name: str, graph: Any, *, pin: bool = True) -> GraphHandle:
        """Register ``graph`` under ``name`` for queries by name.

        With ``pin=True`` (the default) the service keeps the graph alive
        until :meth:`unload`; ``pin=False`` leaves lifetime to the caller
        (the session only holds a weak reference).
        """
        handle = self.session.load(name, graph)
        with self._lock:
            if pin:
                self._pinned[name] = graph
            else:
                self._pinned.pop(name, None)
        return handle

    def unload(self, name: str) -> None:
        self.session.unload(name)
        with self._lock:
            self._pinned.pop(name, None)
            self._derived.pop(name, None)

    def graphs(self) -> List[str]:
        return self.session.graphs()

    def update(self, name: str, insertions: Any = (),
               deletions: Any = ()) -> GraphHandle:
        """Apply an edge batch to a loaded graph (see ServiceBase.update).

        The shared Session sees the handle's chain-updated fingerprint on
        the next query and patches its cached artifacts incrementally; a
        stale ``<name>#degree-weighted`` derivation is rebuilt lazily (its
        recorded base fingerprint no longer matches).
        """
        handle = self.session.handle(name)
        with self._update_lock:
            return handle.apply_batch(insertions, deletions)

    # -- queries -----------------------------------------------------------

    def submit(self, algorithm: str, graph: Any, *, seed: int = 0,
               reuse_preprocessing: bool = True,
               deadline: Optional[float] = None,
               **params: Any) -> PendingResult:
        """Enqueue one query; returns a :class:`PendingResult`.

        ``graph`` may be a registered name, a handle, or a graph object.
        Unknown algorithms and undeclared parameters are rejected here, in
        the submitting thread, so the error surfaces immediately — as is
        an :class:`OverloadedError` shed when admission control is on.
        ``deadline`` is relative seconds; queries still queued past it
        are cancelled before execution (``DeadlineExceededError``).
        """
        spec = registry.get(algorithm)
        Session._merge_params(spec, params)  # fail fast on unknown params
        price = None
        if self._admission is not None:
            price = self._price_query(spec, graph, seed)
            decision, retry_after = self._admission.try_acquire(price)
            if decision == "shed":
                with self._lock:
                    self._queries_shed += 1
                raise OverloadedError(
                    f"service overloaded, shed {spec.name!r} "
                    f"(priced {price:.3f}s); retry in {retry_after}s",
                    retry_after_s=retry_after)
        if deadline is None:
            deadline = self.default_deadline_s
        deadline_at = (time.monotonic() + deadline
                       if deadline is not None else None)
        try:
            with self._lock:
                if self._closed:
                    raise ServiceClosedError("service is closed")
                self._submitted += 1
            pending = self._pool.submit(self._execute, spec, graph, seed,
                                        reuse_preprocessing, params,
                                        deadline=deadline_at)
        except BaseException:
            if price is not None:
                self._admission.release(price)
            raise
        pending.add_done_callback(
            lambda p, price=price: self._account_done(p, price))
        return pending

    def _account_done(self, pending: PendingResult,
                      price: Optional[float]) -> None:
        """Done-callback: counters + admission charge-back, any outcome
        (success, failure, deadline expiry in queue, cancel)."""
        error = pending.error
        with self._lock:
            if error is None:
                self._completed += 1
            else:
                self._failed += 1
                if isinstance(error, DeadlineExceededError):
                    self._deadline_exceeded += 1
        if price is not None:
            self._admission.release(price)

    def _price_query(self, spec, graph: Any, seed: int) -> float:
        """Admission price from graph size + cached-artifact state."""
        obj = graph
        try:
            if isinstance(obj, str):
                obj = self.session.handle(obj)
            if isinstance(obj, GraphHandle):
                obj = obj.graph
            num_vertices = obj.num_vertices if obj is not None else 0
            num_edges = obj.num_edges if obj is not None else 0
            cached = self.session.is_prepared(spec.name, graph, seed=seed)
        except (KeyError, AttributeError):
            # Unknown name / collected graph: price nothing and let the
            # run surface the real error with full context.
            return 0.0
        return estimate_query_cost(spec, num_vertices, num_edges,
                                   cached=cached,
                                   config=self.session.config)

    def _execute(self, spec, graph: Any, seed: int,
                 reuse_preprocessing: bool, params: Dict[str, Any]):
        return self.session.run(
            spec.name, self._resolve_input(spec, graph), seed=seed,
            reuse_preprocessing=reuse_preprocessing, **params)

    def _resolve_input(self, spec, graph: Any) -> Any:
        """Adapt a named/handle graph to the spec's input kind.

        Weighted algorithms queried on an unweighted graph get the paper's
        default ``deg(u) + deg(v)`` weights (Section 5.2), exactly like
        the CLI.  For named graphs the derivation is built once and
        registered as ``<name>#degree-weighted`` (rebuilt if the base
        graph is re-loaded), so repeat queries pay neither the O(n + m)
        construction nor the re-fingerprint.
        """
        if spec.input_kind != "weighted":
            return graph
        name: Optional[str] = None
        obj = graph
        if isinstance(obj, str):
            name = obj
            obj = self.session.handle(obj).graph
        elif isinstance(obj, GraphHandle):
            name = obj.name
            obj = obj.graph
        if obj is None or isinstance(obj, WeightedGraph):
            return graph
        if name is None:
            return degree_weighted(obj)
        base = self.session.handle(name)
        with self._lock:
            cached = self._derived.get(name)
            if cached is not None and cached[0] == base.fingerprint:
                return cached[1]
        derived = degree_weighted(obj)
        handle = self.session.load(derived_weighted_name(name), derived)
        with self._lock:
            # keep the derived graph alive: the session reference is weak
            self._derived[name] = (base.fingerprint, handle, derived)
        return handle

    # -- accounting / lifecycle --------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Service counters plus the underlying SessionStats, flat."""
        session_stats = self.session.stats
        with self._lock:
            stats = {
                "backend": self.session.backend,
                "workers": self._pool.workers,
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "queries_shed": self._queries_shed,
                # in-process threads can't die under us; parity field so
                # dashboards read one schema across both services
                "queries_retried": 0,
                "deadline_exceeded": self._deadline_exceeded,
                "workers_scaled": 0,  # thread pool is fixed-size
                "graphs_loaded": len(self.session.graphs()),
                "cached_preprocessings": self.session.cached_preprocessings,
                "cache_bytes": self.session.cache_bytes,
            }
        if self._admission is not None:
            stats["admission"] = self._admission.snapshot()
        for name in ("runs", "preprocessing_hits", "preprocessing_misses",
                     "preprocessing_evictions", "incremental_updates",
                     "full_prepares", "shuffles_saved",
                     "kv_writes_saved", "shuffles_executed",
                     "kv_reads_executed", "kv_writes_executed",
                     "simulated_time_s"):
            stats[name] = getattr(session_stats, name)
        return stats

    def close(self, wait: bool = True) -> None:
        """Stop accepting queries; in-flight queries drain when waiting."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.close(wait=wait)
        if self._owns_session:
            self.session.close()
