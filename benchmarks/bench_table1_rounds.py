"""Table 1 — round complexities: AMPC O(1) vs the MPC baselines.

Table 1 is the paper's theory summary; its empirically checkable content is
that the AMPC algorithms finish in a *constant* number of adaptive rounds
(independent of n), while the MPC baselines' round counts grow with the
input.  We measure rounds across a geometric family of inputs and check
the growth pattern, plus the O(1/eps) round behaviour of the truncated
theory schedules.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.experiment import bench_config
from repro.analysis.reporting import Table
from repro.baselines.local_contraction_cc import mpc_local_contraction_cc
from repro.baselines.rootset_mis import mpc_rootset_mis
from repro.core.mis import ampc_mis
from repro.core.msf import ampc_msf
from repro.core.two_cycle import ampc_one_vs_two_cycle
from repro.graph.generators import cycle_graph, erdos_renyi_gnm, random_weighted

SIZES = [256, 1024, 4096]


def test_table1_round_complexities(benchmark):
    def compute():
        rows = []
        config = bench_config()
        for n in SIZES:
            graph = erdos_renyi_gnm(n, 4 * n, seed=n)
            weighted = random_weighted(graph, seed=n)
            cycle = cycle_graph(n, shuffle_ids=True, seed=n)
            mis = ampc_mis(graph, config=bench_config(), seed=1)
            msf = ampc_msf(weighted, config=bench_config(), seed=1)
            two = ampc_one_vs_two_cycle(cycle, config=bench_config(), seed=1)
            rootset = mpc_rootset_mis(graph, config=bench_config(), seed=1,
                                      in_memory_threshold=max(64, n // 8))
            local = mpc_local_contraction_cc(
                cycle, config=bench_config(), seed=1,
                in_memory_threshold=max(32, n // 16))
            rows.append((n, mis.rounds, msf.metrics.rounds,
                         two.metrics.rounds, rootset.phases, local.phases))
        return rows

    rows = run_once(benchmark, compute)

    table = Table(
        "Table 1: measured rounds — AMPC constant, MPC growing",
        ["n", "AMPC MIS rounds", "AMPC MSF rounds", "AMPC 2-Cycle rounds",
         "MPC MIS phases", "MPC CC phases"],
    )
    for row in rows:
        table.add_row(*row)
    table.show()

    # AMPC round counts are constant across the size sweep.
    for column in (1, 2, 3):
        values = {row[column] for row in rows}
        assert len(values) == 1, f"AMPC column {column} not constant: {values}"
    # The MPC phase counts grow with n (Omega(log n) behaviour).
    mpc_cc = [row[5] for row in rows]
    assert mpc_cc[-1] > mpc_cc[0]


def test_table1_truncated_rounds_follow_budget(benchmark):
    """The O(1/eps) schedule: rounds shrink as the per-round budget n^eps
    grows (Theorem 2 / the [19] MIS schedule)."""

    def compute():
        graph = erdos_renyi_gnm(2048, 8192, seed=3)
        results = []
        for budget in (8, 32, 256, 4096):
            result = ampc_mis(graph, config=bench_config(), seed=3,
                              search_budget=budget)
            results.append((budget, result.rounds))
        return results

    results = run_once(benchmark, compute)
    table = Table(
        "Table 1 (cont.): truncated AMPC MIS rounds vs per-search budget",
        ["Search budget (~n^eps)", "Rounds"],
    )
    for budget, rounds in results:
        table.add_row(budget, rounds)
    table.show()

    rounds = [r for _, r in results]
    assert all(a >= b for a, b in zip(rounds, rounds[1:]))
    assert rounds[-1] == 2
