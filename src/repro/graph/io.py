"""Edge-list I/O.

The paper's datasets are distributed as edge lists; directed inputs (Twitter,
ClueWeb, Hyperlink2012) are symmetrized before the algorithms run
(Section 5.2).  We support the same plain-text format: one ``u v`` (or
``u v w``) per line, ``#``-prefixed comment lines ignored.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.graph.graph import Graph, WeightedGraph

PathLike = Union[str, Path]


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write an unweighted graph as ``u v`` lines."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# vertices {graph.num_vertices}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def write_weighted_edge_list(graph: WeightedGraph, path: PathLike) -> None:
    """Write a weighted graph as ``u v w`` lines."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# vertices {graph.num_vertices}\n")
        for u, v, w in graph.edges():
            handle.write(f"{u} {v} {w!r}\n")


def _parse_header_and_edges(path: PathLike):
    declared_vertices = None
    rows = []
    max_vertex = -1
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "vertices":
                    declared_vertices = int(parts[1])
                continue
            parts = line.split()
            u, v = int(parts[0]), int(parts[1])
            weight = float(parts[2]) if len(parts) > 2 else None
            rows.append((u, v, weight))
            max_vertex = max(max_vertex, u, v)
    num_vertices = declared_vertices if declared_vertices is not None else max_vertex + 1
    return num_vertices, rows


def read_edge_list(path: PathLike, *, symmetrize: bool = True) -> Graph:
    """Read an unweighted graph.  Directed duplicates collapse (symmetrize).

    ``symmetrize`` is accepted for interface symmetry: an undirected edge set
    is produced either way because :class:`Graph` stores each edge once.
    """
    num_vertices, rows = _parse_header_and_edges(path)
    graph = Graph(num_vertices)
    for u, v, _ in rows:
        if u != v:
            graph.add_edge(u, v)
    return graph


def read_weighted_edge_list(path: PathLike) -> WeightedGraph:
    """Read a weighted graph (missing weights default to 1.0)."""
    num_vertices, rows = _parse_header_and_edges(path)
    graph = WeightedGraph(num_vertices)
    for u, v, w in rows:
        if u != v:
            graph.add_edge(u, v, 1.0 if w is None else w)
    return graph
