"""Table 2 — dataset statistics.

Regenerates the paper's dataset table for the scaled analogues: vertices,
edges, diameter (double-sweep lower bound, starred, exactly as the paper
does for its large graphs), number of components and the largest component.
The paper's original numbers are printed alongside for comparison.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_DATASETS, run_once
from repro.analysis.datasets import dataset_spec
from repro.analysis.reporting import Table
from repro.graph.properties import summarize


def test_table2_dataset_statistics(benchmark, datasets):
    def compute():
        return {
            name: summarize(name, datasets[name], exact_diameter_max_n=0)
            for name in BENCH_DATASETS
        }

    summaries = run_once(benchmark, compute)

    table = Table(
        "Table 2: graph inputs (paper original -> scaled analogue)",
        ["Dataset", "n (paper)", "n", "m (paper)", "m",
         "Diam (paper)", "Diam", "#CC (paper)", "#CC",
         "Largest CC (paper)", "Largest CC"],
    )
    for name in BENCH_DATASETS:
        spec = dataset_spec(name)
        paper = spec.paper
        measured = summaries[name]
        paper_diam = f"{paper.diameter}{'*' if paper.diameter_is_lower_bound else ''}"
        table.add_row(
            name,
            f"{paper.num_vertices:.2e}", measured.num_vertices,
            f"{paper.num_edges:.2e}", measured.num_edges,
            paper_diam, measured.row()[3],
            paper.num_components, measured.num_components,
            f"{paper.largest_component:.2e}", measured.largest_component,
        )
    table.show()

    # The qualitative Table 2 invariants the evaluation relies on.
    names = BENCH_DATASETS
    for smaller, larger in zip(names, names[1:]):
        assert summaries[smaller].num_edges < summaries[larger].num_edges
    assert summaries["OK-S"].num_components == 1
    assert summaries["TW-S"].num_components == 2
    assert summaries["FS-S"].num_components == 1
    assert summaries["CW-S"].num_components > 20
    assert summaries["HL-S"].num_components > 10
    assert summaries["OK-S"].diameter < summaries["CW-S"].diameter
    assert summaries["CW-S"].diameter < summaries["HL-S"].diameter
