"""The pipeline object: entry point of the dataflow engine."""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.ampc.cluster import Cluster, ClusterConfig
from repro.ampc.faults import FaultPlan
from repro.dataflow.pcollection import PCollection


class Pipeline:
    """Binds PCollections to a simulated cluster.

    Input data (``from_items``) is placed without charge: in the AMPC model
    the input already lives in D0, and in Flume the input files already sit
    in the distributed file system.
    """

    def __init__(self, cluster: Optional[Cluster] = None,
                 config: Optional[ClusterConfig] = None,
                 fault_plan: Optional[FaultPlan] = None):
        if cluster is not None:
            self.cluster = cluster
        else:
            self.cluster = Cluster(config or ClusterConfig(), fault_plan)

    @property
    def metrics(self):
        return self.cluster.metrics

    def from_items(self, items: Iterable[Any],
                   key_fn: Optional[Callable[[Any], Any]] = None) -> PCollection:
        """Create a PCollection from driver-side items (no charge).

        With ``key_fn`` elements are placed on the machine owning the key's
        hash (matching later ``group_by_key`` placement); otherwise they are
        dealt round-robin.
        """
        partitions = self.cluster.partition(list(items), key_fn)
        return PCollection(self, partitions)

    def empty(self) -> PCollection:
        return self.from_items([])

    def run_on_driver(self, operations: int) -> None:
        """Charge single-machine compute (the in-memory fallback solvers)."""
        model = self.cluster.config.cost_model
        self.cluster.metrics.charge_time(operations / model.compute_ops_per_s)
