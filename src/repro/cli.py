"""Command-line interface: run the AMPC algorithms on edge-list files.

Usage::

    python -m repro mis graph.txt --machines 10 --seed 1
    python -m repro matching graph.txt
    python -m repro msf weighted.txt --weighted
    python -m repro components graph.txt
    python -m repro two-cycle cycles.txt
    python -m repro pagerank graph.txt --walks 32 --top 10

Input files are plain edge lists (``u v`` or ``u v w`` per line, ``#``
comments allowed — the format of :mod:`repro.graph.io`).  Each command
prints the result summary and the execution metrics the paper reports.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.ampc.cluster import ClusterConfig
from repro.ampc.cost_model import CostModel
from repro.graph.generators import degree_weighted
from repro.graph.io import read_edge_list, read_weighted_edge_list


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AMPC graph algorithms in constant adaptive rounds "
                    "(Behnezhad et al., VLDB 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("graph", help="edge-list file (u v [w] per line)")
        p.add_argument("--machines", type=int, default=10)
        p.add_argument("--threads", type=int, default=72)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--transport", choices=("rdma", "tcp"),
                       default="rdma")
        p.add_argument("--no-caching", action="store_true",
                       help="disable the per-machine query cache")
        p.add_argument("--no-multithreading", action="store_true",
                       help="disable lookup latency hiding")

    add_common(sub.add_parser("mis", help="maximal independent set"))
    add_common(sub.add_parser("matching", help="maximal matching"))
    msf = sub.add_parser("msf", help="minimum spanning forest")
    add_common(msf)
    msf.add_argument("--weighted", action="store_true",
                     help="read weights from the file (default: "
                          "deg(u)+deg(v) weights, as in the paper)")
    add_common(sub.add_parser("components", help="connected components"))
    add_common(sub.add_parser("two-cycle", help="count cycles "
                                                "(1-vs-2-Cycle input)"))
    pagerank = sub.add_parser("pagerank", help="Monte-Carlo PageRank")
    add_common(pagerank)
    pagerank.add_argument("--walks", type=int, default=16,
                          help="walks per vertex")
    pagerank.add_argument("--top", type=int, default=10,
                          help="how many top-ranked vertices to print")
    return parser


def _config(args) -> ClusterConfig:
    cost_model = (CostModel.tcp() if args.transport == "tcp"
                  else CostModel.rdma())
    return ClusterConfig(
        num_machines=args.machines,
        threads_per_machine=args.threads,
        caching=not args.no_caching,
        multithreading=not args.no_multithreading,
        cost_model=cost_model,
    )


def _print_metrics(metrics) -> None:
    print(f"shuffles: {metrics.shuffles}  "
          f"shuffle bytes: {metrics.shuffle_bytes:,}")
    print(f"KV reads: {metrics.kv_reads:,}  KV bytes: {metrics.kv_bytes:,}  "
          f"cache hit rate: {metrics.cache_hit_rate():.1%}")
    print(f"simulated time: {metrics.simulated_time_s:.3f}s")
    for phase, seconds in metrics.phases.items():
        print(f"  {phase}: {seconds:.3f}s")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    config = _config(args)

    if args.command == "msf":
        if args.weighted:
            weighted = read_weighted_edge_list(args.graph)
        else:
            weighted = degree_weighted(read_edge_list(args.graph))
        from repro.core.msf import ampc_msf

        result = ampc_msf(weighted, config=config, seed=args.seed)
        total = sum(weighted.weight(u, v) for u, v in result.forest)
        print(f"minimum spanning forest: {len(result.forest)} edges, "
              f"weight {total:g}")
        _print_metrics(result.metrics)
        return 0

    graph = read_edge_list(args.graph)
    if args.command == "mis":
        from repro.core.mis import ampc_mis

        result = ampc_mis(graph, config=config, seed=args.seed)
        print(f"maximal independent set: {len(result.independent_set)} "
              f"of {graph.num_vertices} vertices "
              f"({result.rounds} rounds)")
        _print_metrics(result.metrics)
    elif args.command == "matching":
        from repro.core.matching import ampc_maximal_matching

        result = ampc_maximal_matching(graph, config=config, seed=args.seed)
        print(f"maximal matching: {len(result.matching)} edges "
              f"({result.rounds} rounds)")
        _print_metrics(result.metrics)
    elif args.command == "components":
        from repro.core.connectivity import ampc_connected_components

        result = ampc_connected_components(graph, config=config,
                                           seed=args.seed)
        print(f"connected components: {len(set(result.labels))} "
              f"({result.iterations} forest-connectivity iterations)")
        _print_metrics(result.metrics)
    elif args.command == "two-cycle":
        from repro.core.two_cycle import ampc_one_vs_two_cycle

        result = ampc_one_vs_two_cycle(graph, config=config, seed=args.seed)
        print(f"number of cycles: {result.num_cycles} "
              f"(sampled {result.num_sampled} vertices, "
              f"{result.attempts} attempt(s))")
        _print_metrics(result.metrics)
    elif args.command == "pagerank":
        from repro.core.random_walks import ampc_pagerank

        result = ampc_pagerank(graph, config=config, seed=args.seed,
                               walks_per_vertex=args.walks)
        ranked = sorted(range(graph.num_vertices),
                        key=lambda v: -result.scores[v])
        print(f"PageRank over {result.total_steps:,} walk steps; "
              f"top {args.top}:")
        for v in ranked[: args.top]:
            print(f"  vertex {v}: {result.scores[v]:.5f}")
        _print_metrics(result.metrics)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
