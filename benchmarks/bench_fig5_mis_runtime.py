"""Figure 5 — normalized running times, AMPC vs MPC MIS.

The paper plots, per dataset, the AMPC MIS time broken into
DirectGraph (the shuffle) / KV-Write / IsInMIS, next to the MPC rootset
time.  Headline shapes: the AMPC algorithm is always faster (paper:
2.31-3.18x speedup); KV-Write is a small fraction (at most ~8%).

Paper wall-clock annotations (seconds):

    dataset   AMPC    MPC
    OK        96.19   230
    TW        202.3   627
    FS        264.2   790
    CW        816.3   1941
    HL        1940    4481
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_DATASETS, run_once
from repro.analysis.experiment import run_ampc_mis, run_mpc_mis
from repro.analysis.reporting import Table

PAPER_TIMES = {
    "OK-S": (96.19, 230.0),
    "TW-S": (202.3, 627.0),
    "FS-S": (264.2, 790.0),
    "CW-S": (816.3, 1941.0),
    "HL-S": (1940.0, 4481.0),
}


def test_fig5_mis_running_times(benchmark, datasets):
    def compute():
        rows = {}
        for ds in BENCH_DATASETS:
            graph = datasets[ds]
            rows[ds] = (run_ampc_mis(graph), run_mpc_mis(graph))
        return rows

    rows = run_once(benchmark, compute)

    table = Table(
        "Figure 5: MIS simulated running times (AMPC phase breakdown)",
        ["Dataset", "DirectGraph", "KV-Write", "IsInMIS", "AMPC total",
         "MPC total", "Speedup", "paper speedup"],
    )
    for ds in BENCH_DATASETS:
        ampc, mpc = rows[ds]
        phases = ampc["phase_breakdown"]
        speedup = mpc["simulated_time_s"] / ampc["simulated_time_s"]
        paper_ampc, paper_mpc = PAPER_TIMES[ds]
        table.add_row(
            ds,
            f"{phases.get('DirectGraph', 0):.2f}s",
            f"{phases.get('KV-Write', 0):.2f}s",
            f"{phases.get('IsInMIS', 0):.2f}s",
            f"{ampc['simulated_time_s']:.2f}s",
            f"{mpc['simulated_time_s']:.2f}s",
            f"{speedup:.2f}x",
            f"{paper_mpc / paper_ampc:.2f}x",
        )
    table.show()

    for ds in BENCH_DATASETS:
        ampc, mpc = rows[ds]
        # AMPC always faster (Figure 5's headline).
        assert ampc["simulated_time_s"] < mpc["simulated_time_s"]
        # KV-Write is a small fraction of the AMPC time (paper: <= ~8%).
        phases = ampc["phase_breakdown"]
        assert phases.get("KV-Write", 0) < 0.25 * ampc["simulated_time_s"]
        # Both compute the same MIS.
        assert ampc["output_size"] == mpc["output_size"]
