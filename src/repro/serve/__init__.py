"""The serving layer: concurrent queries over one long-lived Session.

Three pieces:

* :class:`~repro.serve.service.GraphService` — owns one thread-safe
  :class:`~repro.api.session.Session` and a bounded worker pool; queries
  run concurrently with per-run metrics isolation while sharing the
  DHT-resident preprocessing.
* :mod:`repro.serve.protocol` — a JSON-lines protocol (stdio or TCP) the
  ``python -m repro serve`` subcommand speaks.
* :mod:`repro.serve.pool` — the bounded worker pool and its
  :class:`~repro.serve.pool.PendingResult` future.
"""

from repro.serve.pool import PendingResult, ServiceClosedError, WorkerPool
from repro.serve.protocol import (
    ServiceServer,
    handle_request,
    serve_socket,
    serve_stream,
)
from repro.serve.service import GraphService

__all__ = [
    "GraphService",
    "PendingResult",
    "ServiceClosedError",
    "ServiceServer",
    "WorkerPool",
    "handle_request",
    "serve_socket",
    "serve_stream",
]
