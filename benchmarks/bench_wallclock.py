"""Wall-clock benchmark trajectory: how fast the simulator itself runs.

Every other benchmark in this directory reports *simulated* time — the
cost model's first-principles estimate.  This one measures the opposite
axis: real wall-clock seconds of the Python simulator executing
representative ``Session.run`` and ``GraphService`` workloads.  It is the
baseline every perf PR is measured against.

Results live in ``BENCH_wallclock.json`` at the repository root:

* ``before_s``  — the workload's wall-clock on the code *before* the
  current optimization round (recorded with ``--record before``);
* ``after_s``   — the optimized wall-clock (the default recording mode);
* ``speedup``   — ``before_s / after_s``;
* tracked workloads (the ``Session.run`` mis/matching/msf trajectories
  plus the ``service.mixed`` concurrency bursts) gate CI: ``--check``
  fails when a fresh measurement exceeds ``REGRESSION_FACTOR x`` the
  committed ``after_s``.

``service.mixed/procpool`` is a *paired* workload: every measurement
runs the identical multi-graph burst on the thread pool too and records
it as ``before_s``, so its ``speedup`` is the process-vs-thread
concurrent-throughput ratio on this machine (``cpus`` says how many
cores that ratio had to work with — expect >= 2x on multi-core hosts,
parity on one core).

Usage::

    python benchmarks/bench_wallclock.py                  # full suite, record after_s
    python benchmarks/bench_wallclock.py --record before  # pre-optimization numbers
    python benchmarks/bench_wallclock.py --quick          # small CI suite
    python benchmarks/bench_wallclock.py --quick --check  # CI regression gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.ampc.cluster import ClusterConfig  # noqa: E402
from repro.analysis.datasets import load_dataset, load_weighted_dataset  # noqa: E402
from repro.api import Session, registry  # noqa: E402
from repro.serve import (  # noqa: E402
    GraphService,
    OverloadedError,
    ProcessGraphService,
    estimate_query_cost,
)

#: a fresh measurement may be at most this factor above the committed
#: after_s before --check fails (cross-machine headroom included)
REGRESSION_FACTOR = 2.0
#: absolute grace floor: tiny workloads are dominated by scheduler noise
REGRESSION_FLOOR_S = 0.75
#: paired ``session.update/*`` workloads must keep the incremental path
#: at least this much faster than the full re-prepare baseline (the
#: acceptance bar is 5x; the gate leaves CI-noise headroom below it)
UPDATE_MIN_SPEEDUP = 3.0
#: paired ``service.overload/*`` workloads must keep the p99 of served
#: queries under admission control no worse than the same-run
#: no-admission baseline times this factor — shedding exists precisely
#: to cut the tail the unbounded queue grows
OVERLOAD_P99_FACTOR = 1.1

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_wallclock.json",
)


@dataclass(frozen=True)
class Workload:
    """One named wall-clock measurement."""

    name: str
    build: Callable[[], Callable[[], float]]
    #: tracked workloads gate CI and carry the >= 2x speedup requirement
    tracked: bool = True
    #: paired baseline: the *same* workload on the deployment being
    #: replaced (e.g. the thread pool for the process pool).  Measured
    #: alongside ``build`` and recorded as ``before_s``, so the entry's
    #: ``speedup`` is a same-machine, same-run throughput ratio.
    baseline: Optional[Callable[[], Callable[[], float]]] = None
    #: per-workload override of the suite-wide best-of count (the
    #: million-vertex workload pays its cold run once)
    repeats: Optional[int] = None


def _session_workload(algorithm: str, dataset: str, *, weighted: bool,
                      scale: float, seed: int = 3,
                      warm_runs: int = 3) -> Callable[[], Callable[[], float]]:
    """One cold ``Session.run`` plus ``warm_runs`` cache-served repeats.

    This is the serving-shaped profile the ROADMAP optimizes for: the
    preprocessing shuffle paid once, queries amortized behind it.
    Returns the run's simulated seconds so drift is visible next to the
    wall-clock numbers.
    """

    def build() -> Callable[[], float]:
        loader = load_weighted_dataset if weighted else load_dataset
        graph = loader(dataset, scale)

        def run() -> float:
            session = Session(ClusterConfig())
            result = session.run(algorithm, graph, seed=seed)
            for _ in range(warm_runs):
                session.run(algorithm, graph, seed=seed)
            return result.metrics["simulated_time_s"]

        return run

    return build


def _service_workload(dataset: str, *, scale: float,
                      workers: int = 4) -> Callable[[], Callable[[], float]]:
    """A concurrent GraphService burst: mixed algorithms, shared cache."""

    def build() -> Callable[[], float]:
        graph = load_dataset(dataset, scale)

        def run() -> float:
            with GraphService(ClusterConfig(), workers=workers) as service:
                service.load("bench", graph)
                pending = []
                for seed in range(2):
                    pending.append(service.submit("mis", "bench",
                                                  seed=seed))
                    pending.append(service.submit("matching", "bench",
                                                  seed=seed))
                    pending.append(service.submit("components", "bench",
                                                  seed=seed))
                return sum(p.result().metrics["simulated_time_s"]
                           for p in pending)

        return run

    return build


#: the scale floor of the synthetic million-vertex input (2**20 vertices)
_MILLION_VERTICES = 1 << 20


def _million_vertex_graph():
    """A deterministic 2**20-vertex sparse graph, built via flat columns.

    A ring (connectivity) plus arithmetic chords on every fifth vertex
    (~1.2 M edges total).  Construction bypasses ``add_edge`` — the
    per-edge journal/version bookkeeping would dominate an untimed build
    step — and fills the adjacency sets directly, like a bulk loader.
    """
    from repro.graph.graph import Graph

    n = _MILLION_VERTICES
    graph = Graph(n)
    adjacency = graph._adj
    edges = 0
    for u in range(n):
        v = (u + 1) % n
        adjacency[u].add(v)
        adjacency[v].add(u)
        edges += 1
    for u in range(0, n, 5):
        v = (u * 48271 + 11) % n
        if v != u and v not in adjacency[u]:
            adjacency[u].add(v)
            adjacency[v].add(u)
            edges += 1
    graph._num_edges = edges
    graph.content_version += 1
    return graph


def _million_workload() -> Callable[[], Callable[[], float]]:
    """``Session.run`` mis at 2**20 vertices: the data-plane scale test.

    One cold run (columnar prepare + query phase over a million records)
    plus one cache-served repeat.  Wall-clock here is dominated by the
    flat-array prepare and the per-element query loop, so it tracks
    exactly the costs the columnar core exists to keep linear.
    """

    def build() -> Callable[[], float]:
        graph = _million_vertex_graph()

        def run() -> float:
            session = Session(ClusterConfig())
            result = session.run("mis", graph, seed=3)
            session.run("mis", graph, seed=3)
            return result.metrics["simulated_time_s"]

        return run

    return build


#: edges mutated per apply_batch in the ``session.update/*`` workloads —
#: k << m (OK-S has ~23k edges at scale 1.0, ~5.7k at the quick 0.25)
_UPDATE_BATCH = 16
#: mutation+prepare cycles per timed run
_UPDATE_CYCLES = 2


def _update_workload(algorithm: str, dataset: str, *, weighted: bool,
                     scale: float,
                     incremental: bool) -> Callable[[], Callable[[], float]]:
    """The batch-dynamic serving profile: mutate k << m edges, re-prepare.

    Each timed run applies ``_UPDATE_CYCLES`` rounds of ``apply_batch``
    (a fresh batch of existing edges deleted each cycle, so the content —
    and therefore the cache key — is new every time) followed by
    ``session.prepare`` — the artifact-maintenance path a serving system
    pays per mutation.  With ``incremental=False`` the graph's journal is
    disabled, so every cycle pays the full O(m) re-fingerprint +
    re-prepare: the identical workload on the code path this PR replaces,
    measured same-run as the paired ``before_s``.  The one cold
    preparation happens in build(), untimed, on both sides.
    """

    def build() -> Callable[[], float]:
        loader = load_weighted_dataset if weighted else load_dataset
        # private copy: this workload mutates its graph, and load_dataset
        # memoizes the instance other workloads share
        graph = loader(dataset, scale).copy()
        if not incremental:
            # sever the delta journal: every mutation falls back to the
            # full O(m) fingerprint walk + re-prepare
            graph.journal_limit = 0
        session = Session(ClusterConfig())
        handle = session.load("bench", graph)
        session.prepare(algorithm, handle, seed=3)
        edge_pool = [(edge[0], edge[1]) for edge in graph.edges()]
        position = [0]

        def run() -> float:
            graph  # noqa: B018 - keep the weakly-held graph alive
            for _ in range(_UPDATE_CYCLES):
                start = position[0]
                position[0] = start + _UPDATE_BATCH
                handle.apply_batch(
                    deletions=edge_pool[start:position[0]])
                session.prepare(algorithm, handle, seed=3)
            return 0.0  # simulated drift is tracked by the run workloads

        return run

    return build


def _percentile(values: List[float], quantile: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for an empty sample)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                int(round(quantile * (len(ordered) - 1))))
    return ordered[index]


#: queries in one overload burst — priced at ~4x the admission ceiling,
#: so the admission run must shed a substantial fraction
_OVERLOAD_BURST = 24
_OVERLOAD_WORKERS = 2


def _overload_workload(dataset: str, *, scale: float,
                       admission: bool) -> Callable[[], Callable[[], dict]]:
    """A burst 4x past the admission budget, with and without the gate.

    Both sides run the identical burst of cold-priced queries against
    ``_OVERLOAD_WORKERS`` threads.  With ``admission=True`` the budget is
    sized so the burst overcommits the queue ceiling ~4x: the tail is
    shed with structured ``OverloadedError`` and the *served* queries
    keep a bounded queue wait.  The ``admission=False`` twin queues
    everything, so its p99 carries the full drain — the paired
    ``baseline_p99_ms`` the CI gate compares against.  Returns per-run
    extras (p50/p99 of served queries, shed/served counts) that land in
    BENCH_wallclock.json next to the wall numbers.
    """

    def build() -> Callable[[], dict]:
        graphs = {
            f"load{index}": load_dataset(dataset, scale * factor)
            for index, factor in enumerate((1.0, 0.85, 0.7))
        }
        names = sorted(graphs)
        queries = [(algorithm, names[index % len(names)], index)
                   for index, algorithm in enumerate(
                       ("mis", "matching", "components") * _OVERLOAD_BURST)
                   ][:_OVERLOAD_BURST]
        # size the per-worker budget so the whole burst prices ~4x the
        # queue ceiling (budget * queue_factor * workers)
        burst_cost = sum(
            estimate_query_cost(registry.get(algorithm),
                                graphs[name].num_vertices,
                                graphs[name].num_edges, cached=False)
            for algorithm, name, _ in queries)
        kwargs = {}
        if admission:
            kwargs = dict(
                max_inflight_cost=burst_cost / (4 * 2 * _OVERLOAD_WORKERS),
                admission_queue_factor=2.0, admission_decay_s=0.5)

        def run() -> dict:
            latencies_ms: List[float] = []
            shed = 0
            with GraphService(ClusterConfig(),
                              workers=_OVERLOAD_WORKERS, **kwargs) as svc:
                for name in names:
                    svc.load(name, graphs[name])
                pending = []
                for algorithm, name, seed in queries:
                    submitted_at = time.perf_counter()
                    try:
                        handle = svc.submit(algorithm, name, seed=seed)
                    except OverloadedError:
                        shed += 1
                        continue
                    handle.add_done_callback(
                        lambda p, t0=submitted_at: latencies_ms.append(
                            (time.perf_counter() - t0) * 1000.0))
                    pending.append(handle)
                for handle in pending:
                    handle.result(600)
                stats = svc.stats()
            return {
                "simulated_time_s": stats["simulated_time_s"],
                "p50_ms": round(_percentile(latencies_ms, 0.50), 3),
                "p99_ms": round(_percentile(latencies_ms, 0.99), 3),
                "served": len(pending),
                "queries_shed": shed,
            }

        return run

    return build


#: the multi-tenant mixed burst behind ``service.mixed/procpool``: several
#: graphs, mixed algorithms, repeated seeds — the shape fingerprint
#: affinity is built for (each worker owns its graphs' warm caches)
_SCALEOUT_GRAPH_FACTORS = (1.0, 0.85, 0.7, 0.55)
_SCALEOUT_CONCURRENCY = 4


def _scaleout_queries(names) -> List:
    return [(algorithm, name, seed)
            for name in names
            for algorithm in ("mis", "matching", "components")
            for seed in (0, 1)]


def _scaleout_workload(dataset: str, *, scale: float,
                       processes: bool) -> Callable[[], Callable[[], float]]:
    """The scale-out serving burst, on the process pool or (as the paired
    baseline) the thread pool.  Identical queries, identical graphs —
    wall-clock is the only axis that moves, so ``before_s / after_s`` is
    the concurrent-throughput ratio of the two deployments."""

    def build() -> Callable[[], float]:
        graphs = {
            f"bench{index}": load_dataset(dataset, scale * factor)
            for index, factor in enumerate(_SCALEOUT_GRAPH_FACTORS)
        }
        queries = _scaleout_queries(sorted(graphs))

        def run() -> float:
            if processes:
                service = ProcessGraphService(
                    ClusterConfig(), processes=_SCALEOUT_CONCURRENCY)
            else:
                service = GraphService(ClusterConfig(),
                                       workers=_SCALEOUT_CONCURRENCY)
            with service:  # a failed repeat must not leak 4 processes
                for name, graph in graphs.items():
                    service.load(name, graph)
                pending = [service.submit(algorithm, name, seed=seed)
                           for algorithm, name, seed in queries]
                return sum(p.result(600).metrics["simulated_time_s"]
                           for p in pending)

        return run

    return build


def _suite(quick: bool) -> List[Workload]:
    """The workload set: full (committed trajectory) or quick (CI smoke).

    Both suites track mis/matching/msf ``Session.run`` on scaled-dataset
    inputs; quick shrinks the datasets so the smoke step stays in CI
    budget.
    """
    scale = 0.25 if quick else 1.0
    dataset = "OK-S"
    return [
        Workload(f"session.run/mis/{dataset}",
                 _session_workload("mis", dataset, weighted=False,
                                   scale=scale)),
        Workload(f"session.run/matching/{dataset}",
                 _session_workload("matching", dataset, weighted=False,
                                   scale=scale)),
        Workload(f"session.run/msf/{dataset}",
                 _session_workload("msf", dataset, weighted=True,
                                   scale=scale)),
        # the scale entry: a 2**20-vertex graph through the columnar
        # data plane, identical in full and quick suites (absolute size
        # is the point); best-of-1 — the cold run is the measurement
        Workload("session.run/mis/SYN-1M",
                 _million_workload(), repeats=1),
        Workload(f"service.mixed/{dataset}",
                 _service_workload(dataset, scale=scale)),
        # the scale-out trajectory: process pool vs the thread pool on
        # one identical multi-graph burst; >= 2x expected on multi-core
        # hosts (single-core hosts record ~1x — see the cpus field)
        Workload(f"service.mixed/procpool/{dataset}",
                 _scaleout_workload(dataset, scale=scale, processes=True),
                 baseline=_scaleout_workload(dataset, scale=scale,
                                             processes=False)),
        # the load-adaptive trajectory: the same 4x-overcommitted burst
        # with admission control on (measured) and off (paired
        # baseline); --check gates served-p99 against the baseline p99
        Workload(f"service.overload/{dataset}",
                 _overload_workload(dataset, scale=scale, admission=True),
                 baseline=_overload_workload(dataset, scale=scale,
                                             admission=False)),
        # the batch-dynamic trajectory: mutate k << m edges, patch the
        # DHT-resident artifact vs. the paired full re-prepare baseline
        # (>= 5x expected; --check gates at UPDATE_MIN_SPEEDUP)
        Workload(f"session.update/mis/{dataset}",
                 _update_workload("mis", dataset, weighted=False,
                                  scale=scale, incremental=True),
                 baseline=_update_workload("mis", dataset, weighted=False,
                                           scale=scale, incremental=False)),
        Workload(f"session.update/matching/{dataset}",
                 _update_workload("matching", dataset, weighted=False,
                                  scale=scale, incremental=True),
                 baseline=_update_workload("matching", dataset,
                                           weighted=False, scale=scale,
                                           incremental=False)),
        Workload(f"session.update/msf/{dataset}",
                 _update_workload("msf", dataset, weighted=True,
                                  scale=scale, incremental=True),
                 baseline=_update_workload("msf", dataset, weighted=True,
                                           scale=scale, incremental=False)),
    ]


def _best_of(run: Callable[[], Any], repeats: int) -> Dict[str, float]:
    """Best-of wall-clock; ``run`` returns simulated seconds, or a dict
    of extras (tail-latency percentiles, shed counts) whose
    ``simulated_time_s`` plays that role.  Extras ride along from the
    best repeat."""
    best = float("inf")
    simulated = 0.0
    extras: Dict[str, float] = {}
    for _ in range(repeats):
        start = time.perf_counter()
        value = run()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            if isinstance(value, dict):
                simulated = value.get("simulated_time_s", 0.0)
                extras = {key: val for key, val in value.items()
                          if key != "simulated_time_s"}
            else:
                simulated = value
    numbers = {"wall_s": round(best, 4),
               "simulated_time_s": round(simulated, 6)}
    numbers.update(extras)
    return numbers


def _measure(workload: Workload, repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` wall-clock (input building excluded).

    A workload with a paired baseline measures both deployments in the
    same process on the same inputs; the baseline lands in
    ``baseline_wall_s`` (recorded as the entry's ``before_s``), and any
    baseline extras land prefixed ``baseline_`` (``baseline_p99_ms``).
    """
    numbers = _best_of(workload.build(), repeats)
    if workload.baseline is not None:
        baseline = _best_of(workload.baseline(), repeats)
        numbers["baseline_wall_s"] = baseline["wall_s"]
        for key, value in baseline.items():
            if key not in ("wall_s", "simulated_time_s"):
                numbers[f"baseline_{key}"] = value
    return numbers


def _load_report(path: str) -> Dict:
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    return {"schema": 1, "unit": "seconds",
            "regression_factor": REGRESSION_FACTOR, "suites": {}}


def _save_report(report: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _record(report: Dict, suite_name: str, measured: Dict[str, Dict],
            tracked: Dict[str, bool], field: str) -> None:
    suite = report["suites"].setdefault(suite_name, {"workloads": {}})
    for name, numbers in measured.items():
        entry = suite["workloads"].setdefault(name, {})
        entry[field] = numbers["wall_s"]
        entry["simulated_time_s"] = numbers["simulated_time_s"]
        entry["tracked"] = tracked[name]
        entry["cpus"] = os.cpu_count()
        if "baseline_wall_s" in numbers:
            # paired workloads: before_s is the same-machine baseline
            # deployment, so speedup reads as a throughput ratio
            entry["before_s"] = numbers["baseline_wall_s"]
        for key, value in numbers.items():
            # extras from dict-returning workloads (tail percentiles,
            # shed counts) persist verbatim alongside the trajectory
            if key not in ("wall_s", "simulated_time_s",
                           "baseline_wall_s"):
                entry[key] = value
        if entry.get("before_s") and entry.get("after_s"):
            entry["speedup"] = round(entry["before_s"] / entry["after_s"], 2)


def _check(report: Dict, suite_name: str,
           measured: Dict[str, Dict], tracked: Dict[str, bool]) -> int:
    """Compare fresh numbers against the committed after_s; 0 = pass."""
    suite = report["suites"].get(suite_name, {"workloads": {}})
    failures = []
    for name, numbers in measured.items():
        committed = suite["workloads"].get(name, {}).get("after_s")
        entry = suite["workloads"].setdefault(name, {})
        entry["last_check_s"] = numbers["wall_s"]
        entry["last_check_cpus"] = os.cpu_count()
        if "baseline_wall_s" in numbers:
            entry["last_check_baseline_s"] = numbers["baseline_wall_s"]
            if numbers["wall_s"]:
                entry["last_check_speedup"] = round(
                    numbers["baseline_wall_s"] / numbers["wall_s"], 2)
        for key, value in numbers.items():
            if key not in ("wall_s", "simulated_time_s",
                           "baseline_wall_s"):
                entry[f"last_check_{key}"] = value
        if (tracked[name] and name.startswith("service.overload/")
                and numbers.get("baseline_p99_ms")):
            # the admission gate: under the same 4x burst, served-query
            # p99 with admission control must not exceed the
            # shed-nothing baseline's p99 (plus slack) — shedding has
            # to buy tail latency or it is pure loss
            limit_ms = numbers["baseline_p99_ms"] * OVERLOAD_P99_FACTOR
            if numbers["p99_ms"] > limit_ms:
                failures.append(
                    f"{name}: admission-controlled p99 "
                    f"{numbers['p99_ms']:.1f}ms exceeds "
                    f"{limit_ms:.1f}ms ({OVERLOAD_P99_FACTOR}x the "
                    f"no-admission baseline "
                    f"{numbers['baseline_p99_ms']:.1f}ms)"
                )
        if (tracked[name] and name.startswith("session.update/")
                and entry.get("last_check_speedup") is not None
                and entry["last_check_speedup"] < UPDATE_MIN_SPEEDUP):
            # the incremental-path gate: patching must stay decisively
            # faster than the same-run full re-prepare baseline
            failures.append(
                f"{name}: incremental path only "
                f"{entry['last_check_speedup']:.2f}x the full re-prepare "
                f"baseline (gate: {UPDATE_MIN_SPEEDUP}x)"
            )
        if committed is None or not tracked[name]:
            continue
        limit = max(committed * REGRESSION_FACTOR, REGRESSION_FLOOR_S)
        if numbers["wall_s"] > limit:
            failures.append(
                f"{name}: {numbers['wall_s']:.3f}s exceeds "
                f"{limit:.3f}s ({REGRESSION_FACTOR}x committed "
                f"{committed:.3f}s)"
            )
    for failure in failures:
        print(f"REGRESSION  {failure}")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small datasets (the CI smoke suite)")
    parser.add_argument("--record", choices=("before", "after"),
                        default="after",
                        help="which trajectory field to write (default "
                             "after; use before on pre-optimization code)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed after_s and "
                             "fail on >%.1fx regression" % REGRESSION_FACTOR)
    parser.add_argument("--repeats", type=int, default=None,
                        help="measurements per workload (best-of; default "
                             "3 full / 2 quick)")
    parser.add_argument("--output", default=BENCH_PATH,
                        help="report path (default: BENCH_wallclock.json)")
    args = parser.parse_args(argv)

    suite_name = "quick" if args.quick else "full"
    repeats = args.repeats or (2 if args.quick else 3)
    workloads = _suite(args.quick)

    measured: Dict[str, Dict] = {}
    tracked = {w.name: w.tracked for w in workloads}
    for workload in workloads:
        measured[workload.name] = _measure(workload,
                                           workload.repeats or repeats)
        flag = "tracked" if workload.tracked else "info   "
        print(f"{flag}  {workload.name:36s} "
              f"{measured[workload.name]['wall_s']:8.3f}s wall  "
              f"{measured[workload.name]['simulated_time_s']:10.3f}s simulated")
        baseline = measured[workload.name].get("baseline_wall_s")
        if baseline:
            ratio = baseline / measured[workload.name]["wall_s"]
            print(f"         {'vs thread-pool baseline':36s} "
                  f"{baseline:8.3f}s wall  "
                  f"{ratio:9.2f}x throughput ({os.cpu_count()} cpus)")
        numbers = measured[workload.name]
        if "p99_ms" in numbers:
            print(f"         {'served tail latency':36s} "
                  f"p50 {numbers['p50_ms']:7.1f}ms   "
                  f"p99 {numbers['p99_ms']:7.1f}ms   "
                  f"shed {numbers['queries_shed']}"
                  f" (baseline p99 "
                  f"{numbers.get('baseline_p99_ms', 0.0):.1f}ms)")

    # coverage summary: nothing silently skipped or un-gated
    untracked = sorted(name for name, is_tracked in tracked.items()
                       if not is_tracked)
    committed = set(_load_report(args.output)["suites"]
                    .get(suite_name, {"workloads": {}})["workloads"])
    skipped = sorted(committed - set(measured))
    print(f"coverage: {len(measured)} workloads measured; "
          f"untracked (not gated): {', '.join(untracked) or 'none'}; "
          f"committed-but-skipped: {', '.join(skipped) or 'none'}")

    report = _load_report(args.output)
    if args.check:
        status = _check(report, suite_name, measured, tracked)
        _save_report(report, args.output)
        print("wall-clock check:", "FAIL" if status else "OK")
        return status
    _record(report, suite_name, measured, tracked, f"{args.record}_s")
    _save_report(report, args.output)
    print(f"recorded {args.record}_s for suite {suite_name!r} "
          f"-> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
