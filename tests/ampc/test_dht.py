"""Tests for the distributed hash table."""

import pytest

from repro.ampc import DHTService, DHTStore, StoreSealedError


class TestDHTStore:
    def test_write_and_lookup(self):
        store = DHTStore("t", num_shards=4)
        store.write("a", (1, 2))
        assert store.lookup("a") == (1, 2)
        assert store.lookup("missing") is None

    def test_overwrite_keeps_entry_count(self):
        store = DHTStore("t", num_shards=2)
        store.write("a", 1)
        store.write("a", 2)
        assert len(store) == 1
        assert store.lookup("a") == 2

    def test_sealed_store_rejects_writes(self):
        store = DHTStore("t", num_shards=2)
        store.write("a", 1)
        store.seal()
        with pytest.raises(StoreSealedError):
            store.write("b", 2)
        assert store.lookup("a") == 1

    def test_strict_round_store_rejects_early_reads(self):
        store = DHTStore("t", num_shards=2, strict_rounds=True)
        store.write("a", 1)
        with pytest.raises(StoreSealedError):
            store.lookup("a")
        store.seal()
        assert store.lookup("a") == 1

    def test_shard_load_accounting(self):
        store = DHTStore("t", num_shards=4)
        store.write("hot", 1)
        for _ in range(10):
            store.lookup("hot")
        assert store.max_shard_load() == 10
        assert sum(store.shard_reads) == 10

    def test_write_returns_value_bytes(self):
        store = DHTStore("t", num_shards=1)
        assert store.write("k", (1, 2, 3)) == 24

    def test_write_all_and_keys(self):
        store = DHTStore("t", num_shards=3)
        store.write_all([("a", 1), ("b", 2)])
        assert sorted(store.keys()) == ["a", "b"]

    def test_contains(self):
        store = DHTStore("t", num_shards=2)
        store.write("a", 1)
        assert store.contains("a")
        assert not store.contains("b")

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            DHTStore("t", num_shards=0)


class TestDHTService:
    def test_sequential_names(self):
        service = DHTService(num_shards=2)
        assert service.create().name == "D0"
        assert service.create().name == "D1"

    def test_named_store_and_get(self):
        service = DHTService(num_shards=2)
        store = service.create("graph")
        assert service.get("graph") is store

    def test_duplicate_name_rejected(self):
        service = DHTService(num_shards=2)
        service.create("x")
        with pytest.raises(ValueError):
            service.create("x")

    def test_strict_mode_propagates(self):
        service = DHTService(num_shards=2, strict_rounds=True)
        store = service.create()
        store.write("a", 1)
        with pytest.raises(StoreSealedError):
            store.lookup("a")


class TestOverwriteAccounting:
    def test_overwrite_refunds_replaced_size(self):
        """Regression: duplicate-key writes used to inflate
        total_value_bytes by the replaced entry's size forever."""
        store = DHTStore("t", num_shards=4)
        store.write("a", (1, 2, 3))       # 24 bytes
        store.write("a", (1,))            # now 8 bytes live
        assert store.total_value_bytes == 8
        store.write("a", (1, 2, 3, 4))    # now 32 bytes live
        assert store.total_value_bytes == 32
        assert store.total_entries == 1

    def test_overwrite_heavy_store_matches_live_sizes(self):
        from repro.ampc.cost_model import estimate_bytes

        store = DHTStore("t", num_shards=3)
        for round_index in range(5):
            for key in range(20):
                store.write(key, tuple(range(key % 7 + round_index)))
        live = sum(
            estimate_bytes(store.lookup(key)) for key in store.keys()
        )
        assert store.total_value_bytes == live
        assert store.total_entries == 20

    def test_write_many_overwrites_like_write(self):
        a = DHTStore("a", num_shards=2)
        b = DHTStore("b", num_shards=2)
        items = [(k % 4, tuple(range(k))) for k in range(12)]
        for key, value in items:
            a.write(key, value)
        returned = b.write_many(items)
        assert returned == sum(
            DHTStore("x", 1).write(k, v) for k, v in items
        )
        assert b.total_value_bytes == a.total_value_bytes
        assert b.total_entries == a.total_entries


class TestBatchedStoreOps:
    def test_lookup_many_matches_lookup_sequence(self):
        a = DHTStore("a", num_shards=4)
        b = DHTStore("b", num_shards=4)
        for store in (a, b):
            for key in range(10):
                store.write(key, tuple(range(key)))
        keys = [3, 7, 99, 3, 0]
        expected = [a.lookup(key) for key in keys]
        values, total = b.lookup_many(keys)
        assert values == expected
        assert total == sum(
            DHTStore("x", 1).write(0, v) if v is not None else 0
            for v in expected
        )
        assert a.shard_reads == b.shard_reads

    def test_lookup_with_size_returns_recorded_size(self):
        store = DHTStore("t", num_shards=2)
        store.write(5, (1, 2, 3))
        assert store.lookup_with_size(5) == ((1, 2, 3), 24)
        assert store.lookup_with_size(6) == (None, 0)

    def test_strict_rounds_apply_to_batched_reads(self):
        store = DHTStore("t", num_shards=2, strict_rounds=True)
        store.write(1, (1,))
        with pytest.raises(StoreSealedError):
            store.lookup_many([1])
        with pytest.raises(StoreSealedError):
            store.lookup_with_size(1)
        store.seal()
        assert store.lookup_many([1]) == ([(1,)], 8)

    def test_sealed_store_rejects_write_many(self):
        store = DHTStore("t", num_shards=2)
        store.seal()
        with pytest.raises(StoreSealedError):
            store.write_many([(1, 2)])

    def test_write_many_partial_failure_keeps_accounting_consistent(self):
        store = DHTStore("t", num_shards=2)
        with pytest.raises(TypeError):
            store.write_many([(1, (1, 2)), (2, object()), (3, (3,))])
        # The failing item wrote nothing; the completed prefix is fully
        # accounted, exactly like the equivalent write() sequence.
        assert store.lookup(1) == (1, 2)
        assert store.lookup(2) is None
        assert store.lookup(3) is None
        assert store.total_entries == 1
        assert store.total_value_bytes == 16
        store.write(1, (5,))  # overwrite refund stays correct afterwards
        assert store.total_value_bytes == 8
